"""Bench T5: regenerate Table 5 (BG/L severity vs expert alerts).

Shape claims: all expert alerts sit in FATAL/FAILURE (99.98% / 0.02% in
the paper); INFO dominates messages; tagging FATAL+FAILURE as alerts
yields 0% false negatives but a ~59% false-positive rate (paper: 59.34%).
"""

import pytest

from repro.analysis.severity_eval import score_severity_detector
from repro.core.rules import get_ruleset
from repro.core.tagging import Tagger
from repro.reporting.tables import table5
from repro.simulation.generator import generate_log

from _bench_utils import SEED, bench_scale, write_artifact


def test_table5_severity_crosstab(benchmark, bgl_result):
    text = benchmark(table5, bgl_result)
    write_artifact("table5.txt", text)

    rows = {
        label: (messages, alerts)
        for label, messages, _, alerts, _ in bgl_result.severity_tab.rows(
            ["FATAL", "FAILURE", "SEVERE", "ERROR", "WARNING", "INFO"]
        )
    }
    # Alerts live exclusively in FATAL/FAILURE.
    assert rows["SEVERE"][1] == 0
    assert rows["ERROR"][1] == 0
    assert rows["WARNING"][1] == 0
    assert rows["INFO"][1] == 0
    assert rows["FATAL"][1] > 0
    # FATAL alerts dwarf FAILURE alerts (paper: 348,398 vs 62).
    assert rows["FATAL"][1] > 20 * max(rows["FAILURE"][1], 1)
    # INFO dominates the message mix (paper: 78.68%).
    total_messages = sum(m for m, _ in rows.values())
    assert rows["INFO"][0] / total_messages > 0.5


def test_table5_severity_detector_error_rates(benchmark):
    def run():
        gen = generate_log(
            "bgl", scale=bench_scale("bgl"), seed=SEED, corruption=0.0,
        )
        return score_severity_detector(
            gen.records, Tagger(get_ruleset("bgl"))
        )

    score = benchmark.pedantic(run, rounds=3, iterations=1)
    assert score.false_negative_rate == 0.0
    assert score.false_positive_rate == pytest.approx(0.5934, abs=0.06)
    write_artifact(
        "table5_detector.txt",
        "BG/L severity-based detector (FATAL/FAILURE => alert)\n"
        f"false positive rate: {score.false_positive_rate:.4f} "
        "(paper: 0.5934)\n"
        f"false negative rate: {score.false_negative_rate:.4f} "
        "(paper: 0.0)\n",
    )

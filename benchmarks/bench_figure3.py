"""Bench F3: regenerate Figure 3 (GM_PAR vs GM_LANAI correlation).

Shape claims from the paper: "GM_LANAI messages do not always follow
GM_PAR messages, nor vice versa.  However, the correlation is clear" —
i.e. the coincidence rate of the rarer tag is high, but neither tag is a
strict subset of the other, and a plain per-category filter keeps both
tags (the situation "current tagging and filtering techniques do not
adequately address"), while the correlation-aware filter coalesces them.
"""

from repro.analysis.correlation import tag_correlation
from repro.core.correlated_filter import (
    CorrelationAwareFilter,
    learn_correlated_groups,
)
from repro.core.filtering import sorted_by_time
from repro.reporting.figures import figure3

from _bench_utils import write_artifact


def test_figure3_gm_correlation(benchmark, liberty_full_alerts):
    alerts = liberty_full_alerts.raw_alerts
    corr = benchmark(tag_correlation, alerts, "GM_PAR", "GM_LANAI", 600.0)
    text = figure3(alerts, window=600.0)
    write_artifact("figure3.txt", text)

    assert corr.is_correlated
    assert corr.coincidence_rate >= 0.5
    # Not a strict implication in either direction (paper: "do not always
    # follow ... nor vice versa"): GM_PAR fires more often than GM_LANAI.
    assert corr.count_a > corr.count_b > 0


def test_figure3_correlation_aware_filtering(benchmark, liberty_full_alerts):
    """The Section 5 recommendation closes the Figure 3 gap: learned alias
    groups coalesce the pair to one alert per failure."""
    alerts = sorted_by_time(
        [
            a for a in liberty_full_alerts.raw_alerts
            if a.category in ("GM_PAR", "GM_LANAI")
        ]
    )

    def run():
        groups = learn_correlated_groups(alerts, window=600.0)
        caf = CorrelationAwareFilter(groups, threshold=600.0)
        return groups, list(caf.filter(alerts))

    groups, coalesced = benchmark(run)
    assert frozenset({"GM_PAR", "GM_LANAI"}) in groups

    plain = CorrelationAwareFilter([], threshold=600.0)
    plain_kept = list(plain.filter(alerts))
    assert len(coalesced) < len(plain_kept)

"""Bench A2: the Section 3.3.1 case studies, quantitatively.

Three narrated motivating cases for filtering:

* Thunderbird VAPI: 3,229,194 "Local Catastrophic Errors"; one node
  produced 643,925 of them, "of which filtering removes all but 246";
* Spirit: a six-day disk storm of tens of millions of alerts; node sn373
  alone logged more than half of all Spirit alerts over the full period;
* Liberty PBS: 2231 job-fatal task_check alerts from one software bug,
  up to 74 repeats per job, ~1336 jobs killed.
"""

from collections import Counter

import pytest

from repro.core.filtering import log_filter_list, sorted_by_time

from _bench_utils import write_artifact


def test_vapi_hot_node_reduction(benchmark, thunderbird_burst_alerts):
    vapi = [
        a for a in thunderbird_burst_alerts.raw_alerts
        if a.category == "VAPI"
    ]
    hot = sorted_by_time([a for a in vapi if a.source == "tn345"])
    kept = benchmark(log_filter_list, hot)

    # The hot node carries ~20% of VAPI volume and filtering crushes it
    # by orders of magnitude (paper: 643,925 -> 246, a 2600x reduction;
    # at bench scale the chains are shorter, so demand >= 10x).
    assert len(hot) / max(len(kept), 1) > 10
    assert len(hot) / len(vapi) > 0.1

    write_artifact(
        "case_vapi.txt",
        "Thunderbird VAPI hot node (paper: 643,925 raw -> 246 filtered)\n"
        f"hot-node raw:      {len(hot):,}\n"
        f"hot-node filtered: {len(kept):,}\n"
        f"hot share of VAPI: {len(hot) / len(vapi):.2f} (paper: 0.20)\n",
    )


def test_spirit_sn373_majority(benchmark, spirit_result):
    sources = benchmark(
        lambda: Counter(a.source for a in spirit_result.raw_alerts)
    )
    share = sources["sn373"] / spirit_result.raw_alert_count
    assert share > 0.4  # paper: 89,632,571 / 172,816,564 = 0.52

    write_artifact(
        "case_sn373.txt",
        "Spirit node sn373 alert concentration (paper: 0.52)\n"
        f"sn373 share: {share:.3f} of {spirit_result.raw_alert_count:,} "
        "alerts\n",
    )


def test_spirit_disk_storm_reduction(benchmark, spirit_result):
    disk = sorted_by_time(
        [
            a for a in spirit_result.raw_alerts
            if a.category in ("EXT_CCISS", "EXT_FS")
        ]
    )
    kept = benchmark(log_filter_list, disk)
    # Tens of millions reduce to dozens at full scale; the ratio shape at
    # bench scale is still hundreds-to-one.
    assert len(disk) / max(len(kept), 1) > 100
    assert len(kept) <= 60  # paper: 29 + 14 filtered disk alerts


def test_liberty_pbs_jobs_killed_estimate(benchmark, liberty_full_alerts):
    """The paper estimates ~1336 jobs killed from 2231 alerts with up to
    74 repeats: alerts cluster per job, so distinct job ids in the alert
    bodies approximate the kill count's order."""
    pbs = [
        a for a in liberty_full_alerts.raw_alerts if a.category == "PBS_CHK"
    ]

    def distinct_jobs():
        jobs = set()
        for alert in pbs:
            body = alert.record.body
            marker = "tm_reply to "
            start = body.find(marker)
            if start >= 0:
                jobs.add(body[start + len(marker):].split()[0])
        return jobs

    jobs = benchmark(distinct_jobs)
    assert len(pbs) == pytest.approx(2231, rel=0.02)
    # Hundreds-to-~thousand distinct afflicted jobs (paper: <= 1336,
    # with 920 filtered alerts as the incident count).
    assert 400 <= len(jobs) <= 1500

    write_artifact(
        "case_pbs.txt",
        "Liberty PBS bug (paper: 2231 alerts, ~1336 jobs killed)\n"
        f"task_check alerts: {len(pbs):,}\n"
        f"distinct job ids:  {len(jobs):,}\n",
    )

"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures from a
freshly generated log, measures the interesting computation with
pytest-benchmark, asserts the paper's *shape* claims, and writes the
rendered artifact to ``benchmarks/output/`` so a run leaves the full set
of regenerated tables/figures on disk.

Scales are chosen per system so each bench finishes in seconds while
keeping enough volume for the claims; override with the
``REPRO_BENCH_SCALE`` environment variable (a multiplier applied on top).
"""

from __future__ import annotations

import pytest

from repro import pipeline

from _bench_utils import BENCH_SCALES, SEED, bench_scale


@pytest.fixture(scope="session")
def results():
    """Pipeline results for all five machines at bench scales."""
    return {
        system: pipeline.run_system(system, scale=bench_scale(system),
                                    seed=SEED)
        for system in BENCH_SCALES
    }


@pytest.fixture(scope="session")
def proportional_results():
    """All five machines with *proportional* scaling (incidents scaled
    together with volumes, uniform 1e-3).

    The incident-faithful ``results`` fixture preserves Table 4's filtered
    counts; this one preserves Table 2/3/5/6's volume *percentages* and
    cross-system orderings, which are raw-count properties.
    """
    return {
        system: pipeline.run_system(
            system, scale=1e-3, incident_scale=1e-3, seed=SEED,
        )
        for system in BENCH_SCALES
    }


@pytest.fixture(scope="session")
def bgl_result(results):
    return results["bgl"]


@pytest.fixture(scope="session")
def thunderbird_result(results):
    return results["thunderbird"]


@pytest.fixture(scope="session")
def redstorm_result(results):
    return results["redstorm"]


@pytest.fixture(scope="session")
def spirit_result(results):
    return results["spirit"]


@pytest.fixture(scope="session")
def liberty_result(results):
    return results["liberty"]


@pytest.fixture(scope="session")
def liberty_full_alerts():
    """Liberty with full-paper alert volumes and thin background — the
    alert-side case studies (PBS bug, Figures 3/4) at true multiplicity."""
    return pipeline.run_system(
        "liberty", scale=1.0, background_scale=1e-4, seed=SEED,
    )


@pytest.fixture(scope="session")
def thunderbird_burst_alerts():
    """Thunderbird with realistic burst multiplicities (alerts only) for
    the spatial-correlation and interarrival figures."""
    return pipeline.run_system(
        "thunderbird", scale=0.02, incident_scale=0.05,
        background_scale=0.0, seed=SEED,
    )

"""Bench F2: regenerate Figure 2 (Liberty traffic over time and by source).

Figure 2(a): hourly message counts with evolution shifts ("the first
major shift ... corresponded to an upgrade in the operating system").
Figure 2(b): per-source message counts, admin nodes chattiest, a cluster
of corrupted/unattributable sources at the bottom.
"""

from repro.analysis.phases import detect_phase_shifts
from repro.analysis.timeseries import hourly_message_counts, messages_by_source
from repro.reporting.figures import figure2a, figure2b
from repro.simulation.cluster import NodeRole

from _bench_utils import SEED, write_artifact

import pytest


@pytest.fixture(scope="module")
def liberty_records():
    from repro.simulation.generator import generate_log

    # Corruption bumped above the scenario default so the Figure 2(b)
    # corrupted-source cluster is statistically guaranteed at this scale.
    return list(
        generate_log(
            "liberty", scale=3e-4, seed=SEED, corruption=2e-3
        ).records
    )


def test_figure2a_hourly_series_and_shifts(benchmark, liberty_records):
    series = hourly_message_counts(liberty_records)
    shifts = benchmark(detect_phase_shifts, series)
    text = figure2a(series, shifts)
    write_artifact("figure2a.txt", text)

    # The calibrated rate profile steps 0.45 -> 1.60 at ~28% (the OS
    # upgrade) plus two later shifts; the detector must find the upgrade.
    assert shifts, "no phase shifts detected"
    span = series.end - series.start
    fractions = [(s.timestamp - series.start) / span for s in shifts]
    upgrades = [
        s for s, f in zip(shifts, fractions)
        if 0.2 < f < 0.4 and s.magnitude > 1.5
    ]
    assert upgrades, f"OS-upgrade shift not found (shifts at {fractions})"


def test_figure2b_source_ranking(benchmark, liberty_records):
    distribution = benchmark(messages_by_source, liberty_records)
    text = figure2b(distribution)
    write_artifact("figure2b.txt", text)

    ranked = distribution.ranked()
    # "The most prolific sources were administrative nodes": both admin
    # nodes in the top handful.
    top_names = [name for name, _ in ranked[:6]]
    assert "ladmin1" in top_names and "ladmin2" in top_names

    # Orders of magnitude between head and tail (Figure 2(b) is log-scale).
    attributed = [
        (name, count) for name, count in ranked
        if name and name.isprintable()
    ]
    assert attributed[0][1] > 50 * attributed[-1][1]

    # The corrupted-source cluster exists.
    assert distribution.unattributed() > 0

"""Bench A3: filtering-threshold ablation and per-category adaptation.

Section 4 identifies the catch-all threshold as a core weakness: "a
filtering threshold must be selected in advance and is then applied
across all kinds of alerts.  In reality, each alert category may require
a different threshold."  This bench sweeps the global threshold and then
compares the paper's T=5 filter against the recommended per-category
adaptive filter on a stream whose categories need different windows.
"""

from repro.core.adaptive_filter import PerCategoryFilter, suggest_thresholds
from repro.core.filtering import log_filter_list, sorted_by_time

from _bench_utils import write_artifact

SWEEP = (0.5, 5.0, 60.0, 600.0, 3600.0)


def test_threshold_sweep(benchmark, spirit_result):
    alerts = sorted_by_time(spirit_result.raw_alerts)

    def sweep():
        return {t: len(log_filter_list(alerts, t)) for t in SWEEP}

    kept = benchmark.pedantic(sweep, rounds=3, iterations=1)

    # Monotone: larger windows keep fewer alerts; and the knee matters —
    # the jump from 0.5 to 5 s removes most of the redundancy.
    values = [kept[t] for t in SWEEP]
    assert values == sorted(values, reverse=True)
    assert kept[0.5] > kept[5.0]

    lines = ["Global threshold sweep on Spirit alerts (kept counts)"]
    lines += [f"T={t:>7.1f}s  kept={kept[t]:,}" for t in SWEEP]
    write_artifact("ablation_threshold.txt", "\n".join(lines) + "\n")


def test_adaptive_vs_global(benchmark, bgl_result):
    """On BG/L — the system whose bimodal Figure 6(a) motivated the
    recommendation — learned per-category thresholds remove residual
    redundancy the global T=5 filter leaves."""
    alerts = sorted_by_time(bgl_result.raw_alerts)

    def run():
        # Learned thresholds floored at the paper's T=5: the ablation asks
        # whether *extending* windows per category removes residual
        # redundancy the global threshold leaves.
        thresholds = {
            category: max(value, 5.0)
            for category, value in suggest_thresholds(alerts).items()
        }
        pcf = PerCategoryFilter(thresholds, default_threshold=5.0)
        return thresholds, list(pcf.filter(alerts))

    thresholds, adaptive_kept = benchmark.pedantic(run, rounds=3, iterations=1)
    global_kept = log_filter_list(alerts, 5.0)

    # With the floor in place, adaptation can only coalesce further.
    assert len(adaptive_kept) <= len(global_kept)

    lines = [
        "Adaptive (per-category) vs global T=5 filtering on BG/L",
        f"global kept:   {len(global_kept):,}",
        f"adaptive kept: {len(adaptive_kept):,}",
        f"learned thresholds: { {k: round(v, 1) for k, v in sorted(thresholds.items())} }",
    ]
    write_artifact("ablation_adaptive.txt", "\n".join(lines) + "\n")

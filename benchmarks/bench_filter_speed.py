"""Bench A1: simultaneous vs serial filtering (Section 3.3.2).

The paper's performance claim: performing temporal and spatial filtering
simultaneously "reduces computational costs (16% faster on the Spirit
logs), and increases conceptual simplicity."  The quality claim: the
simultaneous filter removes duplicates the serial pipeline leaves ("at
most one true positive was removed on any single machine, whereas
sometimes dozens of false positives were removed").

We time both algorithms on the same Spirit alert stream and check both
claims' shapes: the one-pass filter is at least as fast (in this Python
implementation the two-pass baseline pays far more than 16%), and its
output is a subset of the serial output.
"""

import time

from repro.core.filtering import log_filter_list, sorted_by_time
from repro.core.serial_filter import serial_filter_list

from _bench_utils import write_artifact


def test_simultaneous_filter_speed(benchmark, spirit_result):
    alerts = sorted_by_time(spirit_result.raw_alerts)
    kept = benchmark(log_filter_list, alerts)
    assert 0 < len(kept) < len(alerts)


def test_serial_filter_speed(benchmark, spirit_result):
    alerts = sorted_by_time(spirit_result.raw_alerts)
    kept = benchmark(serial_filter_list, alerts)
    assert 0 < len(kept) < len(alerts)


def test_simultaneous_is_faster_and_removes_more(benchmark, spirit_result):
    alerts = sorted_by_time(spirit_result.raw_alerts)

    def timed_comparison():
        t0 = time.perf_counter()
        simultaneous = log_filter_list(alerts)
        t1 = time.perf_counter()
        serial = serial_filter_list(alerts)
        t2 = time.perf_counter()
        return simultaneous, serial, t1 - t0, t2 - t1

    simultaneous, serial, sim_time, ser_time = benchmark.pedantic(
        timed_comparison, rounds=5, iterations=1,
    )

    # Quality shape: one-pass output subset of two-pass output.
    sim_ids = {id(a) for a in simultaneous}
    ser_ids = {id(a) for a in serial}
    assert sim_ids <= ser_ids
    assert len(simultaneous) <= len(serial)

    # Speed shape: the single pass wins (paper: 16% on Spirit).
    speedup = ser_time / sim_time if sim_time > 0 else float("inf")
    assert speedup > 1.0, f"serial was faster ({speedup:.2f}x)"

    write_artifact(
        "filter_speed.txt",
        "Simultaneous vs serial filtering on the Spirit alert stream\n"
        f"alerts in:            {len(alerts):,}\n"
        f"simultaneous kept:    {len(simultaneous):,} in {sim_time*1e3:.1f} ms\n"
        f"serial kept:          {len(serial):,} in {ser_time*1e3:.1f} ms\n"
        f"speedup:              {speedup:.2f}x (paper: 1.16x on full logs)\n"
        f"extra duplicates removed by simultaneous: "
        f"{len(serial) - len(simultaneous)}\n",
    )

"""Bench T3: regenerate Table 3 (alert type distribution raw vs filtered).

Shape claims: Hardware dominates the raw alerts (98.04% in the paper —
the Spirit disk storms), but after filtering Software dominates (64.01%)
— "filtering dramatically changes the distribution of alert types."

The raw margin is a volume property (checked on the proportional run);
the filtered margin is an incident property (checked on the
incident-faithful run).  The rendered artifact uses the proportional run,
matching the paper's full-scale presentation.
"""

from repro.core.tagging import count_by_type
from repro.reporting.tables import table3

from _bench_utils import write_artifact


def _totals(results, which):
    totals = {"H": 0, "S": 0, "I": 0}
    for result in results.values():
        alerts = getattr(result, which)
        for code, count in count_by_type(alerts).items():
            totals[code] += count
    return totals


def test_table3_raw_margin(benchmark, proportional_results):
    text = benchmark(table3, proportional_results)
    write_artifact("table3_proportional.txt", text)

    raw = _totals(proportional_results, "raw_alerts")
    raw_total = sum(raw.values())
    # Paper: Hardware 98.04% of raw alerts.
    assert raw["H"] / raw_total > 0.9
    assert raw["S"] / raw_total < 0.05
    assert raw["I"] / raw_total < 0.05


def test_table3_filtered_margin(benchmark, results):
    write_artifact("table3.txt", table3(results))
    filtered = benchmark(_totals, results, "filtered_alerts")
    filtered_total = sum(filtered.values())
    # Paper: Software 64.01%, Hardware 18.78%, Indeterminate 17.21%.
    assert filtered["S"] / filtered_total > 0.5
    assert filtered["S"] > filtered["H"]
    assert filtered["S"] > filtered["I"]
    assert 0.05 < filtered["H"] / filtered_total < 0.4
    assert 0.05 < filtered["I"] / filtered_total < 0.4

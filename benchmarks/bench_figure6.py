"""Bench F6: regenerate Figure 6 (filtered interarrival log-histograms).

Shape claims: "correlated alerts on BG/L (a) and largely independent
categories on Spirit (b)" — the BG/L histogram of log interarrival times
after filtering is bimodal, Spirit's is unimodal.
"""

from repro.analysis.interarrival import interarrival_times, log_histogram
from repro.reporting.figures import figure6

from _bench_utils import write_artifact


def test_figure6_modality(benchmark, bgl_result, spirit_result):
    bgl_gaps = interarrival_times(bgl_result.filtered_alerts)
    spirit_gaps = interarrival_times(spirit_result.filtered_alerts)

    def run():
        return (
            log_histogram(bgl_gaps, bins_per_decade=2),
            log_histogram(spirit_gaps, bins_per_decade=2),
        )

    bgl_hist, spirit_hist = benchmark(run)
    text = figure6({"bgl": bgl_hist, "spirit": spirit_hist})
    write_artifact("figure6.txt", text)

    assert bgl_hist.is_bimodal(), "BG/L filtered interarrivals must be bimodal"
    assert not spirit_hist.is_bimodal(), (
        "Spirit filtered interarrivals must be unimodal"
    )
    assert bgl_hist.total > 500
    assert spirit_hist.total > 1000


def test_figure6_first_mode_is_residual_redundancy(benchmark, bgl_result):
    """Paper: 'one of the modes (the first peak) is attributed to
    unfiltered redundancy' — short gaps just past the 5-second threshold.
    The first mode of the BG/L histogram must sit at small gaps (under
    ~20 minutes), the second at hours."""
    gaps = interarrival_times(bgl_result.filtered_alerts)
    hist = benchmark(log_histogram, gaps, 2)
    counts = hist.counts.astype(float)
    # Find the two tallest separated peaks.
    peak_indices = sorted(
        range(len(counts)), key=lambda i: counts[i], reverse=True
    )[:4]
    lo_peak = min(peak_indices)
    hi_peak = max(peak_indices)
    lo_gap = 10 ** hist.bin_edges[lo_peak]
    hi_gap = 10 ** hist.bin_edges[hi_peak]
    assert lo_gap < 1200.0
    assert hi_gap > 3600.0

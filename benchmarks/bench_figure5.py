"""Bench F5: regenerate Figure 5 (Thunderbird ECC interarrivals).

Shape claims: filtered ECC alerts "are basically independent" — their
interarrival distribution is exponential-ish (and lognormal fits well),
filtering "had little effect on the distribution" (raw ~ filtered for
ECC), and ECC is *more* exponential than the bursty categories (VAPI).
"""

import pytest

from repro.analysis.distributions import (
    compare_models,
    exponentiality_score,
    fit_exponential,
)
from repro.analysis.interarrival import interarrival_times
from repro.reporting.figures import figure5

from _bench_utils import write_artifact


def _category_alerts(result, category, which="filtered_alerts"):
    return [a for a in getattr(result, which) if a.category == category]


def test_figure5_ecc_independence(benchmark, thunderbird_burst_alerts):
    ecc = _category_alerts(thunderbird_burst_alerts, "ECC")
    gaps = interarrival_times(ecc)
    comparison = benchmark(compare_models, gaps)
    text = figure5(ecc)
    write_artifact("figure5.txt", text)

    # Exponential is statistically acceptable for ECC (alpha = 0.05 KS).
    assert comparison.fits["exponential"].acceptable
    # The lognormal view of Figure 5(b) fits too.
    assert comparison.fits["lognormal"].acceptable


def test_figure5_filtering_had_little_effect_on_ecc(
    benchmark, thunderbird_burst_alerts,
):
    """Paper: 'These data are filtered, but that had little effect on the
    distribution' — ECC raw ~= filtered (146 vs 143)."""
    raw = benchmark(
        _category_alerts, thunderbird_burst_alerts, "ECC", "raw_alerts"
    )
    filtered = _category_alerts(thunderbird_burst_alerts, "ECC")
    assert len(filtered) >= 0.9 * len(raw)


def test_figure5_ecc_vs_bursty_categories(benchmark, thunderbird_burst_alerts):
    ecc_gaps = interarrival_times(
        _category_alerts(thunderbird_burst_alerts, "ECC")
    )
    vapi_gaps = interarrival_times(
        _category_alerts(thunderbird_burst_alerts, "VAPI", "raw_alerts")
    )
    scores = benchmark(
        lambda: (exponentiality_score(ecc_gaps),
                 exponentiality_score(vapi_gaps))
    )
    assert scores[0] > scores[1]
    # The raw VAPI stream is so bursty the exponential is flatly rejected.
    assert not fit_exponential(vapi_gaps).acceptable

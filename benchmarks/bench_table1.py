"""Bench T1: regenerate Table 1 (system characteristics).

Table 1 is static metadata; the bench measures the render and pins the
rows the paper prints.
"""

from repro.reporting.tables import table1

from _bench_utils import write_artifact


def test_table1(benchmark):
    text = benchmark(table1)
    write_artifact("table1.txt", text)

    # The five systems in the paper's order, with their headline specs.
    lines = text.splitlines()
    order = [line.split("  ")[0].strip() for line in lines[4:]]
    assert order == [
        "Blue Gene/L", "Thunderbird", "Red Storm", "Spirit (ICC2)",
        "Liberty",
    ]
    assert "131,072" in text   # BG/L processors
    assert "Infiniband" in text
    assert "GigEthernet" in text

"""Bench A4: per-category predictor ensemble vs single-feature baseline.

The paper's recommendation (Sections 1, 4, 5): "event prediction efforts
should produce an ensemble of predictors, each specializing in one or
more categories", because single features (severity levels, message
bursts) cannot cover failure classes with different — or absent —
predictive signatures.

The bench trains the ensemble on the first half of a generated Liberty
alert stream, validates on the third quarter, tests on the final quarter,
and compares against the burst-only baseline applied to every category.
"""

from repro import pipeline
from repro.prediction.base import evaluate
from repro.prediction.ensemble import PredictorEnsemble
from repro.prediction.features import AlertHistory
from repro.prediction.predictors import BurstPredictor

from _bench_utils import SEED, write_artifact


def _spans(history):
    """Train/validation/test cuts at alert-count quantiles.

    Liberty's alert mass sits in the PBS-bug quarter (Figure 4), so
    wall-clock splits would leave the training span nearly empty; quantile
    splits give every span comparable alert volume — the situation a
    deployed predictor retrained on recent history would see.
    """
    times = [a.timestamp for a in history.alerts]
    n = len(times)
    t0, t1 = history.first_time(), history.last_time() + 1.0
    cut1 = times[int(n * 0.5)]
    cut2 = times[int(n * 0.75)]
    return (t0, cut1), (cut1, cut2), (cut2, t1)


def test_ensemble_fit_and_score(benchmark, liberty_full_alerts):
    history = AlertHistory(liberty_full_alerts.raw_alerts)
    train, validation, test = _spans(history)

    def run():
        ensemble = PredictorEnsemble(min_f1=0.2)
        ensemble.fit(history, train, validation)
        return ensemble, ensemble.score(history, *test)

    ensemble, scores = benchmark.pedantic(run, rounds=3, iterations=1)

    lines = [ensemble.summary(), "", "Test-span scores:"]
    for target, score in sorted(scores.items()):
        lines.append(
            f"  {target:<12} P={score.precision:.2f} R={score.recall:.2f} "
            f"F1={score.f1:.2f} (failures={score.failures})"
        )
    write_artifact("prediction_ensemble.txt", "\n".join(lines) + "\n")

    # The PBS-bug period makes PBS categories richly predictable: the
    # ensemble must field at least one specialist and score on the test
    # span.
    assert ensemble.members, "ensemble selected no specialists"
    assert any(score.f1 > 0.3 for score in scores.values())


def test_ensemble_beats_burst_everywhere_baseline(
    benchmark, liberty_full_alerts,
):
    """The single-feature strawman: one burst detector warning for every
    category.  Its macro-F1 over categories is at most the specialized
    ensemble's (it typically alarms on the wrong categories entirely)."""
    history = AlertHistory(liberty_full_alerts.raw_alerts)
    train, validation, test = _spans(history)

    ensemble = PredictorEnsemble(min_f1=0.2)
    ensemble.fit(history, train, validation)
    ensemble_scores = ensemble.score(history, *test)

    def baseline_scores():
        out = {}
        for target in history.categories:
            predictor = BurstPredictor(target)
            predictor.train(history, *train)
            warnings = predictor.warnings(history, *test)
            failures = [
                t for t in history.category_times(target)
                if test[0] <= t < test[1]
            ]
            out[target] = evaluate(
                warnings, failures, target, lead_min=10.0, lead_max=3600.0,
            )
        return out

    baseline = benchmark.pedantic(baseline_scores, rounds=3, iterations=1)

    categories = [c for c in ensemble_scores if c in baseline]
    assert categories
    ens_macro = sum(ensemble_scores[c].f1 for c in categories) / len(categories)
    base_macro = sum(baseline[c].f1 for c in categories) / len(categories)
    assert ens_macro >= base_macro

    write_artifact(
        "prediction_baseline.txt",
        "Ensemble vs burst-everywhere baseline (macro-F1 on shared "
        "categories)\n"
        f"ensemble: {ens_macro:.3f}\n"
        f"baseline: {base_macro:.3f}\n",
    )

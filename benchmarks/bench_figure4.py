"""Bench F4: regenerate Figure 4 (Liberty filtered alerts over time).

Shape claims: the PBS_CHK/PBS_BFD rows form dense horizontal clusters
confined to one quarter (the PBS bug, "not evidence of poor filtering;
they are actually instances of individual failures"), the two PBS tags
are correlated with each other, and filtering preserved roughly the
paper's per-category filtered counts.
"""

import pytest

from repro.analysis.correlation import tag_correlation
from repro.reporting.figures import figure4

from _bench_utils import write_artifact


def test_figure4_liberty_timeline(benchmark, liberty_full_alerts):
    filtered = liberty_full_alerts.filtered_alerts
    text = benchmark(figure4, filtered)
    write_artifact("figure4.txt", text)

    scenario = liberty_full_alerts.generated.scenario
    span = scenario.end_epoch - scenario.start_epoch

    # The PBS bug cluster sits in the final quarter.
    for category in ("PBS_CHK", "PBS_BFD"):
        times = [a.timestamp for a in filtered if a.category == category]
        assert times, category
        fractions = [(t - scenario.start_epoch) / span for t in times]
        assert min(fractions) >= 0.70
        assert max(fractions) <= 1.01

    # "These two tags are a particularly outstanding example of correlated
    # alerts relegated to different categories."
    corr = tag_correlation(
        liberty_full_alerts.raw_alerts, "PBS_CHK", "PBS_BFD", window=600.0
    )
    assert corr.is_correlated

    # Filtered counts per category near the paper's Figure 4 population.
    counts = liberty_full_alerts.category_counts()
    assert counts["PBS_CHK"][1] == pytest.approx(920, rel=0.15)
    assert counts["PBS_BFD"][1] == pytest.approx(94, rel=0.25)
    assert counts["GM_PAR"][1] == pytest.approx(19, abs=6)


def test_figure4_pbs_raw_counts(benchmark, liberty_full_alerts):
    """Section 3.3.1's numbers: 2231 task_check alerts, <= 74 per job."""
    pbs_raw = [
        a for a in liberty_full_alerts.raw_alerts if a.category == "PBS_CHK"
    ]
    assert len(pbs_raw) == pytest.approx(2231, rel=0.02)

    from repro.core.tupling import tuple_alerts
    from repro.core.filtering import sorted_by_time

    sizes = benchmark(
        lambda: [
            t.size
            for t in tuple_alerts(sorted_by_time(pbs_raw), window=300.0)
        ]
    )
    assert max(sizes) <= 74 * 2  # tuples may merge two adjacent failures

"""Bench A5 (extension): checkpointing under measured failure processes.

Section 4's opening point — failure models feed checkpointing decisions,
and assuming exponential interarrivals where failures are correlated is
"misguided" — made quantitative.  We take the generated Spirit disk-alert
stream (massively bursty), compute Daly's optimal checkpoint interval two
ways, and replay an application against the actual failure times:

* **naive**: MTBF from raw alert counts (what someone reading the log
  without filtering would do);
* **informed**: MTBF from *filtered* alerts (one per failure).

The informed interval must beat the naive one — checkpointing for every
redundant report wastes the machine.
"""

from repro.analysis.checkpointing import (
    daly_interval,
    interval_sweep,
)
from repro.core.filtering import sorted_by_time

from _bench_utils import write_artifact

CHECKPOINT_COST = 300.0   # 5-minute checkpoint (full-memory dump era)
HOUR = 3600.0


def test_filtered_mtbf_beats_raw_mtbf_for_checkpointing(
    benchmark, spirit_result,
):
    disk_raw = sorted_by_time(
        [
            a for a in spirit_result.raw_alerts
            if a.category in ("EXT_CCISS", "EXT_FS")
        ]
    )
    disk_filtered = [
        a for a in spirit_result.filtered_alerts
        if a.category in ("EXT_CCISS", "EXT_FS")
    ]
    failure_times = [a.timestamp for a in disk_raw]
    span = failure_times[-1] - failure_times[0]

    naive_mtbf = span / len(disk_raw)
    informed_mtbf = span / max(len(disk_filtered), 1)
    naive = daly_interval(naive_mtbf, CHECKPOINT_COST)
    informed = daly_interval(informed_mtbf, CHECKPOINT_COST)
    assert informed > naive  # fewer (real) failures -> longer interval

    def run():
        return interval_sweep(
            failure_times,
            [naive, informed],
            CHECKPOINT_COST,
            work_target=span * 0.5,
            start=failure_times[0],
        )

    outcomes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcomes[informed].efficiency > outcomes[naive].efficiency

    write_artifact(
        "checkpointing.txt",
        "Checkpoint-interval choice under the Spirit disk-failure stream\n"
        f"raw alerts:        {len(disk_raw):,} -> naive MTBF "
        f"{naive_mtbf / 60:.1f} min -> Daly interval {naive / 60:.1f} min\n"
        f"filtered failures: {len(disk_filtered):,} -> informed MTBF "
        f"{informed_mtbf / HOUR:.1f} h -> Daly interval "
        f"{informed / HOUR:.2f} h\n"
        f"efficiency (naive):    {outcomes[naive].efficiency:.3f}\n"
        f"efficiency (informed): {outcomes[informed].efficiency:.3f}\n",
    )

"""Bench T2: regenerate Table 2 (log characteristics).

The measured computation is the full single-pass pipeline — generation,
volume statistics, tagging, filtering — for one machine; the artifact is
the five-system table with the paper's reference columns, produced under
proportional scaling (volumes and incident counts shrunk together) so the
cross-system orderings and ratios are the paper's.

Shape claims checked: Spirit produces the largest log and the most alerts
despite being the second-smallest machine; Liberty logs hundreds of
millions of messages (scaled) but almost no alerts; every system shows
all of its Table 2 categories.
"""

from repro import pipeline
from repro.reporting.tables import table2

from _bench_utils import SEED, bench_scale, write_artifact


def test_table2_pipeline_throughput(benchmark, proportional_results):
    result = benchmark.pedantic(
        lambda: pipeline.run_system(
            "liberty", scale=bench_scale("liberty"), seed=SEED
        ),
        rounds=3,
        iterations=1,
    )
    assert result.message_count > 0

    text = table2(proportional_results)
    write_artifact("table2.txt", text)

    sizes = {
        name: r.stats.raw_bytes for name, r in proportional_results.items()
    }
    assert max(sizes, key=sizes.get) == "spirit"
    # BG/L's log is by far the smallest (Table 2: 1.2 GB vs 22-30 GB).
    assert min(sizes, key=sizes.get) == "bgl"

    alerts = {
        name: r.raw_alert_count for name, r in proportional_results.items()
    }
    assert max(alerts, key=alerts.get) == "spirit"
    assert min(alerts, key=alerts.get) == "liberty"

    # Alert-to-message ratios echo Table 2: Spirit's majority-alert log vs
    # Liberty's one-in-a-hundred-thousand.
    spirit = proportional_results["spirit"]
    liberty = proportional_results["liberty"]
    assert spirit.raw_alert_count / spirit.message_count > 0.3
    assert liberty.raw_alert_count / liberty.message_count < 0.01

    # Message volumes order as in Table 2: Spirit > Liberty > Red Storm >
    # Thunderbird >> BG/L (allow the two closest pairs to be approximate).
    messages = {
        name: r.message_count for name, r in proportional_results.items()
    }
    assert messages["spirit"] > messages["thunderbird"]
    assert messages["liberty"] > messages["thunderbird"]
    assert messages["bgl"] * 10 < messages["thunderbird"]


def test_table2_observed_categories(benchmark, results):
    """Table 2's categories column, from the incident-faithful run where
    every category has its full incident count."""
    expected = {"bgl": 41, "thunderbird": 10, "redstorm": 12,
                "spirit": 8, "liberty": 6}
    observed = benchmark(
        lambda: {n: r.observed_categories for n, r in results.items()}
    )
    assert observed == expected

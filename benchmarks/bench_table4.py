"""Bench T4: regenerate Table 4 (per-category raw/filtered counts).

Shape claims per system: the dominant categories match the paper
(KERNDTLB on BG/L, VAPI on Thunderbird, BUS_PAR on Red Storm, EXT_CCISS
on Spirit, PBS_CHK on Liberty), and filtered counts land near the paper's
values (the filter recovers the incident structure mechanistically).
"""

import pytest

from repro.reporting.tables import table4
from repro.simulation.calibration import SCENARIOS

from _bench_utils import write_artifact

#: (system, top raw category, paper filtered total)
EXPECTED = [
    ("bgl", "KERNDTLB", 1202),
    ("thunderbird", "VAPI", 2088),
    ("redstorm", "BUS_PAR", 1430),
    ("spirit", "EXT_CCISS", 4875),
    ("liberty", "PBS_CHK", 1050),
]


def test_table4_categories(benchmark, results):
    text = benchmark(table4, results)
    write_artifact("table4.txt", text)

    for system, top_category, paper_filtered in EXPECTED:
        result = results[system]
        counts = result.category_counts()
        ranked = sorted(counts.items(), key=lambda kv: -kv[1][0])
        assert ranked[0][0] == top_category, system
        assert result.filtered_alert_count == pytest.approx(
            paper_filtered, rel=0.15
        ), system


def test_table4_filtered_counts_per_category(benchmark, results):
    """Per-category filtered counts track the paper's Table 4 column for
    the categories with enough mass to be stable at bench scale."""
    benchmark(lambda: {n: r.category_counts() for n, r in results.items()})
    checks = [
        ("thunderbird", "ECC", 143, 0.1),
        ("thunderbird", "EXT_FS", 778, 0.1),
        ("redstorm", "PTL_EXP", 421, 0.1),
        ("redstorm", "DSK_FAIL", 54, 0.1),
        ("spirit", "PBS_CHK", 4119, 0.1),
        ("spirit", "EXT_CCISS", 29, 0.5),
        ("liberty", "PBS_CHK", 920, 0.15),
    ]
    for system, category, paper_value, tolerance in checks:
        _, filtered = results[system].category_counts()[category]
        assert filtered == pytest.approx(paper_value, rel=tolerance), (
            system, category,
        )

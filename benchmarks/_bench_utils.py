"""Helpers shared by the benchmark files (kept out of conftest so bench
modules can import them unambiguously)."""

from __future__ import annotations

import os
from pathlib import Path

SEED = 20070625

#: Per-system volume scales (fractions of the paper's message counts).
BENCH_SCALES = {
    "bgl": 1e-2,          # 4.7 M messages -> ~50 k
    "thunderbird": 1e-3,  # keeps VAPI the top raw category
    "redstorm": 1e-3,     # keeps BUS_PAR the top raw category
    "spirit": 1e-4,
    "liberty": 1e-4,
}

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_scale(system: str) -> float:
    return BENCH_SCALES[system] * float(
        os.environ.get("REPRO_BENCH_SCALE", "1")
    )


def write_artifact(name: str, text: str) -> None:
    """Persist a regenerated table/figure under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / name).write_text(text + "\n", encoding="utf-8")

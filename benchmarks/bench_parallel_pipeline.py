"""Bench P1: sharded-parallel tagging vs. the serial pipeline.

The parallel layer's contract has two halves: the output is *identical*
to the serial path (the spatio-temporal filter stays a single sequential
consumer, so Algorithm 3.1 is untouched), and throughput scales with
workers when cores exist to back them.  This bench measures both paths
on the same synthetic Liberty stream and asserts the first half
unconditionally; the second half is recorded, not asserted, because
speedup is a property of the host (see the cpu_count line in the
artifact — on a single-core runner the parallel path can only lose).

The committed perf trajectory lives in ``BENCH_pipeline.json``, emitted
by ``scripts/bench_report.py`` at the full 1M-record size; this bench is
the fast pytest-benchmark variant that runs with the rest of the suite.
"""

import os
import time

from repro import pipeline
from repro.core.tagging import RulesetHandle
from repro.logmodel.record import LogRecord
from repro.parallel import ParallelConfig
from repro.resilience.backpressure import BackpressureConfig

from _bench_utils import write_artifact

SYSTEM = "liberty"
N_RECORDS = int(100_000 * float(os.environ.get("REPRO_BENCH_SCALE", "1")))
BATCH_SIZE = 2048


def _synthetic_stream(n):
    ruleset = RulesetHandle(SYSTEM).resolve()
    cats = [cat for cat in ruleset if cat.example]
    records = []
    for i in range(n):
        t = i * 0.05
        source = f"n{i % 29}"
        if i % 11 == 0:
            cat = cats[i % len(cats)]
            records.append(LogRecord(
                timestamp=t, source=source, facility=cat.facility,
                body=cat.example, system=SYSTEM,
            ))
        else:
            records.append(LogRecord(
                timestamp=t, source=source, facility="kernel",
                body="routine interconnect heartbeat ok", system=SYSTEM,
            ))
    return records


def _signature(result):
    return (result.raw_alerts, result.filtered_alerts,
            result.stats.messages, result.category_counts())


def test_serial_pipeline_throughput(benchmark):
    records = _synthetic_stream(N_RECORDS)
    result = benchmark.pedantic(
        pipeline.run_stream, args=(records, SYSTEM), rounds=3, iterations=1,
    )
    assert result.raw_alert_count > 0


def test_parallel_pipeline_throughput(benchmark):
    records = _synthetic_stream(N_RECORDS)
    config = ParallelConfig(workers=2, batch_size=BATCH_SIZE)
    result = benchmark.pedantic(
        pipeline.run_stream, args=(records, SYSTEM),
        kwargs={"parallel": config}, rounds=3, iterations=1,
    )
    assert result.shard_stats is not None
    assert result.shard_stats.worker_crashes == 0


def test_parallel_matches_serial_and_records_trajectory(benchmark):
    records = _synthetic_stream(N_RECORDS)

    def sweep():
        t0 = time.perf_counter()
        serial = pipeline.run_stream(records, SYSTEM)
        serial_secs = time.perf_counter() - t0
        timings = []
        for workers in (2, 4):
            config = ParallelConfig(workers=workers, batch_size=BATCH_SIZE)
            t0 = time.perf_counter()
            par = pipeline.run_stream(records, SYSTEM, parallel=config)
            timings.append((workers, time.perf_counter() - t0, par))
        return serial, serial_secs, timings

    serial, serial_secs, timings = benchmark.pedantic(
        sweep, rounds=1, iterations=1,
    )

    # The unconditional half of the contract: identical output.
    for _, _, par in timings:
        assert _signature(par) == _signature(serial)

    serial_rps = N_RECORDS / serial_secs
    lines = [
        "Pipeline throughput: serial vs. sharded-parallel "
        f"({SYSTEM}, {N_RECORDS:,} records, cpu_count={os.cpu_count()})",
        f"serial:     {serial_rps:12,.0f} rec/s",
    ]
    for workers, secs, _ in timings:
        rps = N_RECORDS / secs
        lines.append(
            f"workers={workers}:  {rps:12,.0f} rec/s  "
            f"({rps / serial_rps:.2f}x)"
        )
    lines.append(
        "full 1M-record trajectory: scripts/bench_report.py "
        "-> benchmarks/output/BENCH_pipeline.json"
    )
    write_artifact("parallel_pipeline.txt", "\n".join(lines) + "\n")


def test_engine_driver_matrix_equivalence_and_cost(benchmark):
    """Every engine driver over the same stream: identical output
    asserted, per-driver cost recorded.  The bounded rows use roomy
    buffers and a pausable source so nothing sheds — the measured delta
    vs serial is the tick pump itself."""
    records = _synthetic_stream(N_RECORDS)
    parallel = ParallelConfig(workers=2, batch_size=BATCH_SIZE)
    bounded = BackpressureConfig(
        max_buffer=4 * BATCH_SIZE, filter_buffer=BATCH_SIZE,
        arrival_batch=BATCH_SIZE, service_batch=BATCH_SIZE,
        filter_batch=BATCH_SIZE,
    )
    matrix = {
        "serial": {},
        "sharded": {"parallel": parallel},
        "bounded": {"backpressure": bounded},
        "bounded-sharded": {"parallel": parallel, "backpressure": bounded},
    }

    def sweep():
        timings = []
        for name, kwargs in matrix.items():
            t0 = time.perf_counter()
            result = pipeline.run_stream(records, SYSTEM, **kwargs)
            timings.append((name, time.perf_counter() - t0, result))
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline = _signature(timings[0][2])
    for name, _, result in timings[1:]:
        assert _signature(result) == baseline, name

    serial_secs = timings[0][1]
    lines = [
        "Engine driver matrix: identical output, per-driver cost "
        f"({SYSTEM}, {N_RECORDS:,} records, cpu_count={os.cpu_count()})",
    ]
    for name, secs, _ in timings:
        rps = N_RECORDS / secs
        lines.append(
            f"{name:<16}: {rps:12,.0f} rec/s  ({serial_secs / secs:.2f}x)"
        )
    lines.append(
        "full 1M-record matrix: scripts/bench_report.py "
        "-> benchmarks/output/BENCH_engine.json"
    )
    write_artifact("engine_drivers.txt", "\n".join(lines) + "\n")

"""Bench T6: regenerate Table 6 (Red Storm syslog severity distribution).

Shape claims: CRIT is almost entirely the BUS_PAR disk-failure storm
(98.69% of alerts in the paper); alerts also hide in ERR/INFO while
NOTICE/DEBUG carry none — "syslog severity is of dubious value as a
failure indicator."
"""

from repro.reporting.tables import table6

from _bench_utils import write_artifact

SYSLOG_ORDER = ["EMERG", "ALERT", "CRIT", "ERR", "WARNING", "NOTICE",
                "INFO", "DEBUG"]


def test_table6_severity_distribution(benchmark, proportional_results):
    redstorm = proportional_results["redstorm"]
    text = benchmark(table6, redstorm)
    write_artifact("table6.txt", text)

    rows = {
        label: (messages, alerts)
        for label, messages, _, alerts, _ in
        redstorm.severity_tab.rows(SYSLOG_ORDER)
    }

    total_alerts = sum(a for _, a in rows.values())
    # CRIT alerts dominate the severity-bearing alert population.
    assert rows["CRIT"][1] / total_alerts > 0.9
    # ...and nearly all CRIT messages are alerts (the disk storm).
    assert rows["CRIT"][1] / rows["CRIT"][0] > 0.9

    # Alerts appear at ERR and INFO as well: severity does not rank them.
    assert rows["ERR"][1] > 0
    assert rows["INFO"][1] > 0
    assert rows["NOTICE"][1] == 0
    assert rows["DEBUG"][1] == 0

    # INFO dominates raw message volume (paper: 61.63%).
    total_messages = sum(m for m, _ in rows.values())
    assert rows["INFO"][0] / total_messages > 0.4

"""Bench F1: regenerate Figure 1 (operational-context state machine).

The paper's Figure 1 is the state diagram behind Red Storm RAS metrics;
the bench synthesizes a concrete operational history from it, renders the
timeline, and checks the disambiguation behavior the paper motivates with
the BGLMASTER example.
"""

import numpy as np

from repro.reporting.figures import figure1
from repro.simulation.opcontext import (
    OperationalState,
    disambiguate,
    synthesize_timeline,
)

from _bench_utils import SEED, write_artifact

DAY = 86400.0


def test_figure1_operational_context(benchmark):
    rng = np.random.default_rng(SEED)
    timeline = benchmark.pedantic(
        lambda: synthesize_timeline(
            np.random.default_rng(SEED), 0.0, 365 * DAY
        ),
        rounds=10,
        iterations=1,
    )
    text = figure1(timeline)
    write_artifact("figure1.txt", text)

    # A production machine spends most of its year in production uptime,
    # with both scheduled and unscheduled interruptions present.
    assert timeline.production_fraction() > 0.8
    states = {state for _, _, state, _ in timeline.intervals()}
    assert OperationalState.PRODUCTION_UPTIME in states
    assert states & {
        OperationalState.SCHEDULED_DOWNTIME,
        OperationalState.UNSCHEDULED_DOWNTIME,
    }

    # The paper's disambiguation payoff: the same ambiguous message flips
    # meaning with the recorded state.
    downtime = next(
        t0 for t0, _, state, _ in timeline.intervals() if state.is_downtime
    )
    assert disambiguate(timeline, downtime + 1.0, ambiguous=True) == "benign"
    production = next(
        t0 for t0, _, state, _ in timeline.intervals()
        if state is OperationalState.PRODUCTION_UPTIME
    )
    assert disambiguate(timeline, production + 1.0, ambiguous=True) == "critical"
    assert disambiguate(None, downtime + 1.0, ambiguous=True) == "unknown"

"""The composable stage engine behind :mod:`repro.pipeline`.

One :class:`AlertPath` expresses the per-record semantics of Sections
3.1-3.3 exactly once — validate -> observe stats -> tag -> severity ->
filter -> report/dead-letter — and pluggable drivers
(:class:`SerialDriver`, :class:`ShardedDriver`, :class:`BoundedDriver`)
decide the execution schedule.  :mod:`repro.engine.capabilities` is the
single composition table the pipeline and the CLI both validate against.
"""

from .capabilities import (
    BYTE_IDENTICAL,
    CAPABILITY_TABLE,
    SHED_TOLERANCE,
    DriverCapabilities,
    build_driver,
    capabilities_for,
    capability_lines,
    driver_name,
    validate_run_config,
)
from .drivers import BoundedDriver, Driver, DriverReport, SerialDriver, ShardedDriver
from .path import DEFAULT_REORDER_TOLERANCE, AlertPath
from .result import PipelineResult
from .stages import AlertListSink, Sink, Source, SourceFactory, Stage

__all__ = [
    "AlertListSink",
    "AlertPath",
    "BYTE_IDENTICAL",
    "BoundedDriver",
    "CAPABILITY_TABLE",
    "DEFAULT_REORDER_TOLERANCE",
    "Driver",
    "DriverCapabilities",
    "DriverReport",
    "PipelineResult",
    "SHED_TOLERANCE",
    "SerialDriver",
    "ShardedDriver",
    "Sink",
    "Source",
    "SourceFactory",
    "Stage",
    "build_driver",
    "capabilities_for",
    "capability_lines",
    "driver_name",
    "validate_run_config",
]

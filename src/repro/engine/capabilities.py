"""The single source of truth for what composes with what.

Before the engine, composition rules lived in three places — guard
clauses in ``run_stream``, guard clauses in ``run_system``, and an
ad-hoc argument check in the CLI — and they disagreed about wording and
occasionally about substance.  This module is the one table everything
consults: :func:`build_driver` picks the execution driver for a knob
combination, :func:`validate_run_config` rejects the (few) combinations
that remain meaningless, and :func:`capability_lines` renders the table
for ``--help`` text and docs.

Every driver now supports checkpoint/resume and dead-letter quarantine;
the columns that differ are *where* the consistency barrier sits and how
strong the equivalence-to-serial guarantee is:

========================  =================  ====================
driver                    barrier            equivalence
========================  =================  ====================
serial                    every record       (reference)
sharded                   batch boundary     byte-identical
bounded                   drained queues     shedding tolerance
bounded-sharded           drained queues     shedding tolerance
service                   drained queues     shedding tolerance
serial-predict            every record       byte-identical
========================  =================  ====================

The ``service`` row is not selected by :func:`build_driver` — it is the
long-lived multi-tenant daemon (``repro serve``), which runs one
shedding-tolerant path *per tenant* and checkpoints each tenant at its
own drained-queue barrier.  ``serial-predict`` likewise is a benchmark
row, not a separate driver: the serial schedule with the online
prediction stage observing the sink, whose cost the perf gate ratchets
against plain serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..parallel.config import ParallelConfig
from ..resilience.backpressure import BackpressureConfig
from .drivers import BoundedDriver, Driver, SerialDriver, ShardedDriver

#: Equivalence classes a driver can promise relative to the serial run.
BYTE_IDENTICAL = "byte-identical"
SHED_TOLERANCE = "shedding-tolerance"


@dataclass(frozen=True)
class DriverCapabilities:
    """One row of the composition table."""

    name: str
    #: Where a checkpoint is consistent: ``"record"`` (after any record),
    #: ``"batch"`` (at batch boundaries; in-flight worker batches have
    #: touched no path state), or ``"drained-queues"`` (only when every
    #: bounded queue is empty).
    checkpoint_barrier: str
    #: Output guarantee relative to an identical serial run.
    equivalence: str
    notes: str

    def line(self) -> str:
        return (
            f"{self.name:<16} checkpoint at {self.checkpoint_barrier:<14} "
            f"{self.equivalence:<19} {self.notes}"
        )


CAPABILITY_TABLE = {
    caps.name: caps
    for caps in (
        DriverCapabilities(
            name="serial",
            checkpoint_barrier="record",
            equivalence=BYTE_IDENTICAL,
            notes="the reference schedule; one record at a time",
        ),
        DriverCapabilities(
            name="sharded",
            checkpoint_barrier="batch",
            equivalence=BYTE_IDENTICAL,
            notes="tagging in worker processes; order-preserving merge",
        ),
        DriverCapabilities(
            name="bounded",
            checkpoint_barrier="drained-queues",
            equivalence=SHED_TOLERANCE,
            notes="bounded queues, credit flow control, load shedding",
        ),
        DriverCapabilities(
            name="bounded-sharded",
            checkpoint_barrier="drained-queues",
            equivalence=SHED_TOLERANCE,
            notes="bounded ingest feeding the sharded tagger's window",
        ),
        DriverCapabilities(
            name="service",
            checkpoint_barrier="drained-queues",
            equivalence=SHED_TOLERANCE,
            notes="long-lived multi-tenant ingest; per-tenant isolation",
        ),
        DriverCapabilities(
            name="serial-predict",
            checkpoint_barrier="record",
            equivalence=BYTE_IDENTICAL,
            notes="serial schedule plus the online prediction stage",
        ),
    )
}


def driver_name(
    parallel: Optional[ParallelConfig] = None,
    backpressure: Optional[BackpressureConfig] = None,
) -> str:
    """Which driver a knob combination selects."""
    if backpressure is not None:
        return "bounded-sharded" if parallel is not None else "bounded"
    return "sharded" if parallel is not None else "serial"


def capabilities_for(
    parallel: Optional[ParallelConfig] = None,
    backpressure: Optional[BackpressureConfig] = None,
) -> DriverCapabilities:
    return CAPABILITY_TABLE[driver_name(parallel, backpressure)]


def build_driver(
    parallel: Optional[ParallelConfig] = None,
    backpressure: Optional[BackpressureConfig] = None,
) -> Driver:
    """The execution driver for a knob combination.  Every combination is
    legal: parallelism, backpressure, and checkpointing are orthogonal."""
    if backpressure is not None:
        return BoundedDriver(backpressure, parallel=parallel)
    if parallel is not None:
        return ShardedDriver(parallel)
    return SerialDriver()


def validate_run_config(
    parallel: Optional[ParallelConfig] = None,
    backpressure: Optional[BackpressureConfig] = None,
    faults=None,
    supervised: bool = False,
    restart_budget: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
) -> DriverCapabilities:
    """Reject the knob combinations that remain meaningless; return the
    capability row for the rest.

    This is deliberately short: the historical guards (parallel vs
    backpressure, parallel vs checkpoint/resume, parallel vs supervision)
    are gone because the engine made those pairs compose.  What is left
    is a knob that would be *silently ignored* — a restart budget with
    nothing supervising restarts — which we refuse rather than swallow.
    """
    if restart_budget is not None and not (supervised or faults is not None):
        raise ValueError(
            "restart_budget only takes effect under supervision; pass "
            "supervised=True or faults=... (or drop the budget)"
        )
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be at least 1 record")
    return capabilities_for(parallel, backpressure)


def capability_lines() -> List[str]:
    """The composition table rendered for ``--help`` text and docs."""
    header = (
        f"{'driver':<16} {'checkpoint barrier':<28} "
        f"{'vs serial':<19} notes"
    )
    return [header] + [
        caps.line() for caps in CAPABILITY_TABLE.values()
    ] + [
        "every barrier above also persists: pass --state-dir and each "
        "snapshot is written",
        "through the durable checkpoint store (WAL + atomic generations; "
        "see repro.resilience.durability),",
        "so an interrupted run -- SIGKILL included -- resumes from disk "
        "at the same barrier.",
    ]

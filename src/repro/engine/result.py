"""The result object every driver produces: one machine's pipeline run.

:class:`PipelineResult` used to live in :mod:`repro.pipeline`; it moved
here when the three forked pipeline loops were unified into the stage
engine, because the result is a property of the *semantics* (the
:class:`~repro.engine.path.AlertPath`), not of any particular execution
driver.  :mod:`repro.pipeline` re-exports it, so downstream code keeps
importing ``pipeline.PipelineResult`` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..core.categories import Alert
from ..core.filtering import DEFAULT_THRESHOLD, FilterReport
from ..analysis.severity_eval import SeverityCrossTab
from ..logio.stats import LogStats
from ..parallel.sharded import ShardStats
from ..resilience.backpressure import OverloadReport
from ..resilience.deadletter import DeadLetterQueue, DeadLetterSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..resilience.checkpoint import CheckpointManager
    from ..simulation.generator import GeneratedLog
    from ..store.columnar import ColumnarStore
    from ..store.query import AlertQuery
    from ..streaming.stage import PredictionReport


@dataclass
class PipelineResult:
    """Everything one machine's pipeline run produced."""

    system: str
    stats: LogStats
    raw_alerts: List[Alert]
    filtered_alerts: List[Alert]
    filter_report: FilterReport
    severity_tab: SeverityCrossTab
    corrupted_messages: int
    generated: Optional["GeneratedLog"] = None
    threshold: float = DEFAULT_THRESHOLD
    dead_letters: Optional[DeadLetterQueue] = None
    degraded: bool = False
    restarts: int = 0
    failure_log: List[str] = field(default_factory=list)
    overload: Optional[OverloadReport] = None
    shard_stats: Optional[ShardStats] = None
    #: The checkpoint manager the run snapshotted into, when the caller
    #: asked for unsupervised checkpointing (``run_system(checkpoint_every=
    #: ...)``); ``checkpoints.latest`` is the resume point after a crash.
    checkpoints: Optional["CheckpointManager"] = None
    #: Dead-letter accounting as it stood the moment the supervisor's
    #: restart budget ran out — *before* the degraded result rolled the
    #: queue back to the last checkpoint.  Quarantines that happened
    #: during failed attempts (after the final checkpoint) are only here,
    #: so post-mortem conservation checks reconcile against this snapshot,
    #: not against ``dead_letters``.
    final_dead_letters: Optional[DeadLetterSnapshot] = None
    #: Online-prediction outcome (warnings + correlation-graph snapshot)
    #: when the run was started with ``predict=`` — see
    #: :class:`repro.streaming.stage.PredictionReport`.
    prediction: Optional["PredictionReport"] = None
    #: The spilled columnar store this run wrote, when started with
    #: ``store_dir=``.  ``raw_alerts`` / ``filtered_alerts`` are then
    #: lazy scan views over it rather than lists, and :attr:`alerts`
    #: queries it with partition pushdown.  ``None`` for in-memory runs
    #: — :attr:`alerts` still works, backed by the lists.
    store: Optional["ColumnarStore"] = None
    #: Cached in-memory store backend for :attr:`alerts` on list-backed
    #: results (built on first use; never part of equality/repr).
    _alert_store: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    @property
    def alerts(self) -> "AlertQuery":
        """The single analytics access path: a re-iterable, narrowable
        :class:`~repro.store.query.AlertQuery` over this run's alerts —
        partition/column pushdown when the run spilled to disk, a thin
        view over the in-memory lists otherwise."""
        from ..store.query import AlertQuery

        if self.store is not None:
            return AlertQuery(self.store)
        if self._alert_store is None:
            from ..store.memory import MemoryAlertStore

            self._alert_store = MemoryAlertStore.from_lists(
                self.system, self.raw_alerts, self.filtered_alerts
            )
        return AlertQuery(self._alert_store)

    @property
    def message_count(self) -> int:
        return self.stats.messages

    @property
    def raw_alert_count(self) -> int:
        return len(self.raw_alerts)

    @property
    def filtered_alert_count(self) -> int:
        return len(self.filtered_alerts)

    @property
    def observed_categories(self) -> int:
        if self.store is not None:
            return len(self.store.categories())
        return len({alert.category for alert in self.raw_alerts})

    @property
    def dead_letter_count(self) -> int:
        return self.dead_letters.quarantined if self.dead_letters else 0

    def category_counts(self) -> Dict[str, List[int]]:
        """Per-category [raw, filtered] counts (the Table 4 columns)."""
        return dict(self.filter_report.by_category)

    def alert_type_counts(self) -> Dict[object, tuple]:
        """``{AlertType: (raw, kept)}`` — the Table 3 cells.  A manifest
        pushdown on spilled runs; a single list pass otherwise."""
        return self.alerts.count_by_type()

    def summary(self) -> str:
        """A Table 2-style one-machine summary."""
        lines = [
            f"system:            {self.system}",
            f"messages:          {self.message_count:,}",
            f"log size:          {self.stats.raw_bytes:,} bytes "
            f"({self.stats.compressed_bytes:,} gzipped)",
            f"span:              {self.stats.days:.1f} days "
            f"({self.stats.rate_bytes_per_second:.1f} bytes/sec)",
            f"alerts (raw):      {self.raw_alert_count:,}",
            f"alerts (filtered): {self.filtered_alert_count:,} "
            f"(T={self.threshold:g}s)",
            f"categories:        {self.observed_categories}",
            f"corrupted:         {self.corrupted_messages:,}",
        ]
        if self.dead_letters is not None and self.dead_letters.quarantined:
            lines.append(f"dead letters:      {self.dead_letters.summary()}")
        if self.overload is not None:
            lines.extend(self.overload.summary_lines())
        if self.shard_stats is not None:
            lines.append(self.shard_stats.summary_line())
        if self.checkpoints is not None:
            latest = self.checkpoints.latest
            at = (
                f"latest at record {latest.records_consumed:,}"
                if latest is not None else "none retained"
            )
            lines.append(
                f"checkpoints:       {self.checkpoints.taken} snapshots "
                f"({at})"
            )
            store = getattr(self.checkpoints, "store", None)
            status = getattr(store, "status", None)
            if status is not None and status.degraded:
                lines.append(status.summary_line())
        if self.restarts:
            lines.append(f"restarts:          {self.restarts}")
        if self.degraded:
            lines.append(
                "degraded:          yes (restart budget exhausted; "
                "counts cover the stream up to the last checkpoint)"
            )
        if self.prediction is not None:
            rows = self.prediction.summary_lines()
            lines.append(f"prediction:        {rows[0]}")
            lines.extend(f"                   {row}" for row in rows[1:])
        if self.final_dead_letters is not None:
            final = self.final_dead_letters
            reasons = ", ".join(
                f"{reason}: {count}" for reason, count in final.by_reason
            )
            lines.append(
                f"final dead-letter accounting (at exhaustion): "
                f"{final.quarantined} quarantined"
                + (f" ({reasons})" if reasons else "")
            )
        return "\n".join(lines)

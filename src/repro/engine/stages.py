"""Stage protocols: the composition contract of the engine.

The paper's pipeline (Section 3) is a linear chain — collect -> tag ->
filter -> characterize — and every execution strategy (serial, sharded,
bounded) runs the *same* chain under a different schedule.  These
protocols pin the seams:

* a :class:`Source` produces log records (a generator, a file reader, a
  bounded ingest buffer — anything iterable);
* a :class:`Stage` consumes one record at a time and mutates its own
  state (the :class:`~repro.engine.path.AlertPath` is the canonical
  stage: it *is* the per-record semantics);
* a :class:`Sink` receives every alert the filter ruled on, with the
  verdict (:class:`AlertListSink` keeps the raw/filtered lists and the
  Table 4 report that :class:`~repro.engine.result.PipelineResult`
  carries).

Drivers (:mod:`repro.engine.drivers`) are deliberately *not* a protocol
method on stages: a driver owns the schedule (when each record moves),
the stages own the semantics (what happens to it).  That split is what
makes parallelism, backpressure, and checkpointing orthogonal wrappers
instead of forked loops.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Protocol, runtime_checkable

from ..core.categories import Alert
from ..core.filtering import FilterReport
from ..logmodel.record import LogRecord


@runtime_checkable
class Source(Protocol):
    """Anything that yields log records in timestamp order."""

    def __iter__(self) -> Iterator[LogRecord]: ...


#: A replayable source: calling it re-presents the *same* deterministic
#: stream from the beginning.  Checkpoint/resume and supervision need
#: replayability — a resumed run skips the consumed prefix of a fresh
#: presentation — and a plain iterator cannot promise that.
SourceFactory = Callable[[], Iterable[LogRecord]]


@runtime_checkable
class Stage(Protocol):
    """One per-record processing step with internal state."""

    def process(self, record: LogRecord) -> None: ...


@runtime_checkable
class Sink(Protocol):
    """Receives every alert the filter ruled on, with the verdict."""

    def emit(self, alert: Alert, kept: bool) -> None: ...


class AlertListSink:
    """The default sink: raw/filtered alert lists plus the Table 4 report.

    Resume support: a restored run hands in the lists recovered from the
    checkpoint and the sink keeps appending to them in place.
    """

    def __init__(
        self,
        report: FilterReport,
        raw_alerts: List[Alert],
        filtered_alerts: List[Alert],
    ):
        self.report = report
        self.raw_alerts = raw_alerts
        self.filtered_alerts = filtered_alerts

    def emit(self, alert: Alert, kept: bool) -> None:
        self.raw_alerts.append(alert)
        self.report.record(alert, kept)
        if kept:
            self.filtered_alerts.append(alert)

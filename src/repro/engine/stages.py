"""Stage protocols: the composition contract of the engine.

The paper's pipeline (Section 3) is a linear chain — collect -> tag ->
filter -> characterize — and every execution strategy (serial, sharded,
bounded) runs the *same* chain under a different schedule.  These
protocols pin the seams:

* a :class:`Source` produces log records (a generator, a file reader, a
  bounded ingest buffer — anything iterable);
* a :class:`Stage` consumes one record at a time and mutates its own
  state (the :class:`~repro.engine.path.AlertPath` is the canonical
  stage: it *is* the per-record semantics);
* a :class:`Sink` receives every alert the filter ruled on, with the
  verdict (:class:`AlertListSink` keeps the raw/filtered lists and the
  Table 4 report that :class:`~repro.engine.result.PipelineResult`
  carries).

Drivers (:mod:`repro.engine.drivers`) are deliberately *not* a protocol
method on stages: a driver owns the schedule (when each record moves),
the stages own the semantics (what happens to it).  That split is what
makes parallelism, backpressure, and checkpointing orthogonal wrappers
instead of forked loops.
"""

from __future__ import annotations

from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..core.categories import Alert
from ..core.filtering import FilterReport
from ..logmodel.record import LogRecord


@runtime_checkable
class Source(Protocol):
    """Anything that yields log records in timestamp order."""

    def __iter__(self) -> Iterator[LogRecord]: ...


#: A replayable source: calling it re-presents the *same* deterministic
#: stream from the beginning.  Checkpoint/resume and supervision need
#: replayability — a resumed run skips the consumed prefix of a fresh
#: presentation — and a plain iterator cannot promise that.
SourceFactory = Callable[[], Iterable[LogRecord]]


@runtime_checkable
class Stage(Protocol):
    """One per-record processing step with internal state.

    ``process`` is the required contract.  A stage *may* also provide
    ``process_batch(records)`` — drivers route whole batches through it
    via :func:`process_batch`, which falls back to the per-record loop,
    so third-party stages written against the original protocol keep
    working unchanged.
    """

    def process(self, record: LogRecord) -> None: ...


@runtime_checkable
class BatchStage(Stage, Protocol):
    """A stage that also accepts whole record batches."""

    def process_batch(self, records: Sequence[LogRecord]) -> None: ...


@runtime_checkable
class Sink(Protocol):
    """Receives every alert the filter ruled on, with the verdict.

    ``emit`` is the required contract; a sink *may* also provide
    ``emit_batch(pairs)`` for ``(alert, kept)`` sequences — see
    :func:`emit_batch` for the dispatching fallback.
    """

    def emit(self, alert: Alert, kept: bool) -> None: ...


@runtime_checkable
class BatchSink(Sink, Protocol):
    """A sink that also accepts whole ``(alert, kept)`` batches."""

    def emit_batch(self, pairs: Sequence[Tuple[Alert, bool]]) -> None: ...


def process_batch(stage: Stage, records: Sequence[LogRecord]) -> None:
    """Feed a batch to ``stage``, preferring its native batch method.

    The default for stages that only implement ``process`` is the exact
    per-record loop the drivers always ran, so batch-first drivers
    compose with third-party per-record stages unchanged.
    """
    native = getattr(stage, "process_batch", None)
    if native is not None:
        native(records)
        return
    for record in records:
        stage.process(record)


def emit_batch(sink: Sink, pairs: Sequence[Tuple[Alert, bool]]) -> None:
    """Feed ``(alert, kept)`` pairs to ``sink``, preferring its native
    batch method and falling back to per-pair :meth:`Sink.emit`."""
    native = getattr(sink, "emit_batch", None)
    if native is not None:
        native(pairs)
        return
    for alert, kept in pairs:
        sink.emit(alert, kept)


class AlertListSink:
    """The default sink: raw/filtered alert lists plus the Table 4 report.

    Resume support: a restored run hands in the lists recovered from the
    checkpoint and the sink keeps appending to them in place.
    """

    def __init__(
        self,
        report: FilterReport,
        raw_alerts: List[Alert],
        filtered_alerts: List[Alert],
    ):
        self.report = report
        self.raw_alerts = raw_alerts
        self.filtered_alerts = filtered_alerts

    def emit(self, alert: Alert, kept: bool) -> None:
        self.raw_alerts.append(alert)
        self.report.record(alert, kept)
        if kept:
            self.filtered_alerts.append(alert)

    def emit_batch(self, pairs: Sequence[Tuple[Alert, bool]]) -> None:
        raw_append = self.raw_alerts.append
        kept_append = self.filtered_alerts.append
        record = self.report.record
        for alert, kept in pairs:
            raw_append(alert)
            record(alert, kept)
            if kept:
                kept_append(alert)


class ObservingSink:
    """Tees the ruled-on alert flow into a side observer.

    Wraps any sink and forwards every ``emit``/``emit_batch`` to it
    unchanged, then hands the same pairs to an *observer* — an object
    with ``observe(alert, kept)`` and optionally
    ``observe_batch(pairs)`` (the prediction stage is the canonical
    observer).  The wrapped sink's alert lists and report stay the
    authoritative state, so code that reads ``path.sink.raw_alerts`` or
    replaces ``path.sink`` with a service sink keeps working: the
    wrapper delegates those attributes to the inner sink.
    """

    def __init__(self, inner: Sink, observer: object):
        self.inner = inner
        self.observer = observer

    @property
    def report(self) -> FilterReport:
        return self.inner.report  # type: ignore[attr-defined]

    @property
    def raw_alerts(self) -> List[Alert]:
        return self.inner.raw_alerts  # type: ignore[attr-defined]

    @property
    def filtered_alerts(self) -> List[Alert]:
        return self.inner.filtered_alerts  # type: ignore[attr-defined]

    def emit(self, alert: Alert, kept: bool) -> None:
        self.inner.emit(alert, kept)
        self.observer.observe(alert, kept)  # type: ignore[attr-defined]

    def emit_batch(self, pairs: Sequence[Tuple[Alert, bool]]) -> None:
        emit_batch(self.inner, pairs)
        native = getattr(self.observer, "observe_batch", None)
        if native is not None:
            native(pairs)
        else:
            for alert, kept in pairs:
                self.observer.observe(alert, kept)  # type: ignore[attr-defined]

"""The per-record semantics of the pipeline, expressed exactly once.

Before the engine existed, the semantic core of Section 3 — admission,
Table 2 volume statistics, expert-rule tagging, the severity cross-tab,
the Algorithm 3.1 offer, and every dead-letter branch — was hand-forked
into three loops inside ``pipeline.py`` (serial, sharded-parallel, and
bounded), and every behavioral PR had to patch all three.
:class:`AlertPath` is that core as one object.  Drivers
(:mod:`repro.engine.drivers`) decide *when* each step runs; the path
decides *what* the step does, so the serial, sharded, and bounded
schedules cannot drift apart semantically.

The granular methods compose into the two canonical per-record shapes:

* :meth:`process` — admit -> observe -> tag (severity included) ->
  offer, the serial shape, also used by the bounded driver split across
  queue boundaries (observe+tag at the service stage, offer at the
  filter stage);
* :meth:`apply_tagged` + :meth:`offer` — the sharded shape, where the
  tag outcome was computed in a worker process and the parent replays
  the same severity/dead-letter decisions on the merged stream.

The path also owns resumability: :meth:`snapshot` captures every piece
of mutable state plus ``consumed`` (records pulled from the input
stream), and constructing a path with ``resume_from=`` restores it, so
checkpoint/resume works identically under every driver.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..core.filtering import (
    DEFAULT_THRESHOLD,
    FilterReport,
    OutOfOrderError,
    SpatioTemporalFilter,
)
from ..core.categories import Alert
from ..core.rules import get_ruleset
from ..core.tagging import Tagger
from ..analysis.severity_eval import SeverityCrossTab
from ..logio.stats import StatsCollector
from ..logmodel.record import LogRecord
from ..resilience.checkpoint import (
    PipelineCheckpoint,
    copy_report,
    copy_severity,
)
from ..resilience.deadletter import (
    DeadLetterQueue,
    REASON_INVALID_RECORD,
    REASON_OUT_OF_ORDER,
    REASON_TAGGER_ERROR,
)
from ..parallel.sharded import TaggerErrorReplay
from .result import PipelineResult
from .stages import AlertListSink, ObservingSink, emit_batch

#: How far back an alert timestamp may run (collector fan-in jitter,
#: syslog's one-second granularity) before it is quarantined rather than
#: filtered.  Matches the strict-monotonicity contract of Algorithm 3.1.
DEFAULT_REORDER_TOLERANCE = 1.0


def _valid_record(record: LogRecord) -> bool:
    """Structural admission check: can downstream stages process this?"""
    try:
        if not math.isfinite(record.timestamp):
            return False
    except TypeError:
        return False
    return isinstance(record.body, str) and isinstance(record.source, str)


class AlertPath:
    """validate -> observe stats -> tag -> severity -> filter ->
    report/dead-letter, as one stateful object shared by every driver.

    With ``dead_letters`` attached the path quarantines what it cannot
    process instead of raising; without a queue the historical strict
    behavior holds (admission admits everything, errors propagate).

    Pass ``resume_from`` (a :class:`PipelineCheckpoint`) to restore
    mid-stream state; the caller must also skip the consumed prefix of
    the re-presented stream (``islice(source, path.consumed, None)``).
    """

    def __init__(
        self,
        system: str,
        threshold: float = DEFAULT_THRESHOLD,
        dead_letters: Optional[DeadLetterQueue] = None,
        reorder_tolerance: float = DEFAULT_REORDER_TOLERANCE,
        resume_from: Optional[PipelineCheckpoint] = None,
        tagger: Optional[Tagger] = None,
        prediction: Optional[object] = None,
        store_writer: Optional[object] = None,
    ):
        self.system = system
        self.threshold = threshold
        self.dead_letters = dead_letters
        self.reorder_tolerance = reorder_tolerance
        self.tagger = tagger if tagger is not None else Tagger(get_ruleset(system))
        #: Optional prediction stage (duck-typed:
        #: :class:`repro.streaming.stage.PredictionStage`); when present
        #: the sink is wrapped so the stage observes every ruled-on
        #: alert, and its state rides the checkpoint wire.
        self.prediction = prediction
        #: Optional columnar store writer (duck-typed:
        #: :class:`repro.store.columnar.ColumnarStoreWriter`); when
        #: present the sink spills every ruled-on alert to disk instead
        #: of keeping Python lists, and the committed sequence watermark
        #: rides the checkpoint as ``store_state``.
        self.store_writer = store_writer

        if resume_from is not None:
            if resume_from.system != system:
                raise ValueError(
                    f"checkpoint is for {resume_from.system!r}, not {system!r}"
                )
            if resume_from.threshold != threshold:
                raise ValueError(
                    "checkpoint was taken with a different threshold"
                )
            self.stats_collector = resume_from.restore_stats()
            self.filter = resume_from.restore_filter()
            self.report = resume_from.restore_report()
            self.severity_tab = resume_from.restore_severity()
            raw = list(resume_from.raw_alerts)
            filtered = list(resume_from.filtered_alerts)
            self.corrupted = resume_from.corrupted_messages
            self.consumed = resume_from.records_consumed
            if dead_letters is not None:
                dead_letters.restore(resume_from.dead_letters)
            self.resumed_shed_state = resume_from.shed_state
            if prediction is not None:
                # getattr: checkpoints pickled before the field existed
                # restore as a fresh (empty) prediction stage.
                state = getattr(resume_from, "prediction_state", None)
                if state is not None:
                    prediction.load_state_dict(state)
        else:
            self.stats_collector = StatsCollector(system)
            self.filter = SpatioTemporalFilter(
                threshold, reorder_tolerance=reorder_tolerance
            )
            self.report = FilterReport(threshold=threshold)
            self.severity_tab = SeverityCrossTab()
            raw = []
            filtered = []
            self.corrupted = 0
            self.consumed = 0
            self.resumed_shed_state = None
        if store_writer is not None:
            from ..store.sink import ColumnarSink

            resume_seq = 0
            if resume_from is not None:
                # getattr: checkpoints pickled before the field existed.
                state = getattr(resume_from, "store_state", None)
                if state is None:
                    raise ValueError(
                        "checkpoint was taken without a columnar store; "
                        "resume it without store_dir"
                    )
                resume_seq = state["seq"]
            store_writer.begin(resume_seq)
            self.sink = ColumnarSink(self.report, store_writer)
        else:
            if resume_from is not None and getattr(
                resume_from, "store_state", None
            ) is not None:
                raise ValueError(
                    "checkpoint was taken with a columnar store; "
                    "resume it with the same store_dir"
                )
            self.sink = AlertListSink(self.report, raw, filtered)
        if prediction is not None:
            self.sink = ObservingSink(self.sink, prediction)

    # -- admission ---------------------------------------------------------

    @staticmethod
    def valid(record: LogRecord) -> bool:
        """Structural validity, with no side effects (drivers that ship
        records elsewhere check ahead of time; quarantine still happens
        in stream order via :meth:`admit`)."""
        return _valid_record(record)

    def admit(self, record: LogRecord) -> bool:
        """Count one input record; quarantine the structurally invalid
        before they can crash the renderer or the filter.  Returns
        ``True`` when the record proceeds.  Strict mode (no dead-letter
        queue) admits everything, as the pipeline always has."""
        self.consumed += 1
        if self.dead_letters is not None and not _valid_record(record):
            self.dead_letters.put(record, REASON_INVALID_RECORD)
            return False
        return True

    # -- the per-record stages --------------------------------------------

    def observe(self, record: LogRecord) -> None:
        """Table 2 volume statistics plus the corruption count."""
        self.stats_collector.observe_record(record)
        if record.corrupted:
            self.corrupted += 1

    def tag(self, record: LogRecord) -> Optional[Alert]:
        """Tag in-process and record the severity cross-tab.  A record
        that crashes the rules engine is quarantined (or raises in
        strict mode) and skips the severity tab, exactly as the serial
        loop always did."""
        try:
            alert = self.tagger.tag(record)
        except Exception as exc:
            if self.dead_letters is None:
                raise
            self.dead_letters.put(record, REASON_TAGGER_ERROR, repr(exc))
            return None
        self.severity_tab.add(record, alert is not None)
        return alert

    def apply_tagged(
        self,
        record: LogRecord,
        alert: Optional[Alert] = None,
        error: Optional[str] = None,
    ) -> Optional[Alert]:
        """The sharded form of :meth:`tag`: the outcome was computed in a
        worker process; replay the same severity/dead-letter decisions.
        ``error`` is the worker-side exception ``repr`` (the original
        object cannot cross the process boundary)."""
        if error is not None:
            if self.dead_letters is None:
                raise TaggerErrorReplay(error)
            self.dead_letters.put(record, REASON_TAGGER_ERROR, error)
            return None
        self.severity_tab.add(record, alert is not None)
        return alert

    def offer(self, alert: Alert) -> None:
        """One Algorithm 3.1 offer: filter, report, collect — or
        quarantine an alert whose timestamp runs backwards beyond the
        reorder tolerance."""
        try:
            kept = self.filter.offer(alert)
        except OutOfOrderError as exc:
            if self.dead_letters is None:
                raise
            self.dead_letters.put(alert.record, REASON_OUT_OF_ORDER, str(exc))
            return
        self.sink.emit(alert, kept)

    def process(self, record: LogRecord) -> None:
        """The whole post-admission per-record step (the serial shape)."""
        self.observe(record)
        alert = self.tag(record)
        if alert is not None:
            self.offer(alert)

    # -- the batch shapes --------------------------------------------------
    #
    # Semantically these are loops over the per-record methods above; the
    # batch forms exist because per-record call overhead (render, encode,
    # compress, severity bookkeeping) dominates the serial hot path.
    # Quarantine mode keeps the genuine per-record loop: dead-letter
    # interleaving is part of the observable contract, and quarantined
    # runs are never the throughput-critical ones.

    def process_batch(self, records: Sequence[LogRecord]) -> None:
        """Admit and process a whole batch (the serial driver's unit).

        Strict mode (no dead-letter queue) runs fully batched: one
        stats observation, one severity tally, and one in-order pass of
        filter offers — byte-identical to the per-record loop, which the
        engine equivalence tests pin.  Errors still propagate (strict),
        though a mid-batch crash leaves the already-abandoned path with
        the whole batch observed rather than a prefix; strict crashes
        discard the path either way.
        """
        if self.dead_letters is not None:
            for record in records:
                if self.admit(record):
                    self.process(record)
            return
        n = len(records)
        if n == 0:
            return
        self.consumed += n
        self.stats_collector.observe_batch(records)
        self.corrupted += sum(1 for r in records if r.corrupted)
        texts = [
            f"{r.facility}: {r.body}" if r.facility else r.body
            for r in records
        ]
        hits = self.tagger.match_texts(texts)
        self.severity_tab.add_batch(records, [i for i, _ in hits])
        if not hits:
            return
        offer = self.filter.offer
        pairs = []
        from_record = Alert.from_record
        for i, category in hits:
            alert = from_record(records[i], category)
            pairs.append((alert, offer(alert)))
        emit_batch(self.sink, pairs)

    def tag_batch_admitted(
        self, records: Sequence[LogRecord]
    ) -> List[Alert]:
        """Batch form of :meth:`observe` + :meth:`tag` for records that
        already passed :meth:`admit` (the bounded tick pump's unit):
        one stats observation, one ruleset pass, one severity tally.

        A batch the rules engine cannot match falls back to the genuine
        per-record loop — nothing has been observed at that point, so
        the fallback reproduces the serial interleaving exactly,
        including the tagger-error dead letter for the poison record.
        """
        if not records:
            return []
        try:
            texts = [
                f"{r.facility}: {r.body}" if r.facility else r.body
                for r in records
            ]
            hits = self.tagger.match_texts(texts)
        except Exception:
            alerts: List[Alert] = []
            for record in records:
                self.observe(record)
                alert = self.tag(record)
                if alert is not None:
                    alerts.append(alert)
            return alerts
        self.stats_collector.observe_batch(records)
        self.corrupted += sum(1 for r in records if r.corrupted)
        self.severity_tab.add_batch(records, [i for i, _ in hits])
        from_record = Alert.from_record
        return [from_record(records[i], category) for i, category in hits]

    def process_tagged_batch(self, records, outcome) -> None:
        """The batch form of the sharded replay: ``outcome`` is a
        :class:`~repro.core.tagging.BatchOutcome` computed by the worker
        pool for exactly ``records``.  Strict mode only — the sharded
        driver keeps its per-record replay when a dead-letter queue (or
        a worker error, whose position in the stream is observable in
        strict mode) is involved."""
        errors = outcome.errors
        if self.dead_letters is not None or errors:
            error_map = outcome.error_map()
            hit_map = outcome.hit_map()
            for i, record in enumerate(records):
                if not self.admit(record):
                    continue
                self.observe(record)
                alert = self.apply_tagged(
                    record, alert=hit_map.get(i), error=error_map.get(i)
                )
                if alert is not None:
                    self.offer(alert)
            return
        n = len(records)
        if n == 0:
            return
        self.consumed += n
        self.stats_collector.observe_batch(records)
        self.corrupted += sum(1 for r in records if r.corrupted)
        self.severity_tab.add_batch(records, [i for i, _ in outcome.hits])
        if not outcome.hits:
            return
        offer = self.filter.offer
        pairs = [(alert, offer(alert)) for _i, alert in outcome.hits]
        emit_batch(self.sink, pairs)

    # -- resumability ------------------------------------------------------

    def snapshot(
        self, shed_state: Optional[Dict[str, float]] = None
    ) -> PipelineCheckpoint:
        """Complete resumable state at the current record boundary.
        Drivers must only call this when every consumed record is fully
        accounted for (processed, quarantined, or shed) — the serial
        driver trivially always is; batch/queue drivers call it at their
        barriers.

        A store-backed path commits the writer here, so every checkpoint
        is also a store commit barrier: the checkpoint's ``store_state``
        watermark never lands inside a committed page, which is what
        makes resume truncation page-granular.  The alert tuples travel
        empty in that mode — the column files are the durable copy."""
        if self.store_writer is not None:
            store_state = {"seq": self.store_writer.commit()}
            raw_alerts: tuple = ()
            filtered_alerts: tuple = ()
        else:
            store_state = None
            raw_alerts = tuple(self.sink.raw_alerts)
            filtered_alerts = tuple(self.sink.filtered_alerts)
        return PipelineCheckpoint(
            system=self.system,
            threshold=self.threshold,
            records_consumed=self.consumed,
            stats=self.stats_collector.snapshot(),
            filter_state=self.filter.state_dict(),
            report=copy_report(self.report),
            severity=copy_severity(self.severity_tab),
            raw_alerts=raw_alerts,
            filtered_alerts=filtered_alerts,
            corrupted_messages=self.corrupted,
            dead_letters=(
                self.dead_letters.snapshot() if self.dead_letters else None
            ),
            shed_state=shed_state,
            prediction_state=(
                self.prediction.state_dict()
                if self.prediction is not None
                else None
            ),
            store_state=store_state,
        )

    # -- finishing ---------------------------------------------------------

    def result(self, **extras) -> PipelineResult:
        """Finish the stats and assemble the :class:`PipelineResult`;
        ``extras`` carry driver-specific fields (``shard_stats``,
        ``overload``, ``generated``, ``checkpoints``)."""
        if self.prediction is not None and "prediction" not in extras:
            self.prediction.finish()
            extras["prediction"] = self.prediction.report()
        if self.store_writer is not None:
            self.store_writer.commit()
            extras.setdefault("store", self.store_writer.reader())
        return PipelineResult(
            system=self.system,
            stats=self.stats_collector.finish(),
            raw_alerts=self.sink.raw_alerts,
            filtered_alerts=self.sink.filtered_alerts,
            filter_report=self.report,
            severity_tab=self.severity_tab,
            corrupted_messages=self.corrupted,
            threshold=self.threshold,
            dead_letters=self.dead_letters,
            **extras,
        )

"""Execution drivers: serial, sharded-parallel, and bounded schedules.

A driver owns the *schedule* of one pipeline run — when each record
moves through the :class:`~repro.engine.path.AlertPath` — and nothing
else: the per-record semantics live entirely in the path, so every
driver produces the same observable output (the bounded drivers modulo
the documented shedding tolerance).  This is the piece that replaces the
three hand-forked loops the pipeline used to carry:

* :class:`SerialDriver` — one record at a time, the reference schedule;
* :class:`ShardedDriver` — tagging fans out to worker processes
  (:class:`~repro.parallel.sharded.ShardedTagger`); stats, severity,
  and the Algorithm 3.1 filter stay the single sequential consumer of
  the order-preserving merge;
* :class:`BoundedDriver` — stages run behind bounded queues with
  credit-based flow control and priority-aware load shedding; give it a
  :class:`~repro.parallel.config.ParallelConfig` too and the service
  stage tags through the worker pool (the bounded ingest queue feeds the
  sharded tagger's already-bounded in-flight window).

Checkpointing is orthogonal to all three: every driver accepts a
:class:`~repro.resilience.checkpoint.CheckpointManager` and snapshots at
its own consistency barrier — after any record (serial), at batch
boundaries where no in-flight worker state affects the path (sharded),
or at drained-queue barriers (bounded).  ``path.consumed`` is exact at
each barrier, so a resumed run of the *same* deterministic stream lands
byte-identical (bounded: within shedding tolerance).
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Deque, Iterator, List, Optional, Protocol, Tuple, runtime_checkable

from ..logmodel.record import LogRecord
from ..parallel.config import ParallelConfig
from ..parallel.sharded import ShardedTagger, chunked
from ..resilience.backpressure import (
    SHED,
    SPILL,
    BackpressureConfig,
    BoundedQueue,
    CreditGate,
    OverloadMonitor,
    OverloadReport,
)
from ..resilience.checkpoint import CheckpointManager
from ..resilience.deadletter import DeadLetterQueue, REASON_SHED_OVERLOAD
from ..resilience.shedding import ShedAccounting, get_shed_policy
from .path import AlertPath


class DriverReport:
    """Driver-specific extras for the :class:`PipelineResult`."""

    def __init__(self, shard_stats=None, overload: Optional[OverloadReport] = None):
        self.shard_stats = shard_stats
        self.overload = overload


@runtime_checkable
class Driver(Protocol):
    """One execution schedule for an :class:`AlertPath`."""

    name: str

    def run(
        self,
        source: Iterator[LogRecord],
        path: AlertPath,
        checkpointer: Optional[CheckpointManager] = None,
    ) -> DriverReport: ...


#: Records per batch on the serial fast path: large enough to amortize
#: the per-batch joins/compress calls, small enough to keep the working
#: set (records + rendered lines + encoded bytes) in cache.
SERIAL_BATCH_SIZE = 4096


class SerialDriver:
    """The reference schedule: one record at a time, in process.

    Without a checkpointer the records move in batches through
    :meth:`AlertPath.process_batch` — semantically the same per-record
    loop (the path falls back to it whenever per-record observability
    matters, e.g. quarantine mode), but with the per-record render/
    encode/compress/severity overhead amortized per batch.  A
    checkpointer forces the genuine per-record loop: the serial driver's
    checkpoint barrier is *any record*, and batching would quantize the
    snapshot cadence.
    """

    name = "serial"

    def run(
        self,
        source: Iterator[LogRecord],
        path: AlertPath,
        checkpointer: Optional[CheckpointManager] = None,
    ) -> DriverReport:
        if checkpointer is None:
            stream = iter(source)
            while True:
                batch = list(islice(stream, SERIAL_BATCH_SIZE))
                if not batch:
                    break
                path.process_batch(batch)
            return DriverReport()
        for record in source:
            if not path.admit(record):
                continue
            path.process(record)
            checkpointer.maybe(path.consumed, path.snapshot)
        return DriverReport()


class ShardedDriver:
    """Tagging fans out to worker processes; everything order-defined
    stays in the parent.

    Only the tagger — the hot path, where almost every record matches no
    rule — runs in workers.  Batches are cut from the *raw* stream and
    only the structurally valid records are shipped; admission,
    quarantine, stats, severity, and the filter all happen in the parent
    at batch-processing time, in original stream order, so the
    dead-letter interleaving and every path decision match the serial
    schedule exactly.

    Checkpoints are taken at batch boundaries: when batch *i* has been
    processed, the path reflects exactly the records of batches ``0..i``
    — records pulled into still-in-flight batches have touched no path
    state — so ``path.consumed`` is a consistent resume point even
    though workers are still busy.
    """

    name = "sharded"

    def __init__(self, config: ParallelConfig):
        self.config = config

    def run(
        self,
        source: Iterator[LogRecord],
        path: AlertPath,
        checkpointer: Optional[CheckpointManager] = None,
    ) -> DriverReport:
        if path.dead_letters is None:
            return self._run_strict(source, path, checkpointer)
        pending: Deque[Tuple[List[LogRecord], Optional[List[bool]]]] = deque()

        def shipped() -> Iterator[List[LogRecord]]:
            """Cut raw batches; ship the valid subsequence to workers."""
            for raw_batch in chunked(source, self.config.batch_size):
                flags = [path.valid(r) for r in raw_batch]
                valid = [r for r, ok in zip(raw_batch, flags) if ok]
                pending.append((raw_batch, flags))
                yield valid

        with ShardedTagger(path.system, self.config) as sharded:
            for _valid_batch, outcome in sharded.tag_batches(shipped()):
                raw_batch, _flags = pending.popleft()
                errors = outcome.error_map()
                hits = outcome.hit_map()
                shipped_index = 0
                for record in raw_batch:
                    if not path.admit(record):
                        continue
                    path.observe(record)
                    alert = path.apply_tagged(
                        record,
                        alert=hits.get(shipped_index),
                        error=errors.get(shipped_index),
                    )
                    shipped_index += 1
                    if alert is not None:
                        path.offer(alert)
                if checkpointer is not None:
                    checkpointer.maybe(path.consumed, path.snapshot)
            shard_stats = sharded.stats
        return DriverReport(shard_stats=shard_stats)

    def _run_strict(
        self,
        source: Iterator[LogRecord],
        path: AlertPath,
        checkpointer: Optional[CheckpointManager],
    ) -> DriverReport:
        """Strict mode ships every record (the serial path does not
        validate either), so the shipped batch *is* the raw batch and
        each merged outcome replays through the path's batch form.  The
        checkpoint barrier is unchanged — after batch *i* the path
        reflects exactly batches ``0..i``."""
        with ShardedTagger(path.system, self.config) as sharded:
            for batch, outcome in sharded.tag_batches(
                chunked(source, self.config.batch_size)
            ):
                path.process_tagged_batch(batch, outcome)
                if checkpointer is not None:
                    checkpointer.maybe(path.consumed, path.snapshot)
            shard_stats = sharded.stats
        return DriverReport(shard_stats=shard_stats)


class BoundedDriver:
    """Stages behind bounded queues, driven in ticks.

    Per tick the source offers ``arrival_batch`` records — credit-paced
    for a pausable source, shed-policy-gated otherwise — the tag stage
    serves ``service_batch``, and the filter serves ``filter_batch``.
    Sustained overload (the monitor's high-watermark flag) optionally
    degrades the run — coarser stats, larger filter ``T`` — instead of
    growing without bound.

    With a :class:`ParallelConfig`, the service stage tags each tick's
    drain through the shared worker pool instead of in-process: the
    bounded ingest queue feeds the sharded tagger's in-flight window
    (itself bounded by ``max_inflight``), and the merged outcomes are
    offered to the filter inline, still in stream order.

    Checkpoints are taken only at drained-queue barriers, where every
    consumed record has been processed, quarantined, or shed; shedding
    makes resumed results equivalent within shedding tolerance rather
    than byte-identical.  The shed policy's dedup lookback is part of
    the snapshot, so a resumed policy keeps its duplicate memory.
    """

    name = "bounded"

    def __init__(
        self,
        config: BackpressureConfig,
        parallel: Optional[ParallelConfig] = None,
    ):
        self.config = config
        self.parallel = parallel
        if parallel is not None:
            self.name = "bounded-sharded"

    def run(
        self,
        source: Iterator[LogRecord],
        path: AlertPath,
        checkpointer: Optional[CheckpointManager] = None,
    ) -> DriverReport:
        config = self.config
        if path.dead_letters is None:
            # Bounded mode must never lose a tagged alert silently: the
            # spill path needs somewhere accounted to land.
            path.dead_letters = DeadLetterQueue()
        window = (
            path.threshold if config.dedup_window is None else config.dedup_window
        )
        policy = get_shed_policy(
            config.shed_policy, dedup_window=window
        ).bind(path.tagger)
        if path.resumed_shed_state is not None:
            policy.load_state_dict(path.resumed_shed_state)
        accounting = (
            config.accounting if config.accounting is not None else ShedAccounting()
        )
        monitor = (
            config.monitor if config.monitor is not None
            else OverloadMonitor(sustain=config.sustain)
        )
        ingest_q = monitor.attach(BoundedQueue(
            "ingest", config.max_buffer, config.watermarks_for(config.max_buffer)
        ))
        gate = CreditGate(ingest_q)

        if self.parallel is None:
            report = self._run_serial_stages(
                source, path, checkpointer, policy, accounting, monitor,
                ingest_q, gate,
            )
        else:
            report = self._run_sharded_stages(
                source, path, checkpointer, policy, accounting, monitor,
                ingest_q, gate,
            )
        return report

    # -- shared arrival tick ----------------------------------------------

    def _arrival_tick(self, source, path, policy, accounting, monitor,
                      ingest_q, gate) -> bool:
        """One arrival burst; returns ``True`` once the source is done.
        A pausable source is slowed by credits (nothing lost); an
        unpausable one goes through the shed policy, which degrades in
        the paper-aware order — and every loss is accounted."""
        config = self.config
        want = config.arrival_batch
        if config.source_pausable:
            want = gate.acquire(want)
        arrived = 0
        exhausted = False
        for _ in range(want):
            try:
                record = next(source)
            except StopIteration:
                exhausted = True
                break
            arrived += 1
            if not path.admit(record):
                continue
            decision, klass = policy.decide(record, ingest_q.pressure())
            accounting.count_offered(klass)
            if decision == SHED:
                accounting.count_shed(klass)
                continue
            if decision == SPILL or not ingest_q.put(record):
                accounting.count_spilled(klass)
                path.dead_letters.put(record, REASON_SHED_OVERLOAD, klass)
        monitor.note_throughput("arrive", arrived)
        return exhausted

    def _degrade_check(self, path, monitor, degraded: bool) -> bool:
        config = self.config
        if config.degrade and monitor.sustained_overload and not degraded:
            path.filter.threshold = path.threshold * config.degrade_threshold_factor
            if config.degrade_coarse_stats:
                path.stats_collector.coarse = True
            monitor.events.append(
                f"degraded mode entered: filter T raised to "
                f"{path.filter.threshold:g}s"
                + (", stats coarsened" if config.degrade_coarse_stats else "")
            )
            return True
        return degraded

    def _maybe_checkpoint(self, path, checkpointer, policy) -> None:
        if checkpointer is not None:
            checkpointer.maybe(
                path.consumed,
                lambda: path.snapshot(shed_state=policy.state_dict()),
            )

    # -- in-process tag stage (the historical bounded pump) ----------------

    def _run_serial_stages(self, source, path, checkpointer, policy,
                           accounting, monitor, ingest_q, gate) -> DriverReport:
        config = self.config
        alert_q = monitor.attach(BoundedQueue(
            "filter", config.filter_buffer,
            config.watermarks_for(config.filter_buffer),
        ))
        degraded = False
        exhausted = False
        while not exhausted or ingest_q or alert_q:
            if not exhausted:
                exhausted = self._arrival_tick(
                    source, path, policy, accounting, monitor, ingest_q, gate
                )

            # -- tag/stats stage: halts when the filter queue is full,
            #    which is how downstream pressure propagates upstream.
            #    Served as one batch (a record yields at most one alert,
            #    so free alert-queue slots bound the batch size).
            room = alert_q.capacity - len(alert_q)
            batch = ingest_q.take(min(config.service_batch, room))
            for alert in path.tag_batch_admitted(batch):
                alert_q.put(alert)
            monitor.note_throughput("tag", len(batch))

            # -- filter stage -------------------------------------------
            drained = 0
            while drained < config.filter_batch and alert_q:
                path.offer(alert_q.get())
                drained += 1
            monitor.note_throughput("filter", drained)

            monitor.sample()
            degraded = self._degrade_check(path, monitor, degraded)
            if not ingest_q and not alert_q:
                self._maybe_checkpoint(path, checkpointer, policy)

        return DriverReport(overload=OverloadReport.from_parts(
            monitor=monitor, accounting=accounting, gate=gate,
            degraded=degraded,
        ))

    # -- worker-pool tag stage (backpressure x parallel) -------------------

    def _run_sharded_stages(self, source, path, checkpointer, policy,
                            accounting, monitor, ingest_q, gate) -> DriverReport:
        config = self.config
        degraded = False
        exhausted = False
        with ShardedTagger(path.system, self.parallel) as sharded:
            while not exhausted or ingest_q:
                if not exhausted:
                    exhausted = self._arrival_tick(
                        source, path, policy, accounting, monitor,
                        ingest_q, gate,
                    )

                # -- service stage: drain one tick's worth through the
                #    worker pool; the merge hands outcomes back in
                #    stream order, so offers stay order-defined --------
                round_records = ingest_q.take(config.service_batch)
                offered = 0
                if round_records:
                    batches = chunked(iter(round_records),
                                      self.parallel.batch_size)
                    for batch, outcome in sharded.tag_batches(batches):
                        errors = outcome.error_map()
                        hits = outcome.hit_map()
                        for i, record in enumerate(batch):
                            path.observe(record)
                            alert = path.apply_tagged(
                                record, alert=hits.get(i),
                                error=errors.get(i),
                            )
                            if alert is not None:
                                path.offer(alert)
                                offered += 1
                monitor.note_throughput("tag", len(round_records))
                monitor.note_throughput("filter", offered)

                monitor.sample()
                degraded = self._degrade_check(path, monitor, degraded)
                if not ingest_q:
                    # A true barrier: the tick's batches were fully
                    # merged and offered, nothing is in flight.
                    self._maybe_checkpoint(path, checkpointer, policy)
            shard_stats = sharded.stats

        return DriverReport(
            shard_stats=shard_stats,
            overload=OverloadReport.from_parts(
                monitor=monitor, accounting=accounting, gate=gate,
                degraded=degraded,
            ),
        )

"""Parallel workload model: jobs, placement, and communication intensity.

Several of the paper's findings are workload-coupled, so the substrate
needs jobs, not just nodes:

* the Thunderbird ``CPU`` alerts came from "a bug in the Linux SMP kernel
  [that] sped up the system clock under heavy network load.  Thus, whenever
  a set of nodes was running a communication-intensive job, they would
  collectively be more prone to encountering this bug" (Section 4) —
  spatial correlation driven by job placement;
* the Liberty PBS bug killed jobs, "not before generating the task_check
  message up to 74 times" per job (Section 3.3.1);
* RAS metrics should be "based on quantities of direct interest, such as
  the amount of useful work lost due to failures" (Section 5), which
  requires knowing what work was running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from .cluster import Cluster, Node


@dataclass(frozen=True)
class Job:
    """One batch job: placement, duration, and communication intensity."""

    job_id: int
    start: float
    duration: float
    nodes: Sequence[Node]
    comm_intensity: float  # 0..1; >0.7 is "communication-intensive"
    user: str = ""         # submitting user (drives flurry structure)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def width(self) -> int:
        return len(self.nodes)

    def node_seconds(self) -> float:
        """Work content of the job, for lost-work accounting."""
        return self.duration * self.width

    def overlaps(self, t0: float, t1: float) -> bool:
        """Whether the job's run interval intersects [t0, t1)."""
        return self.start < t1 and t0 < self.end


class WorkloadModel:
    """Generates a job trace over an observation window.

    Arrivals are Poisson; widths are a truncated geometric over powers of
    two (most jobs small, a few near machine-scale); durations are
    lognormal (minutes to a day); communication intensity is Beta-shaped so
    both embarrassingly-parallel and tightly-coupled jobs occur.  All
    randomness flows from the supplied ``numpy.random.Generator``.
    """

    def __init__(
        self,
        cluster: Cluster,
        mean_interarrival: float = 1800.0,
        mean_duration: float = 4.0 * 3600,
        max_width_fraction: float = 0.5,
        user_count: int = 40,
    ):
        if mean_interarrival <= 0 or mean_duration <= 0:
            raise ValueError("interarrival and duration means must be positive")
        if user_count < 1:
            raise ValueError("user_count must be at least 1")
        self.cluster = cluster
        self.mean_interarrival = mean_interarrival
        self.mean_duration = mean_duration
        self.max_width_fraction = max_width_fraction
        self.user_count = user_count

    def generate(self, rng, t0: float, t1: float) -> Iterator[Job]:
        """Lazily yield jobs with start times in [t0, t1), time-ordered."""
        compute = self.cluster.compute_nodes
        if not compute:
            return
        max_width = max(1, int(len(compute) * self.max_width_fraction))
        t = t0
        job_id = 1
        while True:
            t += float(rng.exponential(self.mean_interarrival))
            if t >= t1:
                return
            width = 1
            while width < max_width and rng.random() < 0.55:
                width *= 2
            width = min(width, max_width)
            picks = rng.choice(len(compute), size=width, replace=False)
            nodes = tuple(compute[int(i)] for i in picks)
            # Lognormal with sigma=1 around the configured mean duration.
            duration = float(rng.lognormal(mean=0.0, sigma=1.0)) * self.mean_duration
            duration = max(60.0, min(duration, 86400.0 * 2))
            comm = float(rng.beta(2.0, 2.0))
            # Zipf-ish user activity: a few users submit most jobs.
            user_rank = min(
                self.user_count - 1,
                int(rng.pareto(1.2)),
            )
            yield Job(
                job_id=job_id,
                start=t,
                duration=duration,
                nodes=nodes,
                comm_intensity=comm,
                user=f"user{user_rank:03d}",
            )
            job_id += 1

    def generate_list(self, rng, t0: float, t1: float) -> List[Job]:
        """Eager variant of :meth:`generate`."""
        return list(self.generate(rng, t0, t1))


def communication_intensive(jobs: Sequence[Job], threshold: float = 0.7) -> List[Job]:
    """The jobs whose network load can trigger the SMP clock bug."""
    return [job for job in jobs if job.comm_intensity >= threshold]


def jobs_running_at(jobs: Sequence[Job], t: float) -> List[Job]:
    """Jobs whose run interval contains time ``t``."""
    return [job for job in jobs if job.start <= t < job.end]


def lost_node_seconds(jobs: Sequence[Job], failure_time: float,
                      affected: Sequence[Node]) -> float:
    """Work lost if ``affected`` nodes fail at ``failure_time``.

    A job loses its *entire* elapsed work when any of its nodes dies (no
    checkpointing assumed) — the "useful work lost due to failures" the
    paper recommends measuring instead of log-derived MTTF (Section 5).
    """
    affected_names = {node.name for node in affected}
    lost = 0.0
    for job in jobs:
        if job.start <= failure_time < job.end and any(
            node.name in affected_names for node in job.nodes
        ):
            lost += (failure_time - job.start) * job.width
    return lost

"""Central log collection: merge per-origin streams into one log.

Models the collection fan-in of Section 3.1: ``syslog-ng`` servers
(``tbird-admin1``, ``sadmin2``, ``ladmin2``), the Red Storm SMW, and the
BG/L MMCS-to-DB2 relay all receive many concurrent streams and store one
merged, time-ordered log — which is what analysts get.  Corruption happens
here too: transit damage and write races mangle a small fraction of lines
(Section 3.2.1).

The collector is defensive the way a real logging server is: per-origin
streams that arrive out of order are *counted* (``disordered``), and when
a dead-letter queue is attached, records the server cannot store — broken
timestamps, disorder beyond the tolerance — are quarantined rather than
written into the merged log or crashed on.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Iterator, Optional

from ..logmodel.record import LogRecord
from ..resilience.backpressure import BoundedQueue, bounded_buffer
from ..resilience.deadletter import (
    DeadLetterQueue,
    REASON_INVALID_RECORD,
    REASON_OUT_OF_ORDER,
    REASON_SHED_OVERLOAD,
)
from ..resilience.shedding import ShedAccounting
from .corruptor import Corruptor


def merge_streams(*streams: Iterable[LogRecord]) -> Iterator[LogRecord]:
    """Merge time-ordered record streams into one time-ordered stream.

    Lazy: ``heapq.merge`` holds one pending record per stream, so merging
    thousands of incident streams costs O(streams) memory.  The output is
    time-ordered only if every input is — adversarial (out-of-order)
    inputs yield an out-of-order merge, which :class:`Collector` detects
    and accounts for.
    """
    return heapq.merge(*streams, key=lambda record: record.timestamp)


class Collector:
    """A logging server: merges streams, optionally corrupting in transit.

    Tracks the same counters a real collector's stats output would:
    messages stored, messages detected as damaged, messages that arrived
    out of order, and messages quarantined as unstorable.

    Parameters
    ----------
    name:
        The server's hostname (``"tbird-admin1"``...).
    corruptor:
        Optional in-transit damage model.
    dead_letters:
        When given, unstorable records (non-finite timestamps, regressions
        beyond ``reorder_tolerance``) are quarantined there instead of
        stored; without it the historical store-everything behavior holds.
    reorder_tolerance:
        How far (seconds) a record's timestamp may precede the newest
        stored timestamp before quarantine.  The default of one second
        matches syslog's timestamp granularity: same-second interleaving
        is normal fan-in behavior, not disorder worth refusing.
    max_pending:
        When given, the server's fan-in buffer is *bounded*: at most this
        many merged records are read ahead of the consumer (historically
        the buffer was implicit and unbounded).  Peak occupancy is
        tracked on :attr:`pending`.
    shed_policy:
        Optional bound shed policy (see :mod:`repro.resilience.shedding`)
        consulted when the bounded buffer comes under pressure from an
        unpausable fan-in (``pausable_sources=False``); sheds and spills
        are counted exactly in :attr:`shed_accounting`, with spills
        quarantined to ``dead_letters``.
    pausable_sources:
        ``True`` (default) models sources the server can slow down
        (credit-based flow control: nothing is lost); ``False`` models
        UDP-style senders that keep transmitting into a full buffer.
    """

    def __init__(
        self,
        name: str,
        corruptor: Optional[Corruptor] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        reorder_tolerance: float = 1.0,
        max_pending: Optional[int] = None,
        ingest_chunk: int = 64,
        shed_policy=None,
        pausable_sources: bool = True,
    ):
        if reorder_tolerance < 0:
            raise ValueError("reorder_tolerance must be non-negative")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.name = name
        self.corruptor = corruptor
        self.dead_letters = dead_letters
        self.reorder_tolerance = reorder_tolerance
        self.max_pending = max_pending
        self.ingest_chunk = ingest_chunk
        self.shed_policy = shed_policy
        self.pausable_sources = pausable_sources
        self.pending: Optional[BoundedQueue] = None
        self.shed_accounting = ShedAccounting()
        self.stored = 0
        self.corrupted = 0
        self.disordered = 0
        self.quarantined = 0

    def _storable(self, record: LogRecord) -> bool:
        try:
            return math.isfinite(record.timestamp)
        except TypeError:
            return False

    def collect(self, *streams: Iterable[LogRecord]) -> Iterator[LogRecord]:
        merged = merge_streams(*streams)
        if self.corruptor is not None:
            merged = self.corruptor.apply(merged)
        if self.max_pending is not None:
            self.pending = BoundedQueue(f"{self.name}-pending", self.max_pending)
            merged = bounded_buffer(
                merged, self.pending, chunk=self.ingest_chunk,
                pausable=self.pausable_sources, policy=self.shed_policy,
                accounting=self.shed_accounting,
                dead_letters=self.dead_letters,
                spill_reason=REASON_SHED_OVERLOAD,
            )
        high_water: Optional[float] = None
        for record in merged:
            if not self._storable(record):
                if self.dead_letters is not None:
                    self.dead_letters.put(record, REASON_INVALID_RECORD)
                    self.quarantined += 1
                    continue
            elif high_water is not None and record.timestamp < high_water:
                self.disordered += 1
                if (
                    self.dead_letters is not None
                    and high_water - record.timestamp > self.reorder_tolerance
                ):
                    self.dead_letters.put(record, REASON_OUT_OF_ORDER)
                    self.quarantined += 1
                    continue
            else:
                high_water = record.timestamp
            self.stored += 1
            if record.corrupted:
                self.corrupted += 1
            yield record

"""Central log collection: merge per-origin streams into one log.

Models the collection fan-in of Section 3.1: ``syslog-ng`` servers
(``tbird-admin1``, ``sadmin2``, ``ladmin2``), the Red Storm SMW, and the
BG/L MMCS-to-DB2 relay all receive many concurrent streams and store one
merged, time-ordered log — which is what analysts get.  Corruption happens
here too: transit damage and write races mangle a small fraction of lines
(Section 3.2.1).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Optional

from ..logmodel.record import LogRecord
from .corruptor import Corruptor


def merge_streams(*streams: Iterable[LogRecord]) -> Iterator[LogRecord]:
    """Merge time-ordered record streams into one time-ordered stream.

    Lazy: ``heapq.merge`` holds one pending record per stream, so merging
    thousands of incident streams costs O(streams) memory.
    """
    return heapq.merge(*streams, key=lambda record: record.timestamp)


class Collector:
    """A logging server: merges streams, optionally corrupting in transit.

    Tracks the same counters a real collector's stats output would:
    messages stored and messages detected as damaged.
    """

    def __init__(self, name: str, corruptor: Optional[Corruptor] = None):
        self.name = name
        self.corruptor = corruptor
        self.stored = 0
        self.corrupted = 0

    def collect(self, *streams: Iterable[LogRecord]) -> Iterator[LogRecord]:
        merged = merge_streams(*streams)
        if self.corruptor is not None:
            merged = self.corruptor.apply(merged)
        for record in merged:
            self.stored += 1
            if record.corrupted:
                self.corrupted += 1
            yield record

"""Corruption injection: truncation, splices, garbled fields.

Models the damage the paper catalogs in Section 3.2.1 ("we saw messages
truncated, partially overwritten, and incorrectly timestamped") using the
Thunderbird VAPI corruptions as the canonical shapes::

    ... failed (-253:VAPI_EAGAI                       <- truncated
    ... failed (-253:VAPI_EAure = no                  <- spliced with another line
    ... failed (-253:VAPI_EAGSys/mosal_iobuf.c [126]: <- spliced with another line

plus garbled source fields, which produce Figure 2(b)'s cluster of
unattributable messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..logmodel.record import LogRecord

#: Tails spliced onto a victim body, echoing the paper's VAPI examples.
SPLICE_FRAGMENTS = (
    "ure = no",
    "Sys/mosal_iobuf.c [126]: dump iobuf at 0000010188ee7880:",
    "NMI received",
    " = 0x3",
    "etc/init.d/sysl",
)

#: Garbage replacing a corrupted source field.
GARBLED_SOURCES = ("\x00\x13\x7fx", "##\x01!", "\x02\x03\x04\x05", "@\x00\x00")


@dataclass
class CorruptorStats:
    processed: int = 0
    truncated: int = 0
    spliced: int = 0
    garbled_source: int = 0


class Corruptor:
    """Randomly damages a small fraction of a record stream.

    Parameters
    ----------
    rng:
        Randomness source.
    rate:
        Probability that a record is damaged at all.
    modes:
        Relative weights of (truncate, splice, garble-source).
    """

    def __init__(
        self,
        rng,
        rate: float = 2e-4,
        modes: Sequence[float] = (0.5, 0.3, 0.2),
    ):
        if not 0 <= rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        if len(modes) != 3 or any(m < 0 for m in modes) or sum(modes) == 0:
            raise ValueError("modes must be three non-negative weights")
        self.rng = rng
        self.rate = rate
        total = float(sum(modes))
        self.modes = tuple(m / total for m in modes)
        self.stats = CorruptorStats()

    def corrupt_one(self, record: LogRecord) -> LogRecord:
        """Damage a single record (unconditionally)."""
        roll = self.rng.random()
        body = record.body
        if roll < self.modes[0] and len(body) > 4:
            cut = int(self.rng.integers(max(1, len(body) // 3), len(body)))
            self.stats.truncated += 1
            return record.with_corruption(body=body[:cut])
        if roll < self.modes[0] + self.modes[1] and len(body) > 4:
            cut = int(self.rng.integers(max(1, len(body) // 3), len(body)))
            fragment = SPLICE_FRAGMENTS[
                int(self.rng.integers(0, len(SPLICE_FRAGMENTS)))
            ]
            self.stats.spliced += 1
            return record.with_corruption(body=body[:cut] + fragment)
        garbage = GARBLED_SOURCES[int(self.rng.integers(0, len(GARBLED_SOURCES)))]
        self.stats.garbled_source += 1
        return record.with_corruption(body=body, source=garbage)

    def apply(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Pass records through, damaging ~``rate`` of them."""
        for record in records:
            self.stats.processed += 1
            if self.rng.random() < self.rate:
                yield self.corrupt_one(record)
            else:
                yield record

"""Per-system, per-category calibration derived from the paper's Table 4.

The generator is *mechanistically* calibrated: each category gets a number
of **incidents** (distinct failures, taken from the paper's filtered
counts) and a raw **multiplicity** (total alerts, from the raw counts)
distributed across those incidents.  Raw counts arise in the stream as
redundant bursts — repeated reports within the filter threshold, spread
over the incident's nodes — so the paper's filtered numbers are recovered
by actually *running the filter*, not by construction.

Scenario knobs encode the case studies the paper narrates:

* ``hot_source`` — Spirit's ``sn373`` (>50 % of all Spirit alerts,
  Section 3.3.1), the Thunderbird VAPI node (643,925 of 3,229,194);
* ``profile`` — temporal placement: the Liberty PBS bug is confined to one
  quarter (Figure 4), the Spirit disk storm to a six-day window;
* ``correlate_with`` — cross-category coupling: ``GM_LANAI`` shadows
  ``GM_PAR`` (Figure 3), ``PBS_BFD`` shadows ``PBS_CHK`` (Figure 4),
  Spirit's two disk categories share incidents;
* ``job_correlated`` — the Thunderbird ``CPU`` clock-bug alerts fire on
  the node sets of communication-intensive jobs (Section 4);
* per-system ``clustering`` — BG/L failures arrive in bursts of related
  incidents, producing the bimodal filtered-interarrival histogram of
  Figure 6(a); Spirit's incidents are dispersed (unimodal, Figure 6b).
"""

from __future__ import annotations

import calendar
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..logmodel.record import Channel

#: Temporal profiles: (window_start_fraction, window_end_fraction) of the
#: observation period within which a category's incidents fall.
PROFILES: Dict[str, Tuple[float, float]] = {
    "uniform": (0.0, 1.0),
    "late_quarter": (0.75, 1.0),     # the Liberty PBS bug quarter
    "six_day_burst": (0.10, 0.11),   # the Spirit disk storm window
    "first_half": (0.0, 0.5),
    "second_half": (0.5, 1.0),
}


@dataclass(frozen=True)
class CategoryCalibration:
    """Incident structure for one alert category.

    ``raw`` and ``filtered`` are the paper's Table 4 counts; ``filtered``
    doubles as the incident count.  ``spread`` is how many sources
    typically participate in one incident's burst.
    """

    category: str
    raw: int
    filtered: int
    spread: int = 1
    profile: str = "uniform"
    hot_source: Optional[str] = None
    hot_raw_fraction: float = 0.0
    hot_incident_fraction: float = 0.0
    correlate_with: Optional[str] = None
    job_correlated: bool = False
    #: Cap on alerts per incident (None = unbounded).  The Liberty PBS bug
    #: generated its message "up to 74 times" per afflicted job
    #: (Section 3.3.1), so its burst sizes must not exceed that.
    max_multiplicity: Optional[int] = None
    #: Probability that an incident is placed inside a downtime window.
    #: The paper's ambiguous BGLMASTER message ("ciodb exited normally",
    #: severity FAILURE) is "a harmless artifact" of maintenance when it
    #: happens during downtime (Section 3.2.1).
    downtime_affinity: float = 0.0

    def __post_init__(self) -> None:
        if self.raw < self.filtered:
            raise ValueError(
                f"{self.category}: raw ({self.raw}) < filtered ({self.filtered})"
            )
        if self.filtered < 1:
            raise ValueError(f"{self.category}: needs at least one incident")
        if self.profile not in PROFILES:
            raise ValueError(f"{self.category}: unknown profile {self.profile!r}")
        if self.max_multiplicity is not None:
            if self.max_multiplicity < 1:
                raise ValueError(f"{self.category}: max_multiplicity must be >= 1")
            if self.raw > self.filtered * self.max_multiplicity:
                raise ValueError(
                    f"{self.category}: raw count cannot fit under the "
                    f"multiplicity cap"
                )

    def incidents(self, incident_scale: float = 1.0) -> int:
        """Incident count at a given scale (never below 1)."""
        return max(1, round(self.filtered * incident_scale))

    def scaled_raw(self, scale: float, incident_scale: float = 1.0) -> int:
        """Total alerts at a given scale (never below the incident count)."""
        return max(self.incidents(incident_scale), round(self.raw * scale))


@dataclass(frozen=True)
class BackgroundSpec:
    """One slice of non-alert traffic: severity label, channel, count."""

    severity: Optional[str]
    channel: Channel
    count: int


@dataclass(frozen=True)
class SystemScenario:
    """Everything the generator needs for one machine."""

    system: str
    start_date: str                       # YYYY-MM-DD (paper Table 2)
    days: int
    categories: Tuple[CategoryCalibration, ...]
    background: Tuple[BackgroundSpec, ...]
    #: Piecewise background-rate multipliers as (start_fraction, multiplier);
    #: normalized by the generator so totals are preserved.  Liberty's
    #: encode the Figure 2(a) evolution shifts (OS upgrade etc.).
    rate_profile: Tuple[Tuple[float, float], ...] = ((0.0, 1.0),)
    #: Fraction of incidents attached to shared burst centers, and the
    #: time scale of intra-burst offsets (drives Figure 6 modality).
    clustering: float = 0.0
    cluster_span: float = 600.0
    corruption_rate: float = 1e-4

    def __post_init__(self) -> None:
        names = [cat.category for cat in self.categories]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate category calibration in {self.system}")
        for cat in self.categories:
            if cat.correlate_with is not None and cat.correlate_with not in names:
                raise ValueError(
                    f"{cat.category} correlates with unknown {cat.correlate_with!r}"
                )

    @property
    def start_epoch(self) -> float:
        year, month, day = (int(part) for part in self.start_date.split("-"))
        return float(calendar.timegm((year, month, day, 0, 0, 0, 0, 0, 0)))

    @property
    def end_epoch(self) -> float:
        return self.start_epoch + self.days * 86400.0

    @property
    def raw_alert_total(self) -> int:
        return sum(cat.raw for cat in self.categories)

    @property
    def filtered_alert_total(self) -> int:
        return sum(cat.filtered for cat in self.categories)

    @property
    def background_total(self) -> int:
        return sum(spec.count for spec in self.background)

    @property
    def message_total(self) -> int:
        return self.background_total + self.raw_alert_total

    def get_category(self, name: str) -> CategoryCalibration:
        for cat in self.categories:
            if cat.category == name:
                return cat
        raise KeyError(f"no calibration for category {name!r} in {self.system}")


def _cc(category, raw, filtered, **kwargs) -> CategoryCalibration:
    return CategoryCalibration(category=category, raw=raw, filtered=filtered, **kwargs)


# ---------------------------------------------------------------------------
# Blue Gene/L — Table 4 top-10 plus the 31 "others" (all Indeterminate).
# Incidents cluster (cascading related failures), giving the bimodal
# filtered-interarrival histogram of Figure 6(a).
# ---------------------------------------------------------------------------

_BGL_CATEGORIES = (
    _cc("KERNDTLB", 152_734, 37, spread=4),
    _cc("KERNSTOR", 63_491, 8, spread=4),
    _cc("APPSEV", 49_651, 138, spread=8),
    _cc("KERNMNTF", 31_531, 105, spread=2),
    _cc("KERNTERM", 23_338, 99, spread=4),
    _cc("KERNREC", 6_145, 9, spread=2),
    _cc("APPREAD", 5_983, 11, spread=4),
    _cc("KERNRTSP", 3_983, 260, spread=2),
    _cc("APPRES", 2_370, 13, spread=4),
    _cc("APPUNAV", 2_048, 3, spread=8),
    # The 31 "others": 7186 raw / 519 filtered in aggregate.
    _cc("KERNMC", 2_131, 51, spread=2),
    _cc("KERNPAN", 1_431, 77),
    _cc("KERNSOCK", 684, 23),
    _cc("KERNPOW", 512, 18),
    _cc("KERNNOETH", 401, 12),
    _cc("KERNMICE", 329, 25),
    _cc("KERNCON", 287, 19),
    _cc("KERNEXT", 201, 14),
    _cc("KERNFSHUT", 170, 22),
    _cc("KERNBIT", 120, 9),
    _cc("KERNTORREC", 98, 11),
    _cc("KERNTORSND", 91, 8),
    _cc("KERNDDR", 88, 17),
    _cc("KERNPARITY", 77, 17),
    _cc("KERNSRAM", 64, 9),
    _cc("LINKDISC", 58, 13),
    _cc("LINKIAP", 51, 9),
    _cc("LINKPAP", 44, 11),
    _cc("MONPOW", 41, 16),
    _cc("MONFAN", 37, 14),
    _cc("MONTEMP", 33, 12),
    _cc("MONNULL", 29, 9),
    _cc("MASNORM", 62, 26, downtime_affinity=0.6),
    _cc("MASABNORM", 27, 13),
    _cc("APPBUSY", 25, 12),
    _cc("APPCHILD", 22, 11),
    _cc("APPOUT", 19, 9),
    _cc("APPTO", 17, 9),
    _cc("KERNSERV", 15, 9),
    _cc("KERNWAIT", 12, 8),
    _cc("KERNRTSA", 10, 6),
)

# Background severity mix = Table 5 messages minus Table 5 alerts.
_BGL_BACKGROUND = (
    BackgroundSpec("FATAL", Channel.JTAG_MAILBOX, 507_103),
    BackgroundSpec("FAILURE", Channel.JTAG_MAILBOX, 1_652),
    BackgroundSpec("SEVERE", Channel.JTAG_MAILBOX, 19_213),
    BackgroundSpec("ERROR", Channel.JTAG_MAILBOX, 112_355),
    BackgroundSpec("WARNING", Channel.JTAG_MAILBOX, 23_357),
    BackgroundSpec("INFO", Channel.JTAG_MAILBOX, 3_735_823),
)

BGL_SCENARIO = SystemScenario(
    system="bgl",
    start_date="2005-06-03",
    days=215,
    categories=_BGL_CATEGORIES,
    background=_BGL_BACKGROUND,
    clustering=0.7,
    cluster_span=900.0,
    corruption_rate=5e-5,
)

# ---------------------------------------------------------------------------
# Thunderbird — VAPI storm with a hot node; ECC independent (Figure 5);
# CPU clock-bug alerts spatially correlated with communication-intensive
# jobs (Section 4).
# ---------------------------------------------------------------------------

_TBIRD_CATEGORIES = (
    _cc("VAPI", 3_229_194, 276, spread=2,
        hot_source="tn345", hot_raw_fraction=0.20, hot_incident_fraction=0.89),
    _cc("PBS_CON", 5_318, 16, spread=2),
    _cc("MPT", 4_583, 157, spread=1),
    _cc("EXT_FS", 4_022, 778, spread=1),
    _cc("CPU", 2_741, 367, spread=8, job_correlated=True),
    _cc("SCSI", 2_186, 317, spread=1),
    _cc("ECC", 146, 143, spread=1),
    _cc("PBS_BFD", 28, 28, spread=1),
    _cc("CHK_DSK", 13, 2, spread=1),
    _cc("NMI", 8, 4, spread=1),
)

THUNDERBIRD_SCENARIO = SystemScenario(
    system="thunderbird",
    start_date="2005-11-09",
    days=244,
    categories=_TBIRD_CATEGORIES,
    background=(BackgroundSpec(None, Channel.SYSLOG_UDP, 207_963_953),),
    clustering=0.2,
    cluster_span=600.0,
    corruption_rate=2e-4,   # the VAPI corruption examples came from here
)

# ---------------------------------------------------------------------------
# Red Storm — the DDN BUS_PAR disk storm dominates CRIT (Table 6); the
# ec_* events ride the severity-less RAS TCP path.
# ---------------------------------------------------------------------------

_REDSTORM_CATEGORIES = (
    _cc("BUS_PAR", 1_550_217, 5, spread=2),
    _cc("HBEAT", 94_784, 266, spread=4),
    _cc("PTL_EXP", 11_047, 421, spread=2),
    _cc("ADDR_ERR", 6_763, 1, spread=1),
    _cc("CMD_ABORT", 1_686, 497, spread=1),
    _cc("PTL_ERR", 631, 54, spread=1),
    _cc("TOAST", 186, 9, spread=2),
    _cc("EW", 163, 58, spread=1),
    _cc("WT", 107, 45, spread=1, correlate_with="EW"),
    _cc("RBB", 105, 19, spread=1),
    _cc("DSK_FAIL", 54, 54, spread=1),
    _cc("OST", 1, 1, spread=1),
)

# Syslog background = Table 6 messages minus Table 6 alerts; the RAS TCP
# path carries the (severity-less) remainder of Table 2's message total.
_REDSTORM_BACKGROUND = (
    BackgroundSpec("EMERG", Channel.SYSLOG_UDP, 3),
    BackgroundSpec("ALERT", Channel.SYSLOG_UDP, 600),
    BackgroundSpec("CRIT", Channel.SYSLOG_UDP, 2_693),
    BackgroundSpec("ERR", Channel.SYSLOG_UDP, 2_015_814),
    BackgroundSpec("WARNING", Channel.SYSLOG_UDP, 2_154_674),
    BackgroundSpec("NOTICE", Channel.SYSLOG_UDP, 3_759_620),
    BackgroundSpec("INFO", Channel.SYSLOG_UDP, 15_714_246),
    BackgroundSpec("DEBUG", Channel.SYSLOG_UDP, 291_764),
    BackgroundSpec(None, Channel.RAS_TCP, 193_491_010),
)

REDSTORM_SCENARIO = SystemScenario(
    system="redstorm",
    start_date="2006-03-19",
    days=104,
    categories=_REDSTORM_CATEGORIES,
    background=_REDSTORM_BACKGROUND,
    clustering=0.3,
    cluster_span=600.0,
    corruption_rate=5e-5,
)

# ---------------------------------------------------------------------------
# Spirit — two disk categories repeated tens of millions of times, heavily
# concentrated on node sn373 (Section 3.3.1); incidents dispersed in time,
# giving the unimodal filtered-interarrival histogram of Figure 6(b).
# ---------------------------------------------------------------------------

_SPIRIT_CATEGORIES = (
    _cc("EXT_CCISS", 103_818_910, 29, spread=2,
        hot_source="sn373", hot_raw_fraction=0.52, hot_incident_fraction=0.35),
    _cc("EXT_FS", 68_986_084, 14, spread=2, correlate_with="EXT_CCISS",
        hot_source="sn373", hot_raw_fraction=0.52, hot_incident_fraction=0.35),
    _cc("PBS_CHK", 8_388, 4_119, spread=1, max_multiplicity=74),
    _cc("GM_LANAI", 1_256, 117, spread=1, correlate_with="GM_PAR"),
    _cc("PBS_CON", 817, 25, spread=2),
    _cc("GM_MAP", 596, 180, spread=1),
    _cc("PBS_BFD", 346, 296, spread=1, correlate_with="PBS_CHK"),
    _cc("GM_PAR", 166, 95, spread=1),
)

SPIRIT_SCENARIO = SystemScenario(
    system="spirit",
    start_date="2005-01-01",
    days=558,
    categories=_SPIRIT_CATEGORIES,
    background=(BackgroundSpec(None, Channel.SYSLOG_UDP, 99_482_406),),
    clustering=0.0,
    corruption_rate=1e-4,
)

# ---------------------------------------------------------------------------
# Liberty — the PBS task_check bug confined to one quarter (Figure 4),
# GM_PAR/GM_LANAI correlation (Figure 3), and the background-rate shifts
# of Figure 2(a) (OS upgrade after the machine entered production).
# ---------------------------------------------------------------------------

_LIBERTY_CATEGORIES = (
    _cc("PBS_CHK", 2_231, 920, spread=1, profile="late_quarter",
        max_multiplicity=74),
    _cc("PBS_BFD", 115, 94, spread=1, profile="late_quarter",
        correlate_with="PBS_CHK"),
    _cc("PBS_CON", 47, 5, spread=2),
    _cc("GM_PAR", 44, 19, spread=1),
    _cc("GM_LANAI", 13, 10, spread=1, correlate_with="GM_PAR"),
    _cc("GM_MAP", 2, 2, spread=1),
)

LIBERTY_SCENARIO = SystemScenario(
    system="liberty",
    start_date="2004-12-12",
    days=315,
    categories=_LIBERTY_CATEGORIES,
    background=(BackgroundSpec(None, Channel.SYSLOG_UDP, 265_566_779),),
    # Figure 2(a): quiet early period, step up at the OS upgrade (~28 % in,
    # "end of first quarter, 2005"), then two later shifts of unknown cause.
    rate_profile=((0.0, 0.45), (0.28, 1.60), (0.55, 0.95), (0.78, 1.30)),
    clustering=0.1,
    corruption_rate=3e-4,   # Figure 2(b)'s corrupted-source cluster
)

SCENARIOS: Dict[str, SystemScenario] = {
    scenario.system: scenario
    for scenario in (
        BGL_SCENARIO,
        THUNDERBIRD_SCENARIO,
        REDSTORM_SCENARIO,
        SPIRIT_SCENARIO,
        LIBERTY_SCENARIO,
    )
}


def get_scenario(system: str) -> SystemScenario:
    """The calibrated scenario for a system short name."""
    try:
        return SCENARIOS[system]
    except KeyError:
        valid = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"no scenario for {system!r}; valid: {valid}") from None

"""Log transport models: lossy UDP syslog, reliable RAS TCP, JTAG polling.

The paper is explicit that the collection path shapes the data
(Section 3.1):

* Thunderbird/Spirit/Liberty forward syslog over **UDP** — "as is standard
  syslog practice, the UDP protocol is used for transmission, resulting in
  some messages being lost during network contention";
* Red Storm's RAS network uses "the reliable **TCP** protocol" to the SMW;
* BG/L compute chips "store errors locally until they are polled" over the
  **JTAG-mailbox** protocol (~1 ms polling period), so delivery timestamps
  are quantized to poll boundaries while the event keeps its microsecond
  origin stamp.

Transports are stream transformers over time-ordered records.  Loss in the
UDP channel is *load-dependent*: the drop probability rises with the
instantaneous message rate, which is exactly when bursts (the interesting
part of the log) are being generated.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator

from ..logmodel.record import LogRecord


class UdpSyslogChannel:
    """Lossy fan-in channel modeling syslog-over-UDP under contention.

    Parameters
    ----------
    rng:
        Randomness source.
    base_loss:
        Drop probability at idle.
    congestion_loss:
        Additional drop probability at/above ``congestion_rate``; loss
        interpolates linearly in the observed rate between idle and there.
    congestion_rate:
        Messages/second over a 1-second trailing window considered full
        contention.
    """

    def __init__(
        self,
        rng,
        base_loss: float = 0.001,
        congestion_loss: float = 0.05,
        congestion_rate: float = 500.0,
    ):
        if not 0 <= base_loss <= 1 or not 0 <= congestion_loss <= 1:
            raise ValueError("loss probabilities must be in [0, 1]")
        if congestion_rate <= 0:
            raise ValueError("congestion_rate must be positive")
        self.rng = rng
        self.base_loss = base_loss
        self.congestion_loss = congestion_loss
        self.congestion_rate = congestion_rate
        self.sent = 0
        self.dropped = 0
        self._window: Deque[float] = deque()

    def _loss_probability(self, timestamp: float) -> float:
        """Drop probability at ``timestamp``, with the in-flight record
        already counted in the trailing window: the record contending for
        the wire contributes to the contention it experiences (otherwise
        the first record of every burst would see the stale pre-burst
        rate)."""
        while self._window and timestamp - self._window[0] > 1.0:
            self._window.popleft()
        rate = len(self._window)
        utilization = min(1.0, rate / self.congestion_rate)
        return self.base_loss + utilization * self.congestion_loss

    def transmit(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Yield the records that survive the channel."""
        for record in records:
            self.sent += 1
            self._window.append(record.timestamp)
            p = self._loss_probability(record.timestamp)
            if self.rng.random() < p:
                self.dropped += 1
                continue
            yield record

    @property
    def loss_fraction(self) -> float:
        return self.dropped / self.sent if self.sent else 0.0


class TcpRasChannel:
    """Reliable, order-preserving channel (Red Storm RAS network).

    Nothing is lost; a small constant delivery latency models the hop to
    the SMW but original event timestamps are preserved — logs record the
    event time, not the arrival time, on this path.
    """

    def __init__(self, latency: float = 0.02):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency
        self.delivered = 0

    def transmit(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        for record in records:
            self.delivered += 1
            yield record


class JtagMailbox:
    """BG/L's polled collection: chips buffer events until the next poll.

    Events are delivered in batches at multiples of ``poll_period`` (the
    paper's logs used ~1 ms).  The record keeps its microsecond origin
    timestamp; :attr:`max_delivery_delay` tracks the worst buffering delay,
    which bounds the staleness detection-time analyses must assume.
    """

    def __init__(self, poll_period: float = 0.001):
        if poll_period <= 0:
            raise ValueError("poll_period must be positive")
        self.poll_period = poll_period
        self.delivered = 0
        self.max_delivery_delay = 0.0

    def next_poll_after(self, timestamp: float) -> float:
        """The first poll instant at or after ``timestamp``."""
        polls = int(timestamp / self.poll_period)
        poll_time = polls * self.poll_period
        if poll_time < timestamp:
            poll_time += self.poll_period
        return poll_time

    def transmit(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        for record in records:
            delay = self.next_poll_after(record.timestamp) - record.timestamp
            self.max_delivery_delay = max(self.max_delivery_delay, delay)
            self.delivered += 1
            yield record

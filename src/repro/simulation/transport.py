"""Log transport models: lossy UDP syslog, reliable RAS TCP, JTAG polling.

The paper is explicit that the collection path shapes the data
(Section 3.1):

* Thunderbird/Spirit/Liberty forward syslog over **UDP** — "as is standard
  syslog practice, the UDP protocol is used for transmission, resulting in
  some messages being lost during network contention";
* Red Storm's RAS network uses "the reliable **TCP** protocol" to the SMW;
* BG/L compute chips "store errors locally until they are polled" over the
  **JTAG-mailbox** protocol (~1 ms polling period), so delivery timestamps
  are quantized to poll boundaries while the event keeps its microsecond
  origin stamp.

Transports are stream transformers over time-ordered records.  Loss in the
UDP channel is *load-dependent*: the drop probability rises with the
instantaneous message rate, which is exactly when bursts (the interesting
part of the log) are being generated.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator

from ..logmodel.record import LogRecord


class UdpSyslogChannel:
    """Lossy fan-in channel modeling syslog-over-UDP under contention.

    Parameters
    ----------
    rng:
        Randomness source.
    base_loss:
        Drop probability at idle.
    congestion_loss:
        Additional drop probability at/above ``congestion_rate``; loss
        interpolates linearly in the observed rate between idle and there.
    congestion_rate:
        Messages/second over a 1-second trailing window considered full
        contention.
    receiver_queue:
        Optional bounded receive buffer
        (:class:`~repro.resilience.backpressure.BoundedQueue`).  UDP has
        no flow control, so a backed-up receiver cannot slow the senders;
        instead its kernel buffer overflows.  When the queue's pressure is
        elevated an extra ``pressure_loss`` drop probability applies
        (scaled by how far past the high watermark it sits); those drops
        are counted separately in :attr:`dropped_pressure`.
    pressure_loss:
        Additional drop probability when ``receiver_queue`` is completely
        full (interpolated from 0 at the high watermark).
    """

    def __init__(
        self,
        rng,
        base_loss: float = 0.001,
        congestion_loss: float = 0.05,
        congestion_rate: float = 500.0,
        receiver_queue=None,
        pressure_loss: float = 0.25,
    ):
        if not 0 <= base_loss <= 1 or not 0 <= congestion_loss <= 1:
            raise ValueError("loss probabilities must be in [0, 1]")
        if not 0 <= pressure_loss <= 1:
            raise ValueError("pressure_loss must be in [0, 1]")
        if congestion_rate <= 0:
            raise ValueError("congestion_rate must be positive")
        self.rng = rng
        self.base_loss = base_loss
        self.congestion_loss = congestion_loss
        self.congestion_rate = congestion_rate
        self.receiver_queue = receiver_queue
        self.pressure_loss = pressure_loss
        self.sent = 0
        self.dropped = 0
        self.dropped_pressure = 0
        self._window: Deque[float] = deque()

    def _loss_probability(self, timestamp: float) -> float:
        """Drop probability at ``timestamp``, with the in-flight record
        already counted in the trailing window: the record contending for
        the wire contributes to the contention it experiences (otherwise
        the first record of every burst would see the stale pre-burst
        rate)."""
        while self._window and timestamp - self._window[0] > 1.0:
            self._window.popleft()
        rate = len(self._window)
        utilization = min(1.0, rate / self.congestion_rate)
        return self.base_loss + utilization * self.congestion_loss

    def _pressure_probability(self) -> float:
        """Extra drop probability from a backed-up receiver buffer: zero
        up to the high watermark, rising linearly to ``pressure_loss`` at
        a completely full queue."""
        q = self.receiver_queue
        if q is None:
            return 0.0
        high = q.watermarks.high
        headroom = q.capacity - high
        if headroom <= 0:
            return self.pressure_loss if len(q) >= high else 0.0
        over = len(q) - high
        if over <= 0:
            return 0.0
        return self.pressure_loss * min(1.0, over / headroom)

    def transmit(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Yield the records that survive the channel."""
        for record in records:
            self.sent += 1
            self._window.append(record.timestamp)
            p_wire = self._loss_probability(record.timestamp)
            p_recv = self._pressure_probability()
            # One draw decides both: below p_wire is a network drop, in
            # the next p_recv-wide band a receiver-buffer overflow drop.
            u = self.rng.random()
            if u < p_wire:
                self.dropped += 1
                continue
            if u < min(1.0, p_wire + p_recv):
                self.dropped += 1
                self.dropped_pressure += 1
                continue
            yield record

    @property
    def loss_fraction(self) -> float:
        return self.dropped / self.sent if self.sent else 0.0


class TcpRasChannel:
    """Reliable, order-preserving channel (Red Storm RAS network).

    Nothing is lost; a small constant delivery latency models the hop to
    the SMW but original event timestamps are preserved — logs record the
    event time, not the arrival time, on this path.
    """

    def __init__(self, latency: float = 0.02):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency
        self.delivered = 0

    def transmit(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        for record in records:
            self.delivered += 1
            yield record


class JtagMailbox:
    """BG/L's polled collection: chips buffer events until the next poll.

    Events are delivered in batches at multiples of ``poll_period`` (the
    paper's logs used ~1 ms).  The record keeps its microsecond origin
    timestamp; :attr:`max_delivery_delay` tracks the worst buffering delay,
    which bounds the staleness detection-time analyses must assume.
    """

    def __init__(self, poll_period: float = 0.001):
        if poll_period <= 0:
            raise ValueError("poll_period must be positive")
        self.poll_period = poll_period
        self.delivered = 0
        self.max_delivery_delay = 0.0

    def next_poll_after(self, timestamp: float) -> float:
        """The first poll instant at or after ``timestamp``."""
        polls = int(timestamp / self.poll_period)
        poll_time = polls * self.poll_period
        if poll_time < timestamp:
            poll_time += self.poll_period
        return poll_time

    def transmit(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        for record in records:
            delay = self.next_poll_after(record.timestamp) - record.timestamp
            self.max_delivery_delay = max(self.max_delivery_delay, delay)
            self.delivered += 1
            yield record

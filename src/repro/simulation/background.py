"""Non-alert background traffic templates.

The overwhelming majority of log messages are not alerts (on Liberty,
2452 alerts among 265 million messages), and "the logs are fraught with
messages that indicate nothing useful at all" (paper, Section 3.2.1).
These pools supply that chaff per system — and, for the machines that
record severity, per severity level, because the paper's central severity
finding (Tables 5 and 6) is that *high-severity non-alerts are plentiful*:
over half a million BG/L messages carry FATAL severity without being
alerts, while actual alerts hide among CRIT/ERR/INFO on Red Storm.

Every template here is checked by the test suite against every expert rule
of its system: background must never be taggable.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..logmodel.record import Channel

#: (facility, body) pairs.
Pool = Tuple[Tuple[str, str], ...]

#: Generic syslog chaff for Thunderbird, Spirit, and Liberty.
SYSLOG_POOL: Pool = (
    ("sshd", "session opened for user root by (uid=0)"),
    ("sshd", "Accepted publickey for root from 10.0.0.2 port 42512 ssh2"),
    ("crond", "(root) CMD (run-parts /etc/cron.hourly)"),
    ("ntpd", "synchronized to 10.0.0.1, stratum 2"),
    ("ntpd", "kernel time sync enabled 0001"),
    ("kernel", "eth0: no IPv6 routers present"),
    ("kernel", "martian source 255.255.255.255 from 10.0.3.4, on dev eth1"),
    ("postfix/smtpd", "connect from localhost.localdomain[127.0.0.1]"),
    ("pam_unix", "session closed for user root"),
    ("in.tftpd", "RRQ from 10.1.1.1 filename pxelinux.0"),
    ("gmond", "metric heartbeat received from cluster peer"),
    ("dhcpd", "DHCPREQUEST for 10.2.3.4 from 00:11:22:33:44:55 via eth1"),
    ("xinetd", "START: auth pid=2214 from=10.0.0.9"),
    ("syslog-ng", "STATS: dropped 0"),
    ("automount", "expiring path /misc/scratch"),
    ("kernel", "nfs: server io-server OK"),
)

#: BG/L RAS chaff per severity — Table 5's message-severity mix.
BGL_POOLS: Dict[str, Pool] = {
    "FATAL": (
        ("KERNEL", "ido packet timeout while flushing queue"),
        ("KERNEL", "total of 9 ddr error(s) detected and corrected"),
        ("KERNEL", "L3 ecc control register: 00000000"),
        ("MMCS", "idoproxy communication failure: retrying"),
        ("KERNEL", "uncorrectable error detected in edram bank 1"),
        ("KERNEL", "ddr failing info register: 00000000"),
    ),
    "FAILURE": (
        ("BGLMASTER", "mmcs_server exited normally with exit code 13"),
        ("BGLMASTER", "idoproxydb restart requested by operator"),
    ),
    "SEVERE": (
        ("KERNEL", "tree receiver 2 in resynch mode"),
        ("KERNEL", "correctable error detected in directory entry"),
        ("LINKCARD", "MidplaneSwitchController performing bit sparing"),
    ),
    "ERROR": (
        ("APP", "ciod: duplicate canonical-rank 170 to ip 10.6.1.1"),
        ("DISCOVERY", "node card VPD check: missing serial number"),
        ("MMCS", "pollDb: status query returned empty result"),
    ),
    "WARNING": (
        ("KERNEL", "ciodb has been restarted"),
        ("MONITOR", "found invalid node ecid in processor card slot"),
        ("LINKCARD", "clock mode not set for port 3"),
    ),
    "INFO": (
        ("KERNEL", "generating core.2462"),
        ("KERNEL", "instruction cache flush completed"),
        ("DISCOVERY", "node card is fully functional"),
        ("MMCS", "boot process initiated for block R00-M0"),
        ("KERNEL", "129024 ddr(s) detected on 512 node(s)"),
        ("KERNEL", "floating point alignment exceptions counter reset"),
    ),
}

#: Red Storm syslog chaff per severity — Table 6's message-severity mix.
REDSTORM_SYSLOG_POOLS: Dict[str, Pool] = {
    "EMERG": (
        ("kernel", "Oops: 0010 [1] SMP in interrupt handler"),
    ),
    "ALERT": (
        ("kernel", "Out of memory: Killed process 8214 (lustre_mgmt)"),
    ),
    "CRIT": (
        ("kernel", "CPU0: Temperature above threshold, cpu clock throttled"),
        ("kernel", "journal commit I/O latency exceeded budget"),
    ),
    "ERR": (
        ("kernel", "end_request: buffer recovery, dev sdc, sector 81543"),
        ("mount", "RPC: sendmsg returned unrecognized value"),
        ("kernel", "lock timed out, resubmitting rpc"),
    ),
    "WARNING": (
        ("kernel", "TCP: time wait bucket table overflow"),
        ("kernel", "Spurious 8259A interrupt: IRQ7"),
    ),
    "NOTICE": (
        ("syslog-ng", "Objects alive 512, garbage collecting"),
        ("sshd", "Did not receive identification string from 10.0.4.4"),
    ),
    "INFO": (
        ("sshd", "Accepted publickey for operator from 10.0.0.7"),
        ("crond", "(root) CMD (/usr/local/sbin/gather_stats)"),
        ("ntpd", "synchronized to 10.0.0.1, stratum 2"),
        ("kernel", "Lustre: 0 recovered clients, last_transno 48210"),
    ),
    "DEBUG": (
        ("portmap", "connect from 127.0.0.1 to getport(status)"),
    ),
}

#: Red Storm RAS-path chaff: informational ec_* events to the SMW.
REDSTORM_RAS_POOL: Pool = (
    ("ec_boot", "info node boot complete"),
    ("ec_state_change", "state avail"),
    ("ec_console_log", "login: console session opened"),
    ("ec_power", "info cabinet power ok"),
    ("ec_heartbeat_start", "info node heartbeat established"),
    ("ec_link_status", "info seastar link retrained ok"),
)


def pool_for(
    system: str,
    severity: Optional[str],
    channel: Channel,
) -> Pool:
    """The template pool for one background slice.

    Raises ``KeyError`` when a scenario asks for a severity the system's
    pools do not define — a calibration bug that should fail loudly.
    """
    if system == "bgl":
        if severity is None:
            raise KeyError("BG/L background requires a severity")
        return BGL_POOLS[severity]
    if system == "redstorm":
        if channel is Channel.RAS_TCP:
            return REDSTORM_RAS_POOL
        if severity is None:
            raise KeyError("Red Storm syslog background requires a severity")
        return REDSTORM_SYSLOG_POOLS[severity]
    return SYSLOG_POOL

"""Cluster topology model for the five machines.

The simulation needs realistic *sources*: node names in each machine's own
convention (``sn373`` on Spirit, ``tn231`` on Thunderbird, ``R02-M1-N0``
hardware coordinates on BG/L, ``c2-0c0s4n1`` Cray cabinet coordinates on
Red Storm), with roles — compute, admin, login, I/O — because "the chatty
sources tended to be the administrative nodes or those with persistent
problems" (paper, Figure 2b) and several failure scenarios are
role-specific (DDN controllers, service nodes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..systems.specs import SystemSpec


class NodeRole(enum.Enum):
    COMPUTE = "compute"
    ADMIN = "admin"
    LOGIN = "login"
    IO = "io"
    CONTROLLER = "controller"


@dataclass(frozen=True)
class Node:
    """One log source."""

    name: str
    role: NodeRole
    index: int


class Cluster:
    """The set of sources for one machine, with naming per its convention.

    Node counts honor the system spec; per-role splits follow the paper's
    architecture descriptions (Section 3.1).  ``chattiness`` gives each
    node a base weight for background-message attribution: admin and I/O
    nodes are orders of magnitude chattier than compute nodes, producing
    the rank-ordered source distribution of Figure 2(b).
    """

    def __init__(self, spec: SystemSpec, max_nodes: int = 4096):
        self.spec = spec
        self.nodes: List[Node] = []
        node_budget = min(spec.nodes, max_nodes)
        self._build(node_budget)

    def _build(self, node_budget: int) -> None:
        index = 0
        for name in self.spec.admin_nodes:
            self.nodes.append(Node(name, NodeRole.ADMIN, index))
            index += 1
        login_count = max(1, node_budget // 128)
        io_count = max(1, node_budget // 64)
        for i in range(login_count):
            self.nodes.append(
                Node(self._name_node("login", i), NodeRole.LOGIN, index)
            )
            index += 1
        for i in range(io_count):
            self.nodes.append(Node(self._name_node("io", i), NodeRole.IO, index))
            index += 1
        compute_count = max(1, node_budget - login_count - io_count)
        for i in range(compute_count):
            self.nodes.append(
                Node(self._name_node("compute", i), NodeRole.COMPUTE, index)
            )
            index += 1
        if self.spec.name == "redstorm":
            for i in range(8):
                self.nodes.append(Node(f"ddn{i}", NodeRole.CONTROLLER, index))
                index += 1

    def _name_node(self, kind: str, i: int) -> str:
        """Name a node in the machine's own convention."""
        system = self.spec.name
        if system == "bgl":
            if kind == "login":
                return f"bglfen{i}"
            if kind == "io":
                return f"bglio{i + 1}"
            # Rack / midplane / node-card coordinates, e.g. R02-M1-N3.
            rack, rest = divmod(i, 32)
            midplane, card = divmod(rest, 16)
            return f"R{rack:02d}-M{midplane}-N{card}"
        if system == "redstorm":
            if kind == "login":
                return f"rslogin{i}"
            if kind == "io":
                return f"rsoss{i}"
            # Cray cabinet coordinates, e.g. c2-0c0s4n1.
            cab, rest = divmod(i, 96)
            cage, rest2 = divmod(rest, 32)
            slot, node = divmod(rest2, 4)
            return f"c{cab}-0c{cage}s{slot}n{node}"
        prefix = {"login": self.spec.node_prefix + "-login",
                  "io": self.spec.node_prefix + "-io"}.get(kind)
        if prefix is not None:
            return f"{prefix}{i}"
        return f"{self.spec.node_prefix}{i + 1}"

    def by_role(self, role: NodeRole) -> List[Node]:
        return [node for node in self.nodes if node.role is role]

    @property
    def compute_nodes(self) -> List[Node]:
        return self.by_role(NodeRole.COMPUTE)

    def node_named(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r} in {self.spec.name} cluster")

    def chattiness(self) -> List[Tuple[Node, float]]:
        """Background-traffic weight per node.

        Admin nodes carry most service daemons (schedulers, monitors,
        mail), I/O and login nodes are moderately busy, and compute nodes
        follow a Zipf tail — together yielding the heavy-skewed per-source
        message distribution of Figure 2(b).
        """
        weights: List[Tuple[Node, float]] = []
        compute_rank = 0
        for node in self.nodes:
            if node.role is NodeRole.ADMIN:
                weight = 2000.0
            elif node.role is NodeRole.IO:
                weight = 150.0
            elif node.role in (NodeRole.LOGIN, NodeRole.CONTROLLER):
                weight = 80.0
            else:
                compute_rank += 1
                weight = 10.0 / compute_rank ** 0.35
            weights.append((node, weight))
        return weights

    def __len__(self) -> int:
        return len(self.nodes)

    def sample_nodes(self, rng, count: int, roles: Sequence[NodeRole] = ()) -> List[Node]:
        """Sample ``count`` distinct nodes, optionally restricted by role."""
        pool = (
            [n for n in self.nodes if n.role in roles] if roles else self.nodes
        )
        if not pool:
            raise ValueError(f"no nodes with roles {roles} in cluster")
        count = min(count, len(pool))
        picks = rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in picks]

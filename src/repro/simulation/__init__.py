"""Calibrated synthetic log substrate for the five supercomputers.

This package stands in for the paper's 111.67 GB of production logs (which
were never released): it models each machine's logging architecture,
workload, documented failure scenarios, message corruption, and
operational context, and emits time-ordered
:class:`~repro.logmodel.record.LogRecord` streams calibrated to the
paper's Table 4 per-category counts.  See DESIGN.md section 2 for the
substitution rationale.
"""

from .background import pool_for
from .calibration import (
    PROFILES,
    SCENARIOS,
    BackgroundSpec,
    CategoryCalibration,
    SystemScenario,
    get_scenario,
)
from .cluster import Cluster, Node, NodeRole
from .collector import Collector, merge_streams
from .corruptor import Corruptor, CorruptorStats
from .failures import Incident, IncidentPlanner, zipf_split
from .generator import GeneratedLog, LogGenerator, generate_all, generate_log
from .opcontext import (
    ContextTimeline,
    OperationalState,
    StateTransition,
    disambiguate,
    synthesize_timeline,
)
from .swf import (
    Flurry,
    detect_flurries,
    read_swf,
    sanitize_workload,
    write_swf,
)
from .transport import JtagMailbox, TcpRasChannel, UdpSyslogChannel
from .workload import (
    Job,
    WorkloadModel,
    communication_intensive,
    jobs_running_at,
    lost_node_seconds,
)

__all__ = [
    "pool_for",
    "PROFILES",
    "SCENARIOS",
    "BackgroundSpec",
    "CategoryCalibration",
    "SystemScenario",
    "get_scenario",
    "Cluster",
    "Node",
    "NodeRole",
    "Collector",
    "merge_streams",
    "Corruptor",
    "CorruptorStats",
    "Incident",
    "IncidentPlanner",
    "zipf_split",
    "GeneratedLog",
    "LogGenerator",
    "generate_all",
    "generate_log",
    "ContextTimeline",
    "OperationalState",
    "StateTransition",
    "disambiguate",
    "synthesize_timeline",
    "Flurry",
    "detect_flurries",
    "read_swf",
    "sanitize_workload",
    "write_swf",
    "JtagMailbox",
    "TcpRasChannel",
    "UdpSyslogChannel",
    "Job",
    "WorkloadModel",
    "communication_intensive",
    "jobs_running_at",
    "lost_node_seconds",
]

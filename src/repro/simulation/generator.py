"""Top-level synthetic log generators, one per supercomputer.

:class:`LogGenerator` assembles the whole substrate for one machine —
cluster, workload, operational-context timeline, incident plan, background
traffic, collection with corruption — and yields the merged, time-ordered
:class:`~repro.logmodel.record.LogRecord` stream an analyst would read off
the machine's logging server.

Scaling: ``scale`` multiplies message *volumes* (background counts and
alert burst multiplicities); ``incident_scale`` multiplies the number of
distinct failures.  The defaults reproduce the paper's Table 4 shape at
whatever volume fits the caller's budget: filtered counts track
``incident_scale`` while raw counts track ``scale``.

Determinism: everything derives from one ``numpy.random.SeedSequence``, so
a (system, scale, seed) triple always yields the identical log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..core.categories import CategoryDef
from ..core.rules import get_ruleset
from ..logmodel.record import Channel, LogRecord
from ..systems.specs import get_system
from .background import pool_for
from .calibration import SystemScenario, get_scenario
from .cluster import Cluster
from .collector import Collector
from .corruptor import Corruptor
from .failures import Incident, IncidentPlanner
from .opcontext import ContextTimeline, synthesize_timeline
from .workload import Job, WorkloadModel

#: Channels whose on-disk format has one-second timestamp granularity.
_SECOND_GRANULARITY = (
    Channel.SYSLOG_UDP,
    Channel.SYSLOG_LOCAL,
    Channel.DDN,
    Channel.RAS_TCP,
)


def _quantize(timestamp: float, channel: Channel) -> float:
    """Apply the channel's timestamp granularity (Section 3.1: microseconds
    on BG/L, one second for typical syslogs)."""
    if channel in _SECOND_GRANULARITY:
        return float(int(timestamp))
    return round(timestamp, 6)


@dataclass
class GeneratedLog:
    """A generated log plus the ground truth behind it."""

    system: str
    scenario: SystemScenario
    cluster: Cluster
    timeline: ContextTimeline
    jobs: List[Job]
    incidents: List[Incident]
    records: Iterator[LogRecord]


class LogGenerator:
    """Builds the substrate for one machine and streams its log.

    Parameters
    ----------
    system:
        Short machine name (``"bgl"``, ``"thunderbird"``, ``"redstorm"``,
        ``"spirit"``, ``"liberty"``).
    scale:
        Volume multiplier applied to the paper's message counts.
    seed:
        Master seed; all randomness derives from it.
    incident_scale:
        Multiplier on distinct-failure counts (default 1.0 keeps the
        paper's filtered counts).
    max_nodes:
        Cap on simulated cluster size (memory guard for BG/L's 65536).
    corruption:
        Override the scenario's corruption rate (``None`` keeps it).
    background_scale:
        Separate volume multiplier for non-alert traffic (defaults to
        ``scale``).  Lets an experiment run alert bursts at full paper
        multiplicities without paying for hundreds of millions of chaff
        messages.
    """

    def __init__(
        self,
        system: str,
        scale: float = 1e-4,
        seed: int = 2007,
        incident_scale: float = 1.0,
        max_nodes: int = 2048,
        corruption: Optional[float] = None,
        background_scale: Optional[float] = None,
    ):
        if scale <= 0:
            raise ValueError("scale must be positive")
        if incident_scale <= 0:
            raise ValueError("incident_scale must be positive")
        if background_scale is not None and background_scale < 0:
            raise ValueError("background_scale must be non-negative")
        self.system = system
        self.spec = get_system(system)
        self.scenario = get_scenario(system)
        self.ruleset = get_ruleset(system)
        self.scale = scale
        self.background_scale = scale if background_scale is None else background_scale
        self.incident_scale = incident_scale
        self.corruption = (
            self.scenario.corruption_rate if corruption is None else corruption
        )
        system_tag = sum(system.encode())  # stable across processes, unlike hash()
        self._seed_seq = np.random.SeedSequence(entropy=(seed, system_tag))
        children = self._seed_seq.spawn(6)
        self._rng_plan = np.random.default_rng(children[0])
        self._rng_background = np.random.default_rng(children[1])
        self._rng_bodies = np.random.default_rng(children[2])
        self._rng_corrupt = np.random.default_rng(children[3])
        self._rng_jobs = np.random.default_rng(children[4])
        self._rng_context = np.random.default_rng(children[5])
        self.cluster = Cluster(self.spec, max_nodes=max_nodes)
        self._categories: Dict[str, CategoryDef] = {
            cat.name: cat for cat in self.ruleset
        }

    # -- substrate pieces ---------------------------------------------------

    def build_jobs(self) -> List[Job]:
        """The workload trace (needed by job-correlated categories)."""
        needs_jobs = any(cat.job_correlated for cat in self.scenario.categories)
        if not needs_jobs:
            return []
        model = WorkloadModel(self.cluster)
        return model.generate_list(
            self._rng_jobs, self.scenario.start_epoch, self.scenario.end_epoch
        )

    def build_timeline(self) -> ContextTimeline:
        """Ground-truth operational context for the observation window."""
        return synthesize_timeline(
            self._rng_context, self.scenario.start_epoch, self.scenario.end_epoch
        )

    def build_incidents(
        self,
        jobs: Sequence[Job],
        timeline: Optional[ContextTimeline] = None,
    ) -> List[Incident]:
        planner = IncidentPlanner(
            self.scenario, self.cluster, self._rng_plan, jobs,
            timeline=timeline,
        )
        return planner.plan(scale=self.scale, incident_scale=self.incident_scale)

    # -- record streams -----------------------------------------------------

    def _incident_stream(self, incident: Incident) -> Iterator[LogRecord]:
        """The alert burst for one incident, time-ordered.

        Gaps within a burst are exponential with a mean chosen so the burst
        stays within the filter threshold chain (every gap < 5 s), which is
        what makes redundant reporting collapsible; gap means shrink for
        huge bursts (the Spirit storm logged tens of messages per second).
        """
        cat = self._categories[incident.category]
        rng = self._rng_bodies
        gap_mean = min(1.2, max(0.08, 600.0 / incident.multiplicity))
        t = incident.start
        n_sources = len(incident.sources)
        # One body per incident: redundant reports repeat the SAME message
        # (same job id, same address) — that is what makes them redundant.
        body = cat.make_body(rng)
        for k in range(incident.multiplicity):
            source = incident.sources[k % n_sources]
            yield self._make_alert_record(cat, t, source, body)
            gap = float(rng.exponential(gap_mean))
            t += min(4.0, max(0.05, gap))

    def _make_alert_record(
        self, cat: CategoryDef, t: float, source: str, body: str
    ) -> LogRecord:
        if cat.channel is Channel.RAS_TCP:
            body = f"src:::{source} svc:::{source} {body}"
        return LogRecord(
            timestamp=_quantize(t, cat.channel),
            source=source,
            facility=cat.facility,
            body=body,
            system=self.system,
            severity=cat.severity,
            channel=cat.channel,
        )

    def _background_stream(self) -> Iterator[LogRecord]:
        """All non-alert traffic, merged across severity/channel slices."""
        from .collector import merge_streams

        slices = [
            self._background_slice(spec.severity, spec.channel, spec.count)
            for spec in self.scenario.background
        ]
        return merge_streams(*slices)

    def _background_slice(
        self, severity: Optional[str], channel: Channel, count: int
    ) -> Iterator[LogRecord]:
        n = round(count * self.background_scale)
        if n <= 0:
            return
        rng = self._rng_background
        times = self._background_times(rng, n)
        pool = pool_for(self.system, severity, channel)
        nodes, weights = zip(*self.cluster.chattiness())
        probabilities = np.asarray(weights, dtype=float)
        probabilities /= probabilities.sum()
        node_idx = rng.choice(len(nodes), size=n, p=probabilities)
        template_idx = rng.integers(0, len(pool), size=n)
        for i in range(n):
            facility, body = pool[int(template_idx[i])]
            source = nodes[int(node_idx[i])].name
            record_body = body
            if channel is Channel.RAS_TCP:
                record_body = f"src:::{source} svc:::{source} {body}"
            yield LogRecord(
                timestamp=_quantize(float(times[i]), channel),
                source=source,
                facility=facility,
                body=record_body,
                system=self.system,
                severity=severity,
                channel=channel,
            )

    def _background_times(self, rng, n: int) -> np.ndarray:
        """Sorted arrival times honoring the piecewise rate profile.

        Liberty's profile encodes the Figure 2(a) evolution shifts: the
        per-segment expected share is multiplier x segment length, so a
        step in the multiplier is a step in messages/hour.
        """
        t0, t1 = self.scenario.start_epoch, self.scenario.end_epoch
        profile = list(self.scenario.rate_profile)
        boundaries = [t0 + frac * (t1 - t0) for frac, _ in profile] + [t1]
        segment_weights = np.array(
            [
                profile[i][1] * (boundaries[i + 1] - boundaries[i])
                for i in range(len(profile))
            ]
        )
        segment_weights /= segment_weights.sum()
        counts = rng.multinomial(n, segment_weights)
        chunks = []
        for i, count in enumerate(counts):
            if count == 0:
                continue
            chunk = boundaries[i] + rng.random(count) * (
                boundaries[i + 1] - boundaries[i]
            )
            chunk.sort()
            chunks.append(chunk)
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks)

    # -- assembly -----------------------------------------------------------

    def generate(self) -> GeneratedLog:
        """Build everything and return the stream plus ground truth."""
        jobs = self.build_jobs()
        timeline = self.build_timeline()
        incidents = self.build_incidents(jobs, timeline)
        corruptor = (
            Corruptor(self._rng_corrupt, rate=self.corruption)
            if self.corruption > 0
            else None
        )
        collector = Collector(self.spec.log_server, corruptor=corruptor)
        streams = [self._background_stream()]
        streams.extend(self._incident_stream(inc) for inc in incidents)
        records = collector.collect(*streams)
        return GeneratedLog(
            system=self.system,
            scenario=self.scenario,
            cluster=self.cluster,
            timeline=timeline,
            jobs=jobs,
            incidents=incidents,
            records=records,
        )

    def records(self) -> Iterator[LogRecord]:
        """Just the record stream (convenience)."""
        return self.generate().records


def generate_log(
    system: str,
    scale: float = 1e-4,
    seed: int = 2007,
    incident_scale: float = 1.0,
    **kwargs,
) -> GeneratedLog:
    """One-call generation: substrate plus record stream for a machine."""
    return LogGenerator(
        system, scale=scale, seed=seed, incident_scale=incident_scale, **kwargs
    ).generate()


def generate_all(
    scale: float = 1e-4, seed: int = 2007, **kwargs
) -> Dict[str, GeneratedLog]:
    """Generate all five machines' logs (lazily; streams unconsumed)."""
    from ..systems.specs import SYSTEMS

    return {
        name: generate_log(name, scale=scale, seed=seed, **kwargs)
        for name in SYSTEMS
    }

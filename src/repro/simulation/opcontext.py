"""Operational context: the paper's Figure 1 state machine.

The paper's most emphasized missing datum is *operational context*, "which
captures the system's expected behavior" (Section 1): the same message —
``ciodb exited normally with exit code 0`` at severity FAILURE — is
harmless during maintenance and catastrophic during production
(Section 3.2.1).  Figure 1, "the current basis of Red Storm RAS metrics",
divides machine time into production and engineering time, each up or
down, with scheduled and unscheduled interruptions; the paper suggests "it
may be sufficient to record only a few bytes of data: the time and cause
of system state changes."

This module implements exactly that: a timeline of state intervals with
causes, the transition events that would be logged, and the queries an
alert disambiguator needs (:meth:`ContextTimeline.state_at`).  The
simulation uses it as ground truth; :mod:`repro.analysis.ras` uses it for
context-aware metrics.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple


class OperationalState(enum.Enum):
    """Machine states, after Figure 1."""

    PRODUCTION_UPTIME = "production-uptime"
    SCHEDULED_DOWNTIME = "scheduled-downtime"
    UNSCHEDULED_DOWNTIME = "unscheduled-downtime"
    ENGINEERING_TIME = "engineering-time"

    @property
    def is_production(self) -> bool:
        return self is OperationalState.PRODUCTION_UPTIME

    @property
    def is_downtime(self) -> bool:
        return self in (
            OperationalState.SCHEDULED_DOWNTIME,
            OperationalState.UNSCHEDULED_DOWNTIME,
        )


@dataclass(frozen=True)
class StateTransition:
    """One logged state change: "the time and cause" (Section 3.2.1)."""

    timestamp: float
    state: OperationalState
    cause: str

    def as_log_message(self) -> str:
        """The transition rendered as the log line the paper recommends."""
        return f"OPSTATE {self.state.value} cause={self.cause!r}"


class ContextTimeline:
    """A machine's operational history as ordered state transitions.

    The timeline starts in ``initial_state`` at ``start``; each transition
    switches the state from its timestamp onward.  Lookup is binary search.
    """

    def __init__(
        self,
        start: float,
        end: float,
        initial_state: OperationalState = OperationalState.PRODUCTION_UPTIME,
        initial_cause: str = "start of observation",
    ):
        if end <= start:
            raise ValueError("end must be after start")
        self.start = start
        self.end = end
        self._transitions: List[StateTransition] = [
            StateTransition(start, initial_state, initial_cause)
        ]

    def add_transition(self, timestamp: float, state: OperationalState,
                       cause: str) -> None:
        """Append a transition; timestamps must be non-decreasing."""
        if timestamp < self._transitions[-1].timestamp:
            raise ValueError(
                "transitions must be added in non-decreasing time order"
            )
        if not (self.start <= timestamp <= self.end):
            raise ValueError("transition outside the observation window")
        self._transitions.append(StateTransition(timestamp, state, cause))

    @property
    def transitions(self) -> Tuple[StateTransition, ...]:
        return tuple(self._transitions)

    def state_at(self, t: float) -> OperationalState:
        """The machine state at time ``t`` (clamped to the window)."""
        times = [tr.timestamp for tr in self._transitions]
        idx = bisect.bisect_right(times, t) - 1
        return self._transitions[max(idx, 0)].state

    def intervals(self) -> Iterator[Tuple[float, float, OperationalState, str]]:
        """Yield (t0, t1, state, cause) covering [start, end)."""
        for i, tr in enumerate(self._transitions):
            t1 = (
                self._transitions[i + 1].timestamp
                if i + 1 < len(self._transitions)
                else self.end
            )
            if t1 > tr.timestamp:
                yield tr.timestamp, t1, tr.state, tr.cause

    def seconds_in(self, state: OperationalState) -> float:
        """Total seconds spent in ``state`` over the window."""
        return sum(
            t1 - t0 for t0, t1, s, _ in self.intervals() if s is state
        )

    def production_fraction(self) -> float:
        """Fraction of the window spent in production uptime."""
        return self.seconds_in(OperationalState.PRODUCTION_UPTIME) / (
            self.end - self.start
        )


def synthesize_timeline(
    rng,
    start: float,
    end: float,
    mean_days_between_outages: float = 21.0,
    scheduled_fraction: float = 0.6,
    mean_outage_hours: float = 8.0,
    extra_events: Sequence[Tuple[float, OperationalState, str]] = (),
) -> ContextTimeline:
    """A plausible operational history for a production machine.

    Outages arrive as a Poisson process; each is scheduled maintenance with
    probability ``scheduled_fraction`` (else an unscheduled failure), lasts
    an exponential number of hours, then the machine returns to production.
    ``extra_events`` injects scenario-specific transitions (e.g. the
    Liberty OS upgrade) at fixed times.
    """
    timeline = ContextTimeline(start, end)
    pending: List[Tuple[float, OperationalState, str]] = list(extra_events)
    t = start
    while True:
        t += float(rng.exponential(mean_days_between_outages * 86400.0))
        if t >= end:
            break
        duration = max(600.0, float(rng.exponential(mean_outage_hours * 3600.0)))
        if rng.random() < scheduled_fraction:
            state, cause = OperationalState.SCHEDULED_DOWNTIME, "scheduled maintenance"
        else:
            state, cause = OperationalState.UNSCHEDULED_DOWNTIME, "system failure"
        pending.append((t, state, cause))
        if t + duration < end:
            pending.append(
                (t + duration, OperationalState.PRODUCTION_UPTIME,
                 "return to production")
            )
    for when, state, cause in sorted(pending, key=lambda item: item[0]):
        if timeline.transitions[-1].timestamp <= when <= end:
            timeline.add_transition(when, state, cause)
    return timeline


def disambiguate(
    timeline: Optional[ContextTimeline],
    timestamp: float,
    ambiguous: bool,
) -> str:
    """Classify an alert given operational context.

    The paper's BGLMASTER example: a FAILURE-severity "exited normally"
    message is ``benign`` during maintenance, ``critical`` in production.
    Without a timeline the honest answer is ``unknown`` — which is the
    state of practice the paper laments.
    """
    if not ambiguous:
        return "critical"
    if timeline is None:
        return "unknown"
    state = timeline.state_at(timestamp)
    return "benign" if state.is_downtime else "critical"

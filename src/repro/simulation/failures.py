"""Failure-incident planning: when failures happen, where, how loudly.

The unit of planning is the **incident** — one underlying failure that the
filter should reduce to a single alert.  A category's incidents come from
its calibration (:mod:`repro.simulation.calibration`); this module decides
their start times, participating sources, and burst multiplicities, encoding
the paper's distributional findings:

* multiplicities are heavy-tailed ("sometimes millions of times",
  Section 3.2) — a Zipf-weighted split of the category's raw count;
* hot sources concentrate damage (Spirit's ``sn373``);
* correlated categories share incident times (Figure 3, Figure 4);
* job-correlated categories fire on communication-intensive jobs' node
  sets (the SMP clock bug, Section 4);
* per-system clustering groups incidents into bursts of related failures
  (cascades), shaping the filtered interarrival histograms of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .calibration import PROFILES, CategoryCalibration, SystemScenario
from .cluster import Cluster, NodeRole
from .opcontext import ContextTimeline
from .workload import Job, communication_intensive


@dataclass(frozen=True)
class Incident:
    """One planned failure: a burst of ``multiplicity`` alerts of one
    category, starting at ``start``, spread over ``sources``."""

    category: str
    start: float
    multiplicity: int
    sources: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ValueError("multiplicity must be at least 1")
        if not self.sources:
            raise ValueError("an incident needs at least one source")


def capped_split(
    rng,
    total: int,
    parts: int,
    cap: int,
    exponent: float = 1.4,
) -> List[int]:
    """A Zipf-shaped split where no part exceeds ``cap``.

    Overflow above the cap is redistributed to under-cap parts, preserving
    the exact total.  Used for categories with a documented per-incident
    limit (the PBS bug's 74-repeat cap).
    """
    if cap < 1:
        raise ValueError("cap must be at least 1")
    if total > parts * cap:
        raise ValueError(f"cannot fit {total} into {parts} parts of <= {cap}")
    counts = zipf_split(rng, total, parts, exponent)
    overflow = 0
    for i, value in enumerate(counts):
        if value > cap:
            overflow += value - cap
            counts[i] = cap
    while overflow > 0:
        room = [i for i, value in enumerate(counts) if value < cap]
        picks = rng.integers(0, len(room), size=overflow)
        for pick in picks:
            i = room[int(pick)]
            if counts[i] < cap:
                counts[i] += 1
                overflow -= 1
    return counts


def zipf_split(rng, total: int, parts: int, exponent: float = 1.4) -> List[int]:
    """Split ``total`` into ``parts`` positive integers with a Zipf shape.

    The heaviest incident gets the lion's share, matching the paper's
    storms (one six-day Spirit incident held 56.8 M of 172.8 M alerts).
    Parts are shuffled so rank does not correlate with planning order.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < parts:
        raise ValueError(f"cannot split {total} into {parts} positive parts")
    weights = 1.0 / np.arange(1, parts + 1, dtype=float) ** exponent
    weights /= weights.sum()
    remainder = total - parts
    extra = rng.multinomial(remainder, weights) if remainder > 0 else np.zeros(parts, int)
    counts = (1 + extra).tolist()
    rng.shuffle(counts)
    return [int(c) for c in counts]


class IncidentPlanner:
    """Plans all incidents for one system scenario."""

    def __init__(
        self,
        scenario: SystemScenario,
        cluster: Cluster,
        rng: np.random.Generator,
        jobs: Sequence[Job] = (),
        timeline: Optional[ContextTimeline] = None,
    ):
        self.scenario = scenario
        self.cluster = cluster
        self.rng = rng
        self.jobs = list(jobs)
        self.timeline = timeline
        self._cluster_centers = self._make_cluster_centers()
        self._downtime_intervals = (
            [
                (t0, t1)
                for t0, t1, state, _ in timeline.intervals()
                if state.is_downtime
            ]
            if timeline is not None
            else []
        )

    def _make_cluster_centers(self) -> np.ndarray:
        """Shared burst centers for cascade-style incident grouping."""
        if self.scenario.clustering <= 0:
            return np.empty(0)
        total_incidents = sum(cat.filtered for cat in self.scenario.categories)
        n_centers = max(2, total_incidents // 4)
        span = self.scenario.end_epoch - self.scenario.start_epoch
        centers = self.scenario.start_epoch + self.rng.random(n_centers) * span
        return np.sort(centers)

    def _profile_window(self, cat: CategoryCalibration) -> Tuple[float, float]:
        f0, f1 = PROFILES[cat.profile]
        span = self.scenario.end_epoch - self.scenario.start_epoch
        return (
            self.scenario.start_epoch + f0 * span,
            self.scenario.start_epoch + f1 * span,
        )

    def _free_times(self, cat: CategoryCalibration, count: int) -> np.ndarray:
        """Incident start times for an uncorrelated category."""
        t0, t1 = self._profile_window(cat)
        times = t0 + self.rng.random(count) * (t1 - t0)
        if self.scenario.clustering > 0 and len(self._cluster_centers):
            snap = self.rng.random(count) < self.scenario.clustering
            idx = self.rng.integers(0, len(self._cluster_centers), size=count)
            offsets = np.abs(
                self.rng.normal(0.0, self.scenario.cluster_span, size=count)
            )
            times = np.where(snap, self._cluster_centers[idx] + offsets, times)
        if cat.downtime_affinity > 0 and self._downtime_intervals:
            for i in range(count):
                if self.rng.random() < cat.downtime_affinity:
                    lo, hi = self._downtime_intervals[
                        int(self.rng.integers(0, len(self._downtime_intervals)))
                    ]
                    times[i] = lo + self.rng.random() * (hi - lo)
        return np.clip(times, t0, t1 - 1.0)

    def _correlated_times(
        self, base: Sequence[Incident], count: int, mean_lag: float = 45.0
    ) -> Tuple[np.ndarray, List[Tuple[str, ...]]]:
        """Start times and sources shadowing another category's incidents."""
        picks = self.rng.integers(0, len(base), size=count)
        lags = 2.0 + self.rng.exponential(mean_lag, size=count)
        times = np.array([base[int(i)].start for i in picks]) + lags
        sources = [base[int(i)].sources for i in picks]
        return times, sources

    def _job_times(self, count: int) -> Tuple[np.ndarray, List[Tuple[str, ...]]]:
        """Incident times inside communication-intensive jobs (CPU bug)."""
        # The clock bug needs a *set* of nodes under communication load:
        # single-node jobs have no network traffic to trigger it.
        multi_node = [job for job in self.jobs if len(job.nodes) >= 2]
        hot_jobs = communication_intensive(multi_node)
        if not hot_jobs:
            hot_jobs = multi_node or self.jobs
        if not hot_jobs:
            raise ValueError("job-correlated category requires a workload")
        picks = self.rng.integers(0, len(hot_jobs), size=count)
        times = []
        sources: List[Tuple[str, ...]] = []
        for i in picks:
            job = hot_jobs[int(i)]
            times.append(job.start + self.rng.random() * job.duration)
            width = min(len(job.nodes), max(2, int(self.rng.integers(2, 9))))
            chosen = self.rng.choice(len(job.nodes), size=width, replace=False)
            sources.append(tuple(job.nodes[int(j)].name for j in chosen))
        return np.array(times), sources

    def _sample_sources(self, cat: CategoryCalibration) -> Tuple[str, ...]:
        """Sources for one incident of an uncorrelated category."""
        spread = max(1, int(self.rng.integers(1, cat.spread + 1)))
        roles: Tuple[NodeRole, ...] = ()
        if self.scenario.system == "redstorm" and cat.category in (
            "BUS_PAR", "ADDR_ERR", "CMD_ABORT", "DSK_FAIL",
        ):
            roles = (NodeRole.CONTROLLER,)
        nodes = self.cluster.sample_nodes(self.rng, spread, roles=roles)
        return tuple(node.name for node in nodes)

    def plan_category(
        self,
        cat: CategoryCalibration,
        planned: Dict[str, List[Incident]],
        scale: float,
        incident_scale: float,
    ) -> List[Incident]:
        count = cat.incidents(incident_scale)
        raw_total = cat.scaled_raw(scale, incident_scale)

        sources_by_incident: Optional[List[Tuple[str, ...]]] = None
        if cat.job_correlated and self.jobs:
            times, sources_by_incident = self._job_times(count)
        elif cat.correlate_with is not None and planned.get(cat.correlate_with):
            times, sources_by_incident = self._correlated_times(
                planned[cat.correlate_with], count
            )
        else:
            times = self._free_times(cat, count)

        if cat.max_multiplicity is not None:
            multiplicities = capped_split(
                self.rng, raw_total, count, cat.max_multiplicity
            )
        else:
            multiplicities = zipf_split(self.rng, raw_total, count)

        # Hot-source concentration: a designated node owns a fixed share of
        # the raw volume across a fixed share of the incidents.
        hot_incidents = 0
        if cat.hot_source and cat.hot_raw_fraction > 0:
            hot_incidents = max(1, round(count * cat.hot_incident_fraction))
            hot_raw = round(raw_total * cat.hot_raw_fraction)
            hot_raw = max(hot_incidents, hot_raw)
            cold_raw = raw_total - hot_raw
            cold_count = count - hot_incidents
            if cold_count > 0 and cold_raw >= cold_count:
                multiplicities = (
                    zipf_split(self.rng, hot_raw, hot_incidents)
                    + zipf_split(self.rng, cold_raw, cold_count)
                )

        incidents: List[Incident] = []
        for i in range(count):
            if i < hot_incidents and cat.hot_source:
                # Hot-source concentration wins over inherited placement:
                # Spirit's sn373 dominated BOTH disk categories even though
                # their incidents were correlated (Section 3.3.1).
                sources = (cat.hot_source,)
            elif sources_by_incident is not None:
                sources = sources_by_incident[i]
            else:
                sources = self._sample_sources(cat)
            incidents.append(
                Incident(
                    category=cat.category,
                    start=float(times[i]),
                    multiplicity=multiplicities[i],
                    sources=sources,
                )
            )
        incidents.sort(key=lambda inc: inc.start)
        return incidents

    def plan(self, scale: float = 1.0, incident_scale: float = 1.0) -> List[Incident]:
        """Plan every category; correlation targets are planned first."""
        planned: Dict[str, List[Incident]] = {}
        ordered = sorted(
            self.scenario.categories,
            key=lambda cat: 0 if cat.correlate_with is None else 1,
        )
        for cat in ordered:
            planned[cat.category] = self.plan_category(
                cat, planned, scale, incident_scale
            )
        everything = [inc for incs in planned.values() for inc in incs]
        everything.sort(key=lambda inc: inc.start)
        return everything

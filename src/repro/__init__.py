"""repro — a reproduction of "What Supercomputers Say: A Study of Five
System Logs" (Adam Oliner and Jon Stearley, DSN 2007).

The package implements, from scratch:

* the paper's primary contribution — expert-rule alert tagging and the
  simultaneous spatio-temporal filtering algorithm (Algorithm 3.1), plus
  the serial baseline it improves on and the adaptive/correlation-aware
  extensions it recommends (:mod:`repro.core`);
* the substrate the paper's data came from — a calibrated synthetic log
  generator modeling the five machines' logging architectures, workloads,
  failure scenarios, corruption, and operational context
  (:mod:`repro.simulation`), with parsers for each native format
  (:mod:`repro.logmodel`);
* the paper's analyses — interarrival statistics and distribution fits,
  spatial and inter-tag correlation, time series and phase-shift detection,
  severity evaluation, RAS metrics (:mod:`repro.analysis`), and the
  per-category predictor ensemble of Section 5 (:mod:`repro.prediction`);
* text renderers regenerating every table and figure in the paper's
  evaluation (:mod:`repro.reporting`).

Quickstart::

    from repro import api
    result = api.run("liberty", scale=0.1, seed=42)
    print(result.summary())

:mod:`repro.api` is the stable import surface (``run``, ``run_all``,
``tag_lines``, ``iter_alerts``, ``serve``, plus the historical
``run_stream``/``run_system``); its facade functions are also re-exported
here at the package root.  ``repro.pipeline`` still works but warns.
"""

__version__ = "1.0.0"

from . import (
    analysis,
    api,
    core,
    engine,
    logio,
    logmodel,
    parallel,
    pipeline,
    prediction,
    reporting,
    resilience,
    service,
    simulation,
    systems,
)
from .api import iter_alerts, run, run_all, serve, tag_lines

__all__ = [
    "analysis",
    "api",
    "core",
    "engine",
    "iter_alerts",
    "logio",
    "logmodel",
    "parallel",
    "pipeline",
    "prediction",
    "reporting",
    "resilience",
    "run",
    "run_all",
    "serve",
    "service",
    "simulation",
    "systems",
    "tag_lines",
    "__version__",
]

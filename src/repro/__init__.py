"""repro — a reproduction of "What Supercomputers Say: A Study of Five
System Logs" (Adam Oliner and Jon Stearley, DSN 2007).

The package implements, from scratch:

* the paper's primary contribution — expert-rule alert tagging and the
  simultaneous spatio-temporal filtering algorithm (Algorithm 3.1), plus
  the serial baseline it improves on and the adaptive/correlation-aware
  extensions it recommends (:mod:`repro.core`);
* the substrate the paper's data came from — a calibrated synthetic log
  generator modeling the five machines' logging architectures, workloads,
  failure scenarios, corruption, and operational context
  (:mod:`repro.simulation`), with parsers for each native format
  (:mod:`repro.logmodel`);
* the paper's analyses — interarrival statistics and distribution fits,
  spatial and inter-tag correlation, time series and phase-shift detection,
  severity evaluation, RAS metrics (:mod:`repro.analysis`), and the
  per-category predictor ensemble of Section 5 (:mod:`repro.prediction`);
* text renderers regenerating every table and figure in the paper's
  evaluation (:mod:`repro.reporting`).

Quickstart::

    from repro import pipeline
    result = pipeline.run_system("liberty", scale=0.1, seed=42)
    print(result.summary())
"""

__version__ = "1.0.0"

from . import (
    analysis,
    core,
    engine,
    logio,
    logmodel,
    parallel,
    pipeline,
    prediction,
    reporting,
    resilience,
    service,
    simulation,
    systems,
)

__all__ = [
    "analysis",
    "core",
    "engine",
    "logio",
    "logmodel",
    "parallel",
    "pipeline",
    "prediction",
    "reporting",
    "resilience",
    "service",
    "simulation",
    "systems",
    "__version__",
]

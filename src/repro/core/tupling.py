"""Tsao-style tuple clustering (related-work baseline).

Tsao's dissertation introduced the *tuple* concept "for data organization
and to deal with multiple reports of single events" (paper, Section 2;
Buckley & Siewiorek later compared tupling schemes).  A tuple is a maximal
run of events in which consecutive members are separated by at most a
coalescence window — unlike the paper's filter, tupling groups across
*all* categories and keeps the whole group (with its membership) rather
than only the first alert.

Tupling gives the reproduction a third comparison point: per-failure
grouping quality can be judged against both the simultaneous and serial
filters in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from .categories import Alert


@dataclass
class AlertTuple:
    """One coalesced group of temporally adjacent alerts."""

    alerts: List[Alert] = field(default_factory=list)

    @property
    def start(self) -> float:
        return self.alerts[0].timestamp

    @property
    def end(self) -> float:
        return self.alerts[-1].timestamp

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def size(self) -> int:
        return len(self.alerts)

    def categories(self) -> Tuple[str, ...]:
        """Distinct categories present, in first-appearance order."""
        seen: List[str] = []
        for alert in self.alerts:
            if alert.category not in seen:
                seen.append(alert.category)
        return tuple(seen)

    def sources(self) -> Tuple[str, ...]:
        """Distinct sources present, in first-appearance order."""
        seen: List[str] = []
        for alert in self.alerts:
            if alert.source not in seen:
                seen.append(alert.source)
        return tuple(seen)

    def representative(self) -> Alert:
        """The tuple's first alert — the per-failure representative."""
        return self.alerts[0]


def tuple_alerts(
    alerts: Iterable[Alert],
    window: float = 5.0,
) -> Iterator[AlertTuple]:
    """Group a time-sorted stream into tuples.

    A new tuple starts whenever the gap since the previous alert exceeds
    ``window``.  Yields tuples as they close; the final tuple is yielded at
    stream end.
    """
    if window < 0:
        raise ValueError("window must be non-negative")
    current: List[Alert] = []
    for alert in alerts:
        if current and alert.timestamp - current[-1].timestamp > window:
            yield AlertTuple(current)
            current = []
        current.append(alert)
    if current:
        yield AlertTuple(current)


def tuple_statistics(tuples: Iterable[AlertTuple]) -> Dict[str, float]:
    """Summary statistics over a tuple stream.

    Returns count, mean/max size, mean/max duration, and the *collision
    rate* — the fraction of tuples containing more than one category, which
    measures how often a window-based grouper merges distinct failure
    classes (Buckley & Siewiorek's central concern when comparing tupling
    schemes).
    """
    count = 0
    total_size = 0
    max_size = 0
    total_duration = 0.0
    max_duration = 0.0
    collisions = 0
    for tup in tuples:
        count += 1
        total_size += tup.size
        max_size = max(max_size, tup.size)
        total_duration += tup.duration
        max_duration = max(max_duration, tup.duration)
        if len(tup.categories()) > 1:
            collisions += 1
    if count == 0:
        return {
            "count": 0, "mean_size": 0.0, "max_size": 0,
            "mean_duration": 0.0, "max_duration": 0.0, "collision_rate": 0.0,
        }
    return {
        "count": count,
        "mean_size": total_size / count,
        "max_size": max_size,
        "mean_duration": total_duration / count,
        "max_duration": max_duration,
        "collision_rate": collisions / count,
    }

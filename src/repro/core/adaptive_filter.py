"""Per-category adaptive filtering (the paper's recommended extension).

Section 4 identifies a major weakness of all threshold filters, including
the paper's own: "a filtering threshold must be selected in advance and is
then applied across all kinds of alerts.  In reality, each alert category
may require a different threshold, which may change over time."  The
bimodal interarrival distribution on BG/L (Figure 6a) is attributed partly
to unfiltered redundancy left by the one-size-fits-all threshold.

This module provides the two pieces the recommendation implies:

* :class:`PerCategoryFilter` — Algorithm 3.1 generalized to a map of
  per-category thresholds (falling back to a default for unlisted tags);
* :func:`suggest_thresholds` — a data-driven threshold chooser that places
  each category's cut at the antimode of its log-interarrival histogram
  (the valley between the redundancy mode and the independent-failure
  mode), which is exactly where a human would cut Figure 6(a).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from .categories import Alert
from .filtering import DEFAULT_THRESHOLD


class PerCategoryFilter:
    """Simultaneous spatio-temporal filtering with per-category thresholds.

    Semantics match Algorithm 3.1 except the redundancy window for an alert
    of category ``c`` is ``thresholds.get(c, default_threshold)``.  With an
    empty mapping this degenerates to the paper's filter exactly — a
    property the test suite pins down.
    """

    def __init__(
        self,
        thresholds: Optional[Mapping[str, float]] = None,
        default_threshold: float = DEFAULT_THRESHOLD,
    ):
        if default_threshold < 0:
            raise ValueError("default_threshold must be non-negative")
        self.thresholds = dict(thresholds or {})
        for category, value in self.thresholds.items():
            if value < 0:
                raise ValueError(
                    f"threshold for {category!r} must be non-negative, got {value}"
                )
        self.default_threshold = default_threshold
        self._last_seen: Dict[str, float] = {}

    def threshold_for(self, category: str) -> float:
        return self.thresholds.get(category, self.default_threshold)

    def offer(self, alert: Alert) -> bool:
        """Process one alert; ``True`` iff it survives."""
        t, category = alert.timestamp, alert.category
        last = self._last_seen.get(category)
        self._last_seen[category] = t
        if last is not None and t - last < self.threshold_for(category):
            return False
        return True

    def filter(self, alerts: Iterable[Alert]) -> Iterator[Alert]:
        """Lazily filter a time-sorted stream."""
        for alert in alerts:
            if self.offer(alert):
                yield alert


def _log_histogram(
    gaps: Sequence[float],
    bins_per_decade: int = 4,
    min_gap: float = 1e-6,
) -> List[List[float]]:
    """Dense histogram of log10(gap) as [bin_left_log10, count] rows.

    Dense matters: the valley between two modes is made of *empty* bins,
    and a sparse histogram would hide it from the antimode search.
    """
    counts: Dict[int, int] = {}
    for gap in gaps:
        key = math.floor(math.log10(max(gap, min_gap)) * bins_per_decade)
        counts[key] = counts.get(key, 0) + 1
    if not counts:
        return []
    lo, hi = min(counts), max(counts)
    return [
        [key / bins_per_decade, counts.get(key, 0)]
        for key in range(lo, hi + 1)
    ]


def suggest_thresholds(
    alerts: Iterable[Alert],
    default_threshold: float = DEFAULT_THRESHOLD,
    min_samples: int = 20,
    max_threshold: float = 3600.0,
    bins_per_decade: int = 4,
) -> Dict[str, float]:
    """Choose a per-category threshold from the gap structure of the data.

    For each category with at least ``min_samples`` interarrival gaps, build
    a log-spaced histogram of gaps and place the threshold at the deepest
    valley (antimode) between the first and last local maxima — the split
    between the "redundant reports of one failure" mode and the
    "independent failures" mode that Figure 6(a) shows.  Unimodal
    categories (no interior valley) keep ``default_threshold``.

    The returned mapping feeds :class:`PerCategoryFilter`.  Thresholds are
    clamped to ``max_threshold`` so a bimodal category with a very distant
    second mode cannot swallow whole days.
    """
    gaps_by_category: Dict[str, List[float]] = {}
    last_time: Dict[str, float] = {}
    for alert in alerts:
        previous = last_time.get(alert.category)
        last_time[alert.category] = alert.timestamp
        if previous is not None and alert.timestamp >= previous:
            gaps_by_category.setdefault(alert.category, []).append(
                alert.timestamp - previous
            )

    suggestions: Dict[str, float] = {}
    for category, gaps in gaps_by_category.items():
        if len(gaps) < min_samples:
            continue
        hist = _log_histogram(gaps, bins_per_decade=bins_per_decade)
        if len(hist) < 3:
            continue
        counts = [row[1] for row in hist]
        # A peak must be substantial (>= 5% of mass) so histogram noise in
        # a unimodal category cannot masquerade as a second mode.
        min_peak = max(3, int(0.05 * sum(counts)))
        peak_indices = [
            i
            for i in range(len(counts))
            if (i == 0 or counts[i] >= counts[i - 1])
            and (i == len(counts) - 1 or counts[i] >= counts[i + 1])
            and counts[i] >= min_peak
        ]
        if len(peak_indices) < 2:
            continue
        lo, hi = peak_indices[0], peak_indices[-1]
        if hi - lo < 2:
            continue
        valley = min(range(lo + 1, hi), key=lambda i: counts[i])
        # The valley must be a genuine dip, not a plateau between bumps.
        if counts[valley] > 0.5 * min(counts[lo], counts[hi]):
            continue
        threshold = 10 ** (hist[valley][0] + 0.5 / bins_per_decade)
        suggestions[category] = min(max_threshold, max(threshold, 1e-3))
    return suggestions

"""Expert alert rules for Liberty (6 categories, paper Table 4).

Liberty is the smallest machine in the study (512 processors) and logged by
far the fewest alerts (2452).  Most of them trace to a single PBS software
bug: "during the first quarter of 2006, Liberty saw 2231 job-fatal alerts
... the MPI rank 0 mom died.  Jobs afflicted by this bug could not complete
and were eventually killed, but not before generating the task_check
message up to 74 times" (Section 3.3.1) — an estimated 1336 jobs killed.
The ``GM_PAR``/``GM_LANAI`` pair is the paper's example of correlated alerts
relegated to different categories (Figure 3).  Liberty syslogs record no
severity.
"""

from __future__ import annotations

from ..categories import AlertType, CategoryDef, Ruleset
from .common import formatted, ip_port, job_id, rand_int

_H = AlertType.HARDWARE
_S = AlertType.SOFTWARE


def _cat(name, alert_type, pattern, facility, example, body_factory=None):
    return CategoryDef(
        name=name, system="liberty", alert_type=alert_type, pattern=pattern,
        facility=facility, severity=None, example=example,
        body_factory=body_factory,
    )


CATEGORIES = (
    _cat("PBS_CHK", _S, r"task_check, cannot tm_reply", "pbs_mom",
         "task_check, cannot tm_reply to 27342.ladmin2 task 1",
         formatted("task_check, cannot tm_reply to {job} task 1",
                   job=job_id)),
    _cat("PBS_BFD", _S, r"Bad file descriptor \(9\) in tm_request", "pbs_mom",
         "Bad file descriptor (9) in tm_request, job 27342.ladmin2 "
         "not running",
         formatted("Bad file descriptor (9) in tm_request, job {job} "
                   "not running", job=job_id)),
    _cat("PBS_CON", _S, r"Connection refused \(111\) in open_demux", "pbs_mom",
         "Connection refused (111) in open_demux, open_demux: connect "
         "10.1.0.42:42769",
         formatted("Connection refused (111) in open_demux, open_demux: "
                   "connect {ipp}", ipp=ip_port)),
    _cat("GM_PAR", _H, r"gm_parity\.c.*parity_int", "kernel",
         "GM: LANAI[0]: PANIC: /usr/src/gm/gm_parity.c:115:parity_int():"
         "firmware",
         formatted("GM: LANAI[0]: PANIC: /usr/src/gm/gm_parity.c:{line}:"
                   "parity_int():firmware",
                   line=lambda rng: rand_int(rng, 100, 999))),
    _cat("GM_LANAI", _S, r"LANai is not running", "kernel",
         "GM: LANai is not running. Allowing port=0 open for debugging"),
    _cat("GM_MAP", _S, r"gm_mapper.*assertion failed", "gm_mapper",
         "assertion failed. /usr/src/gm/mi.c:541 (r == GM_SUCCESS)",
         formatted("assertion failed. /usr/src/gm/mi.c:{line} "
                   "(r == GM_SUCCESS)",
                   line=lambda rng: rand_int(rng, 100, 999))),
)

RULESET = Ruleset(system="liberty", categories=CATEGORIES)

"""Expert alert rules for Red Storm (12 categories, paper Table 4).

Red Storm's categories split across its three logging paths (paper,
Section 3.1): DDN disk-controller messages (``DMT_*`` codes, syslog with
severity), Lustre/kernel messages from Linux nodes (syslog with severity),
and RAS events over TCP to the SMW (``ec_*`` event codes, *no severity*).

Severity calibration follows Table 6: the CRIT alerts are almost exactly
the ``BUS_PAR`` disk-failure storm; Lustre errors arrive as ERR; watchdog
messages as WARNING; and the remaining DDN codes as INFO — which is why the
paper concludes "syslog severity is of dubious value as a failure
indicator".
"""

from __future__ import annotations

from ...logmodel.record import Channel
from ..categories import AlertType, CategoryDef, Ruleset
from .common import formatted, hex_word, pick, rand_int

_H = AlertType.HARDWARE
_I = AlertType.INDETERMINATE


def _ddn(name, pattern, severity, example, body_factory=None):
    """A DDN controller message: syslog path, body led by a DMT_* code."""
    return CategoryDef(
        name=name, system="redstorm", alert_type=_H, pattern=pattern,
        facility="", severity=severity, channel=Channel.DDN,
        example=example, body_factory=body_factory,
    )


def _lustre(name, pattern, severity, example, body_factory=None):
    """A Lustre/kernel message from a Linux node: syslog path."""
    return CategoryDef(
        name=name, system="redstorm", alert_type=_I, pattern=pattern,
        facility="kernel", severity=severity, channel=Channel.SYSLOG_UDP,
        example=example, body_factory=body_factory,
    )


def _ras(name, event, pattern, example, body_factory=None):
    """An SMW event over the RAS TCP path: no severity analog."""
    return CategoryDef(
        name=name, system="redstorm", alert_type=_I, pattern=pattern,
        facility=event, severity=None, channel=Channel.RAS_TCP,
        example=example, body_factory=body_factory,
    )


CATEGORIES = (
    _ddn("BUS_PAR", r"bus parity error", "CRIT",
         "DMT_HINT Warning: Verify Host 2 bus parity error: 0200 Tier:5 LUN:4",
         formatted("DMT_HINT Warning: Verify Host {h} bus parity error: "
                   "{code} Tier:{tier} LUN:{lun}",
                   h=lambda rng: rand_int(rng, 1, 4),
                   code=lambda rng: hex_word(rng, 4),
                   tier=lambda rng: rand_int(rng, 1, 8),
                   lun=lambda rng: rand_int(rng, 0, 15))),
    _ras("HBEAT", "ec_heartbeat_stop", r"ec_heartbeat_stop",
         "warn node heartbeat_fault",
         formatted("warn node heartbeat_fault interval {n}",
                   n=lambda rng: rand_int(rng, 1, 9))),
    _lustre("PTL_EXP", r"LustreError: .* timeout \(sent at", "ERR",
            "LustreError: 6309:0:(events.c:55:request_out_callback()) @@@ "
            "type 4, status -5 timeout (sent at 1142717221, 300s ago)",
            formatted("LustreError: {pid}:0:(events.c:55:"
                      "request_out_callback()) @@@ type {t}, status -5 "
                      "timeout (sent at {sent}, 300s ago)",
                      pid=lambda rng: rand_int(rng, 100, 30000),
                      t=lambda rng: rand_int(rng, 1, 9),
                      sent=lambda rng: rand_int(rng, 1_142_000_000,
                                                1_152_000_000))),
    _ddn("ADDR_ERR", r"DMT_102 Address error", "INFO",
         "DMT_102 Address error LUN:0 command:28 address:f000000 length:1 "
         "Anonymous host",
         formatted("DMT_102 Address error LUN:{lun} command:{cmd} "
                   "address:{addr} length:{length} Anonymous host",
                   lun=lambda rng: rand_int(rng, 0, 15),
                   cmd=lambda rng: rand_int(rng, 10, 40),
                   addr=lambda rng: hex_word(rng, 7),
                   length=lambda rng: rand_int(rng, 1, 8))),
    _ddn("CMD_ABORT", r"DMT_310 Command Aborted", "INFO",
         "DMT_310 Command Aborted: SCSI cmd:2A LUN 2 DMT_310 Lane:3 T:299 "
         "a:f0120",
         formatted("DMT_310 Command Aborted: SCSI cmd:2A LUN {lun} DMT_310 "
                   "Lane:{lane} T:{t} a:{addr}",
                   lun=lambda rng: rand_int(rng, 0, 15),
                   lane=lambda rng: rand_int(rng, 0, 7),
                   t=lambda rng: rand_int(rng, 1, 600),
                   addr=lambda rng: hex_word(rng, 5))),
    _lustre("PTL_ERR", r"LustreError: .* type ==", "ERR",
            "LustreError: 12345:0:(client.c:519:ptl_send_rpc()) @@@ "
            "type == PTL_RPC_MSG_REQUEST",
            formatted("LustreError: {pid}:0:(client.c:519:ptl_send_rpc()) "
                      "@@@ type == PTL_RPC_MSG_REQUEST",
                      pid=lambda rng: rand_int(rng, 100, 30000))),
    _ras("TOAST", "ec_console_log", r"PANIC_SP WE ARE TOASTED!",
         "PANIC_SP WE ARE TOASTED!"),
    _lustre("EW", r"Expired watchdog for pid", "WARNING",
            "Lustre: 4105:0:(watchdog.c:312:lcw_update_time()) Expired "
            "watchdog for pid 4105 disabled after 299.9885s",
            formatted("Lustre: {pid}:0:(watchdog.c:312:lcw_update_time()) "
                      "Expired watchdog for pid {pid} disabled after "
                      "{s}.{frac}s",
                      pid=lambda rng: rand_int(rng, 100, 30000),
                      s=lambda rng: rand_int(rng, 200, 400),
                      frac=lambda rng: rand_int(rng, 0, 9999))),
    _lustre("WT", r"Watchdog triggered for pid", "WARNING",
            "Lustre: 4105:0:(watchdog.c:444:lcw_cb()) Watchdog triggered "
            "for pid 4105: it was inactive for 200000ms",
            formatted("Lustre: {pid}:0:(watchdog.c:444:lcw_cb()) Watchdog "
                      "triggered for pid {pid}: it was inactive for {ms}ms",
                      pid=lambda rng: rand_int(rng, 100, 30000),
                      ms=lambda rng: rand_int(rng, 100_000, 400_000))),
    _lustre("RBB", r"request buffers busy", "ERR",
            "LustreError: All mds cray_kern_nal request buffers busy "
            "(0us idle)",
            formatted("LustreError: All mds cray_kern_nal request buffers "
                      "busy ({n}us idle)",
                      n=lambda rng: rand_int(rng, 0, 99))),
    _ddn("DSK_FAIL", r"DMT_DINT Failing Disk", "ALERT",
         "DMT_DINT Failing Disk 2A",
         formatted("DMT_DINT Failing Disk {tier}{slot}",
                   tier=lambda rng: rand_int(rng, 1, 8),
                   slot=lambda rng: pick(rng, tuple("ABCDEF")))),
    _lustre("OST", r"Failure to commit OST transaction", "ERR",
            "LustreError: Failure to commit OST transaction (-5)?"),
)

RULESET = Ruleset(system="redstorm", categories=CATEGORIES)

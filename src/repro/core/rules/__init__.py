"""Per-system expert alert rulesets (77 categories across five machines).

The paper identified alerts "through a combination of regular expression
matching and manual intervention", using heuristics "supplied by the
administrators for the respective systems ... often in the form of regular
expressions amenable for consumption by the logsurfer utility"
(Section 3.2).  This package encodes one ruleset per machine:

* :data:`~repro.core.rules.bgl.RULESET` — 41 categories
* :data:`~repro.core.rules.thunderbird.RULESET` — 10 categories
* :data:`~repro.core.rules.redstorm.RULESET` — 12 categories
* :data:`~repro.core.rules.spirit.RULESET` — 8 categories
* :data:`~repro.core.rules.liberty.RULESET` — 6 categories
"""

from typing import Dict

from ..categories import Ruleset
from . import bgl, liberty, redstorm, spirit, thunderbird

RULESETS: Dict[str, Ruleset] = {
    "bgl": bgl.RULESET,
    "thunderbird": thunderbird.RULESET,
    "redstorm": redstorm.RULESET,
    "spirit": spirit.RULESET,
    "liberty": liberty.RULESET,
}

TOTAL_CATEGORIES = sum(len(rs) for rs in RULESETS.values())


def get_ruleset(system: str) -> Ruleset:
    """The expert ruleset for a system short name."""
    try:
        return RULESETS[system]
    except KeyError:
        valid = ", ".join(sorted(RULESETS))
        raise KeyError(f"no ruleset for {system!r}; valid: {valid}") from None


__all__ = ["RULESETS", "TOTAL_CATEGORIES", "get_ruleset", "Ruleset"]

"""Helpers shared by the per-system expert rulesets.

Body factories make generated logs realistic: the same category appears
with varying identifiers (addresses, PIDs, job ids, LUNs...), exactly the
kind of variation the administrators' regular expressions had to abstract
over (paper, Section 3.2).  Each factory takes a ``numpy.random.Generator``
and must produce text that the category's own pattern matches — a property
the test suite verifies for all 77 categories.
"""

from __future__ import annotations

from typing import Callable, Sequence

_HEX_DIGITS = "0123456789abcdef"


def hex_word(rng, width: int = 16) -> str:
    """A random lowercase hex string of ``width`` digits."""
    if rng is None:
        return "0" * width
    return "".join(_HEX_DIGITS[int(d)] for d in rng.integers(0, 16, size=width))


def rand_int(rng, lo: int, hi: int) -> int:
    """A random integer in ``[lo, hi]`` inclusive; ``lo`` when rng is None."""
    if rng is None:
        return lo
    return int(rng.integers(lo, hi + 1))


def pick(rng, options: Sequence[str]) -> str:
    """A random element of ``options``; the first when rng is None."""
    if rng is None:
        return options[0]
    return options[int(rng.integers(0, len(options)))]


def job_id(rng) -> str:
    """A PBS-style job identifier such as ``31415.ladmin2``."""
    return f"{rand_int(rng, 1000, 99999)}.admin"


def ip_port(rng) -> str:
    """A dotted-quad IP with port, as in PBS connection-refused messages."""
    return (
        f"10.{rand_int(rng, 0, 254)}.{rand_int(rng, 0, 254)}"
        f".{rand_int(rng, 1, 254)}:{rand_int(rng, 1024, 65535)}"
    )


def constant(body: str) -> Callable:
    """A body factory that always returns ``body``."""
    def factory(rng=None) -> str:
        return body

    return factory


def formatted(template: str, **field_factories) -> Callable:
    """A body factory filling ``template`` from per-field factories.

    Each keyword maps a template field name to a callable ``(rng) -> value``.

    >>> f = formatted("cmd {addr} failed", addr=lambda rng: hex_word(rng, 8))
    >>> f(None)
    'cmd 00000000 failed'
    """

    def factory(rng=None) -> str:
        values = {name: make(rng) for name, make in field_factories.items()}
        return template.format(**values)

    return factory

"""Expert alert rules for Blue Gene/L.

The paper identified 41 alert categories on BG/L (Table 2); Table 4 lists
the ten most common by name and aggregates the remaining 31 as
"I / 31 Others" (all Indeterminate, exemplified by "machine check
interrupt").  We reproduce all 41: the ten named categories with the
paper's example bodies, and 31 Indeterminate categories with names and
bodies consistent with the BG/L RAS facility taxonomy (KERNEL, APP,
LINKCARD, MONITOR, BGLMASTER).

Severity calibration follows Table 5: BG/L alerts are 348,398 FATAL plus
62 FAILURE — the FAILURE alerts are the ``MASNORM`` category, which is the
paper's operational-context poster child ("BGLMASTER FAILURE ciodb exited
normally with exit code 0", Section 3.2.1).
"""

from __future__ import annotations

from ...logmodel.record import Channel
from ..categories import AlertType, CategoryDef, Ruleset
from .common import formatted, hex_word, rand_int

_H = AlertType.HARDWARE
_S = AlertType.SOFTWARE
_I = AlertType.INDETERMINATE
_CH = Channel.JTAG_MAILBOX


def _kernel(name, alert_type, pattern, example, body_factory=None, severity="FATAL"):
    return CategoryDef(
        name=name, system="bgl", alert_type=alert_type, pattern=pattern,
        facility="KERNEL", severity=severity, channel=_CH, example=example,
        body_factory=body_factory,
    )


def _app(name, alert_type, pattern, example, body_factory=None):
    return CategoryDef(
        name=name, system="bgl", alert_type=alert_type, pattern=pattern,
        facility="APP", severity="FATAL", channel=_CH, example=example,
        body_factory=body_factory,
    )


def _facility(facility, name, pattern, example, body_factory=None, severity="FATAL"):
    return CategoryDef(
        name=name, system="bgl", alert_type=_I, pattern=pattern,
        facility=facility, severity=severity, channel=_CH, example=example,
        body_factory=body_factory,
    )


_ciod_stream = formatted(
    "ciod: Error reading message prefix after {msg} on CioStream socket to "
    "172.16.{b}.{c}:{port}",
    msg=lambda rng: "LOGIN_MESSAGE",
    b=lambda rng: rand_int(rng, 0, 127),
    c=lambda rng: rand_int(rng, 1, 254),
    port=lambda rng: rand_int(rng, 1024, 65535),
)

_ciod_load = formatted(
    "ciod: Error reading message prefix after LOAD_MESSAGE on CioStream socket to "
    "172.16.{b}.{c}:{port}",
    b=lambda rng: rand_int(rng, 0, 127),
    c=lambda rng: rand_int(rng, 1, 254),
    port=lambda rng: rand_int(rng, 1024, 65535),
)

#: The ten categories the paper's Table 4 names, in descending raw count.
NAMED_CATEGORIES = (
    _kernel("KERNDTLB", _H, r"data TLB error interrupt",
            "data TLB error interrupt"),
    _kernel("KERNSTOR", _H, r"data storage interrupt",
            "data storage interrupt"),
    _app("APPSEV", _S, r"Error reading message prefix after LOGIN_MESSAGE",
         "ciod: Error reading message prefix after LOGIN_MESSAGE on CioStream "
         "socket to 172.16.96.116:41752",
         _ciod_stream),
    _kernel("KERNMNTF", _S, r"Lustre mount FAILED",
            "Lustre mount FAILED : bglio11 : block_id : location",
            formatted("Lustre mount FAILED : bglio{n} : block_id : location",
                      n=lambda rng: rand_int(rng, 1, 64))),
    _kernel("KERNTERM", _S, r"rts: kernel terminated for reason",
            "rts: kernel terminated for reason 1004",
            formatted("rts: kernel terminated for reason {code}",
                      code=lambda rng: rand_int(rng, 1001, 1013))),
    _kernel("KERNREC", _S, r"Error receiving packet on tree network",
            "Error receiving packet on tree network, expecting type 57 "
            "instead of type 3 (softheader=0020 0x0a)",
            formatted("Error receiving packet on tree network, expecting type "
                      "{want} instead of type {got} (softheader={hdr})",
                      want=lambda rng: rand_int(rng, 1, 99),
                      got=lambda rng: rand_int(rng, 1, 99),
                      hdr=lambda rng: hex_word(rng, 8))),
    _app("APPREAD", _S, r"failed to read message prefix on control stream",
         "ciod: failed to read message prefix on control stream (CioStream "
         "socket to 172.16.96.116:33569)",
         formatted("ciod: failed to read message prefix on control stream "
                   "(CioStream socket to 172.16.{b}.{c}:{port})",
                   b=lambda rng: rand_int(rng, 0, 127),
                   c=lambda rng: rand_int(rng, 1, 254),
                   port=lambda rng: rand_int(rng, 1024, 65535))),
    _kernel("KERNRTSP", _S, r"rts panic! - stopping execution",
            "rts panic! - stopping execution"),
    _app("APPRES", _S, r"Error reading message prefix after LOAD_MESSAGE",
         "ciod: Error reading message prefix after LOAD_MESSAGE on CioStream "
         "socket to 172.16.96.116:41752",
         _ciod_load),
    _app("APPUNAV", _I, r"Error creating node map from file",
         "ciod: Error creating node map from file /p/gb1/user/nodemap "
         "(Permission denied)",
         formatted("ciod: Error creating node map from file /p/gb{n}/job/"
                   "nodemap (Permission denied)",
                   n=lambda rng: rand_int(rng, 1, 4))),
)

#: The 31 categories aggregated as "I / 31 Others" in Table 4.
OTHER_CATEGORIES = (
    _kernel("KERNMC", _I, r"machine check interrupt",
            "machine check interrupt"),
    _kernel("KERNPAN", _I, r"kernel panic", "kernel panic"),
    _kernel("KERNSOCK", _I, r"socket closed while reading tree packet",
            "socket closed while reading tree packet"),
    _kernel("KERNPOW", _I, r"power module .* status fault",
            "power module U07 status fault detected",
            formatted("power module U{n:02d} status fault detected",
                      n=lambda rng: rand_int(rng, 0, 15))),
    _kernel("KERNNOETH", _I, r"no ethernet link detected",
            "no ethernet link detected on emac0"),
    _kernel("KERNMICE", _I, r"microloader exception",
            "microloader exception: instruction address 0x01a3f2c4",
            formatted("microloader exception: instruction address 0x{addr}",
                      addr=lambda rng: hex_word(rng, 8))),
    _kernel("KERNCON", _I, r"console connection lost",
            "console connection lost to node card"),
    _kernel("KERNEXT", _I, r"external input interrupt",
            "external input interrupt (unit=0x0d bit=0x00): uncorrectable "
            "torus error"),
    _kernel("KERNFSHUT", _I, r"shutdown complete for reason",
            "shutdown complete for reason node card power error"),
    _kernel("KERNBIT", _I, r"double-hummer alignment exception",
            "double-hummer alignment exception at 0x00a1b2c3",
            formatted("double-hummer alignment exception at 0x{addr}",
                      addr=lambda rng: hex_word(rng, 8))),
    _kernel("KERNTORREC", _I, r"torus receiver .* input pipe error",
            "torus receiver z+ input pipe error: counter hit threshold"),
    _kernel("KERNTORSND", _I, r"torus sender .* retransmission error",
            "torus sender y- retransmission error threshold exceeded"),
    _kernel("KERNDDR", _I, r"ddr: excessive correctable errors",
            "ddr: excessive correctable errors on rank 2, replacing card "
            "advised",
            formatted("ddr: excessive correctable errors on rank {n}, "
                      "replacing card advised",
                      n=lambda rng: rand_int(rng, 0, 3))),
    _kernel("KERNPARITY", _I, r"instruction cache parity error",
            "instruction cache parity error corrected"),
    _kernel("KERNSRAM", _I, r"SRAM uncorrectable parity error",
            "SRAM uncorrectable parity error detected"),
    _facility("LINKCARD", "LINKDISC", r"link disconnected on port",
              "link disconnected on port 4",
              formatted("link disconnected on port {n}",
                        n=lambda rng: rand_int(rng, 0, 15))),
    _facility("LINKCARD", "LINKIAP", r"iap interrupt: asic link failure",
              "iap interrupt: asic link failure"),
    _facility("LINKCARD", "LINKPAP", r"pap failed: link training timeout",
              "pap failed: link training timeout"),
    _facility("MONITOR", "MONPOW", r"power deactivated",
              "power deactivated: node card voltage fault"),
    _facility("MONITOR", "MONFAN", r"fan module speed below threshold",
              "fan module speed below threshold: 2200 rpm",
              formatted("fan module speed below threshold: {n} rpm",
                        n=lambda rng: rand_int(rng, 1500, 2800))),
    _facility("MONITOR", "MONTEMP", r"temperature over limit",
              "temperature over limit on node card sensor 3",
              formatted("temperature over limit on node card sensor {n}",
                        n=lambda rng: rand_int(rng, 0, 7))),
    _facility("MONITOR", "MONNULL", r"no monitor data available",
              "no monitor data available for midplane"),
    _facility("BGLMASTER", "MASNORM", r"ciodb exited normally",
              "ciodb exited normally with exit code 0",
              severity="FAILURE"),
    _facility("BGLMASTER", "MASABNORM", r"idoproxydb exited abnormally",
              "idoproxydb exited abnormally with exit code 1",
              formatted("idoproxydb exited abnormally with exit code {n}",
                        n=lambda rng: rand_int(rng, 1, 255))),
    _app("APPBUSY", _I, r"Input/output daemon busy",
         "ciod: Input/output daemon busy: retrying LOAD_MESSAGE"),
    _app("APPCHILD", _I, r"child process exited with signal",
         "ciod: child process exited with signal 11",
         formatted("ciod: child process exited with signal {n}",
                   n=lambda rng: rand_int(rng, 1, 15))),
    _app("APPOUT", _I, r"failed to write output record to control stream",
         "ciod: failed to write output record to control stream"),
    _app("APPTO", _I, r"timeout waiting for reply from compute node",
         "ciod: timeout waiting for reply from compute node"),
    _kernel("KERNSERV", _I, r"service interrupt received",
            "service interrupt received from service network"),
    _kernel("KERNWAIT", _I, r"wait state entered",
            "wait state entered: rts delaying for resource"),
    _kernel("KERNRTSA", _I, r"rts assertion failed",
            "rts assertion failed: bglsys/rts.c:1881",
            formatted("rts assertion failed: bglsys/rts.c:{n}",
                      n=lambda rng: rand_int(rng, 100, 4999))),
)

#: Names of the 31 aggregated categories (the "I / 31 Others" row).
OTHER_NAMES = tuple(cat.name for cat in OTHER_CATEGORIES)

RULESET = Ruleset(system="bgl", categories=NAMED_CATEGORIES + OTHER_CATEGORIES)

"""Expert alert rules for Thunderbird (10 categories, paper Table 4).

Thunderbird's syslogs do not record a severity field (paper, Section 3.2),
so every category here has ``severity=None``.  The dominant category by far
is ``VAPI`` — "Local Catastrophic Errors" from the Infiniband stack whose
"exact nature ... is not well-understood by our experts" (Section 3.3.1);
3,229,194 of the machine's 3,248,239 alerts, 643,925 of them from a single
node.
"""

from __future__ import annotations

from ..categories import AlertType, CategoryDef, Ruleset
from .common import formatted, hex_word, pick, rand_int

_H = AlertType.HARDWARE
_S = AlertType.SOFTWARE
_I = AlertType.INDETERMINATE


def _cat(name, alert_type, pattern, facility, example, body_factory=None):
    return CategoryDef(
        name=name, system="thunderbird", alert_type=alert_type,
        pattern=pattern, facility=facility, severity=None,
        example=example, body_factory=body_factory,
    )


CATEGORIES = (
    _cat("VAPI", _I, r"Local Catastrophic Error", "kernel",
         "[KERNEL_IB][ib_sm_events.c:1746]VAPI_open_hca failed "
         "(Fatal error (Local Catastrophic Error))",
         formatted("[KERNEL_IB][ib_sm_events.c:{line}]{fn} failed "
                   "(Fatal error (Local Catastrophic Error))",
                   line=lambda rng: rand_int(rng, 100, 4999),
                   fn=lambda rng: pick(rng, ("VAPI_open_hca", "VAPI_query_hca_cap",
                                             "MadBufferGet", "mad_send")))),
    _cat("PBS_CON", _S, r"Connection refused \(111\) in open_demux", "pbs_mom",
         "Connection refused (111) in open_demux, open_demux: cannot connect "
         "to 10.2.1.16:42769",
         formatted("Connection refused (111) in open_demux, open_demux: "
                   "cannot connect to 10.{b}.{c}.{d}:{port}",
                   b=lambda rng: rand_int(rng, 0, 16),
                   c=lambda rng: rand_int(rng, 0, 254),
                   d=lambda rng: rand_int(rng, 1, 254),
                   port=lambda rng: rand_int(rng, 1024, 65535))),
    _cat("MPT", _I, r"mptscsih: ioc0: attempting task abort", "kernel",
         "mptscsih: ioc0: attempting task abort! (sc=00000101bddee480)",
         formatted("mptscsih: ioc0: attempting task abort! (sc={sc})",
                   sc=lambda rng: hex_word(rng, 16))),
    _cat("EXT_FS", _H, r"EXT3-fs error", "kernel",
         "EXT3-fs error (device sda5): ext3_journal_start_sb: "
         "Detected aborted journal",
         formatted("EXT3-fs error (device sda{n}): ext3_journal_start_sb: "
                   "Detected aborted journal",
                   n=lambda rng: rand_int(rng, 1, 8))),
    _cat("CPU", _S, r"Losing some ticks", "kernel",
         "Losing some ticks... checking if CPU frequency changed."),
    _cat("SCSI", _H, r"rejecting I/O to offline device", "kernel",
         "scsi0 (0:0): rejecting I/O to offline device",
         formatted("scsi{n} (0:0): rejecting I/O to offline device",
                   n=lambda rng: rand_int(rng, 0, 3))),
    _cat("ECC", _H, r"EventID: 1404 Memory device", "Server Administrator",
         "Instrumentation Service EventID: 1404 Memory device status is "
         "critical Memory device location: DIMM2_B",
         formatted("Instrumentation Service EventID: 1404 Memory device "
                   "status is critical Memory device location: DIMM{n}_{bank}",
                   n=lambda rng: rand_int(rng, 1, 4),
                   bank=lambda rng: pick(rng, ("A", "B")))),
    _cat("PBS_BFD", _S, r"Bad file descriptor \(9\) in tm_request", "pbs_mom",
         "Bad file descriptor (9) in tm_request, job 72617.tbird-admin1 "
         "not running",
         formatted("Bad file descriptor (9) in tm_request, job "
                   "{n}.tbird-admin1 not running",
                   n=lambda rng: rand_int(rng, 1000, 99999))),
    _cat("CHK_DSK", _H, r"Fault Status assert", "check-disks",
         "tn231:1131540302, Fault Status assert, power subsystem",
         formatted("tn{n}:{t}, Fault Status assert, power subsystem",
                   n=lambda rng: rand_int(rng, 1, 4512),
                   t=lambda rng: rand_int(rng, 1_100_000_000, 1_200_000_000))),
    _cat("NMI", _I, r"NMI received", "kernel",
         "Uhhuh. NMI received. Dazed and confused, but trying to continue"),
)

RULESET = Ruleset(system="thunderbird", categories=CATEGORIES)

"""Compiled-ruleset fast path: one alternation, dispatched by branch.

The per-record tagger historically ran a combined alternation as a
*reject* filter and, on a hit, re-scanned every rule in order to find the
winner (first-rule-wins, logsurfer semantics — an alternation alone
implements earliest-*position* match, a different priority rule).  This
module compiles a ruleset once into a form where the alternation itself
reports *which branch* matched, so the ordered re-scan shrinks from "all
rules" to "the rules ahead of the branch the regex engine already found":

* each rule becomes a named wrapper branch ``(?P<_cK>...)`` carrying its
  scoped inline flags (:func:`scoped_pattern`), so one ``search`` both
  rejects chaff and names a candidate rule;
* the candidate is the branch matching at the *leftmost position*; rules
  ``0..K-1`` are then tested individually — only they could outrank it
  under first-rule-wins — and the first hit (or the candidate) wins;
* an optional literal prefilter — one alternation of plain literals
  required by the rules (the cheap gate of the semi-supervised
  log-processing fast path; see PAPERS.md) — runs before the dispatch
  when every rule contributes a usable literal.

Rules whose pattern text could interfere with the combined compile
(named groups, backreferences, conditionals) drop the whole ruleset to a
fallback mode that is exactly the historical behavior: anonymous-group
alternation as a reject filter plus the full ordered scan.  All five
system rulesets compile in dispatch mode.

Compiled state is cached per process for the registered system rulesets
(:func:`compiled_ruleset`), which is what makes
:meth:`~repro.core.tagging.RulesetHandle.compiled` cheap to call from
worker initializers and batch paths alike.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Pattern, Sequence, Tuple

from ..categories import CategoryDef, Ruleset

#: Global inline-flag groups a pattern may open with, e.g. ``(?i)``.
_GLOBAL_FLAG_GROUP = re.compile(r"\(\?([aiLmsux]+)\)")

#: Flags expressible as scoped inline-flag letters (``(?i:...)``).
#: ``re.L`` needs a bytes pattern and ``re.U`` is the str default, so
#: neither can reach a str-pattern ruleset; both are dropped if present.
_FLAG_LETTERS = (
    (re.ASCII, "a"),
    (re.IGNORECASE, "i"),
    (re.MULTILINE, "m"),
    (re.DOTALL, "s"),
    (re.VERBOSE, "x"),
)

#: Pattern constructs that make combining rules into one alternation
#: unsafe: named groups collide with the ``_cK`` wrappers, and numeric or
#: named backreferences/conditionals break when group numbering shifts
#: inside the combined pattern.
_UNSAFE_CONSTRUCT = re.compile(r"\(\?P[<=]|\\[1-9]|\\g<|\(\?\(")

#: A literal shorter than this filters nothing worth the extra pass.
_MIN_LITERAL = 4


def _lift_global_flags(pattern: str, flags: int) -> Tuple[str, int]:
    """Strip leading ``(?i)``-style global flag groups into ``flags``."""
    while True:
        head = _GLOBAL_FLAG_GROUP.match(pattern)
        if head is None:
            return pattern, flags
        for flag, letter in _FLAG_LETTERS:
            if letter in head.group(1):
                flags |= flag
        pattern = pattern[head.end():]


def scoped_pattern(category: CategoryDef) -> str:
    """The category's pattern as a self-contained alternation branch.

    Joining raw patterns with ``|`` loses per-rule flags: ``(?i)`` inside
    a branch is a *global* flag (an error since Python 3.11, silently
    applied to every branch before that), and ``CategoryDef.flags`` never
    reached the combined regex at all.  Scoped inline-flag groups
    (``(?i:...)``) carry each rule's flags without leaking them to the
    other branches.
    """
    pattern, flags = _lift_global_flags(category.pattern, category.flags)
    letters = "".join(
        letter for flag, letter in _FLAG_LETTERS if flags & flag
    )
    if letters:
        return f"(?{letters}:{pattern})"
    return f"(?:{pattern})"


def required_literal(pattern: str, flags: int = 0) -> Optional[str]:
    """A plain substring every match of ``pattern`` must contain.

    Walks the parsed pattern's top-level concatenation: a maximal run of
    LITERAL nodes there is required in every match (each concatenation
    element must be consumed).  Returns the longest such run, or ``None``
    when the pattern yields nothing usable (pure alternation, too-short
    literals, unparsable text) — callers must treat ``None`` as "cannot
    prefilter", never as "matches nothing".
    """
    pattern, flags = _lift_global_flags(pattern, flags)
    try:
        parsed = re._parser.parse(pattern, flags & ~re.VERBOSE)
    except Exception:
        return None
    best: List[int] = []
    run: List[int] = []
    for op, arg in parsed:
        if str(op) == "LITERAL":
            run.append(arg)
        else:
            if len(run) > len(best):
                best = run
            run = []
    if len(run) > len(best):
        best = run
    if len(best) < _MIN_LITERAL:
        return None
    return "".join(map(chr, best))


class CompiledRuleset:
    """One ruleset compiled for batch tagging.

    :meth:`match_index` / :meth:`match_text` preserve first-rule-wins
    semantics exactly (the hypothesis differential suite in
    ``tests/core/test_compiled_rules.py`` pins this against the naive
    ordered scan for all five system rulesets).
    """

    def __init__(self, ruleset: Ruleset):
        self.ruleset = ruleset
        categories = tuple(ruleset)
        self.categories = categories
        self._ordered: Tuple[Tuple[Pattern[str], CategoryDef], ...] = tuple(
            (cat.compiled(), cat) for cat in categories
        )
        self.prefilter: Optional[Pattern[str]] = None
        self.dispatch: Optional[Pattern[str]] = None
        self.literal_gate: Optional[Pattern[str]] = None
        self._branch_of: Dict[int, int] = {}
        if not categories:
            return

        self.prefilter = re.compile(
            "|".join(scoped_pattern(cat) for cat in categories)
        )
        if any(_UNSAFE_CONSTRUCT.search(cat.pattern) for cat in categories):
            return  # fallback mode: prefilter + full ordered scan

        dispatch = re.compile("|".join(
            f"(?P<_c{k}>{scoped_pattern(cat)})"
            for k, cat in enumerate(categories)
        ))
        self.dispatch = dispatch
        self._branch_of = {
            dispatch.groupindex[f"_c{k}"]: k for k in range(len(categories))
        }

        literals = []
        for cat in categories:
            literal = required_literal(cat.pattern, cat.flags)
            if literal is None:
                return  # one rule without a cheap gate disables the gate
            branch = re.escape(literal)
            if (cat.flags | _lift_global_flags(cat.pattern, 0)[1]) & re.IGNORECASE:
                branch = f"(?i:{branch})"
            literals.append(branch)
        self.literal_gate = re.compile("|".join(literals))

    # -- matching ----------------------------------------------------------

    def match_index(self, text: str) -> Optional[int]:
        """Index of the first rule matching ``text``, or ``None``."""
        dispatch = self.dispatch
        if dispatch is None:
            return self._scan_index(text)
        gate = self.literal_gate
        if gate is not None and gate.search(text) is None:
            return None
        found = dispatch.search(text)
        if found is None:
            return None
        # The dispatch found the leftmost-position winner; under
        # first-rule-wins only the rules *ahead* of that branch can
        # outrank it, so test exactly those.
        candidate = self._branch_of.get(found.lastindex)
        if candidate is None:  # defensive: resolve by wrapper group scan
            for gid, k in self._branch_of.items():
                if found.group(gid) is not None:
                    candidate = k
                    break
            else:  # pragma: no cover - a branch always owns the match
                return self._scan_index(text)
        ordered = self._ordered
        for k in range(candidate):
            if ordered[k][0].search(text):
                return k
        return candidate

    def _scan_index(self, text: str) -> Optional[int]:
        """Fallback: historical prefilter + ordered scan."""
        if self.prefilter is None or self.prefilter.search(text) is None:
            return None
        for k, (pattern, _cat) in enumerate(self._ordered):
            if pattern.search(text):
                return k
        return None

    def match_text(self, text: str) -> Optional[CategoryDef]:
        """The first rule matching ``text``, or ``None``."""
        index = self.match_index(text)
        if index is None:
            return None
        return self.categories[index]

    def match_texts(self, texts: Sequence[str]) -> List[Tuple[int, CategoryDef]]:
        """``(position, category)`` for every matching text, in order.

        The strict batch form: a non-string element raises exactly as the
        per-record path would (``re`` rejects it), at the same position —
        everything before it has already been resolved.
        """
        hits: List[Tuple[int, CategoryDef]] = []
        match_index = self.match_index
        categories = self.categories
        dispatch = self.dispatch
        gate = self.literal_gate
        if dispatch is not None and gate is None:
            # Common shape (no literal gate): inline the reject test so
            # the ~no-alert majority costs one C call per text.
            search = dispatch.search
            for i, text in enumerate(texts):
                if search(text) is None:
                    continue
                hits.append((i, categories[match_index(text)]))
            return hits
        for i, text in enumerate(texts):
            index = match_index(text)
            if index is not None:
                hits.append((i, categories[index]))
        return hits


#: Per-process compiled cache for the *registered* system rulesets (the
#: only ones that cross process boundaries via RulesetHandle).  Ad-hoc
#: rulesets compile fresh per Tagger, as they always have.
_COMPILED_CACHE: Dict[str, CompiledRuleset] = {}


def compiled_ruleset(ruleset: Ruleset) -> CompiledRuleset:
    """The :class:`CompiledRuleset` for ``ruleset``, cached per process
    when the ruleset is a registered system ruleset."""
    from . import RULESETS

    cached = _COMPILED_CACHE.get(ruleset.system)
    if cached is not None and cached.ruleset is ruleset:
        return cached
    compiled = CompiledRuleset(ruleset)
    if RULESETS.get(ruleset.system) is ruleset:
        _COMPILED_CACHE[ruleset.system] = compiled
    return compiled


__all__ = [
    "CompiledRuleset",
    "compiled_ruleset",
    "required_literal",
    "scoped_pattern",
]

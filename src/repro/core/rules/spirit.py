"""Expert alert rules for Spirit/ICC2 (8 categories, paper Table 4).

Spirit produced the largest logs of the study "despite the system being the
second smallest ... due almost entirely to disk-related alert messages which
were repeated millions of times" (Section 3.3.1) — the ``EXT_CCISS`` and
``EXT_FS`` hardware categories, heavily concentrated on a handful of
problematic nodes (node ``sn373`` alone logged 89,632,571 such messages,
more than half of all Spirit alerts).  Spirit syslogs record no severity.
"""

from __future__ import annotations

from ..categories import AlertType, CategoryDef, Ruleset
from .common import formatted, hex_word, ip_port, job_id, rand_int

_H = AlertType.HARDWARE
_S = AlertType.SOFTWARE


def _cat(name, alert_type, pattern, facility, example, body_factory=None):
    return CategoryDef(
        name=name, system="spirit", alert_type=alert_type, pattern=pattern,
        facility=facility, severity=None, example=example,
        body_factory=body_factory,
    )


CATEGORIES = (
    _cat("EXT_CCISS", _H, r"has CHECK CONDITION", "kernel",
         "cciss: cmd 0000010000a60000 has CHECK CONDITION, sense key = 0x3",
         formatted("cciss: cmd {cmd} has CHECK CONDITION, sense key = 0x{k}",
                   cmd=lambda rng: hex_word(rng, 16),
                   k=lambda rng: rand_int(rng, 1, 6))),
    _cat("EXT_FS", _H, r"EXT3-fs error", "kernel",
         "EXT3-fs error (device cciss/c0d0p5) in ext3_reserve_inode_write: "
         "IO failure",
         formatted("EXT3-fs error (device cciss/c0d0p{n}) in "
                   "ext3_reserve_inode_write: IO failure",
                   n=lambda rng: rand_int(rng, 1, 8))),
    _cat("PBS_CHK", _S, r"task_check, cannot tm_reply", "pbs_mom",
         "task_check, cannot tm_reply to 31415.admin task 1",
         formatted("task_check, cannot tm_reply to {job} task 1",
                   job=job_id)),
    _cat("GM_LANAI", _S, r"LANai is not running", "kernel",
         "GM: LANai is not running. Allowing port=0 open for debugging"),
    _cat("PBS_CON", _S, r"Connection refused \(111\) in open_demux", "pbs_mom",
         "Connection refused (111) in open_demux, open_demux: connect "
         "10.2.0.77:42769",
         formatted("Connection refused (111) in open_demux, open_demux: "
                   "connect {ipp}", ipp=ip_port)),
    _cat("GM_MAP", _S, r"gm_mapper.*assertion failed", "gm_mapper",
         "assertion failed. /usr/src/gm/lx_mapper.c:2112 (m->root)",
         formatted("assertion failed. /usr/src/gm/lx_mapper.c:{line} "
                   "(m->root)",
                   line=lambda rng: rand_int(rng, 100, 4999))),
    _cat("PBS_BFD", _S, r"Bad file descriptor \(9\) in tm_request", "pbs_mom",
         "Bad file descriptor (9) in tm_request, job 31415.admin not running",
         formatted("Bad file descriptor (9) in tm_request, job {job} "
                   "not running", job=job_id)),
    _cat("GM_PAR", _H, r"NIC ISR is reporting an SRAM parity error", "kernel",
         "GM: The NIC ISR is reporting an SRAM parity error."),
)

RULESET = Ruleset(system="spirit", categories=CATEGORIES)

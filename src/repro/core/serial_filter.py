"""The serial temporal-then-spatial filter baseline (Liang et al.).

Previous work on the BG/L prototype and production logs [Liang et al.,
DSN'05 and DSN'06] applied two filters *serially* (paper, Section 3.3.2):

1. **Temporal filter** — per source: "coalesces alerts within T seconds of
   each other on a given source into a single alert.  For example, if a
   node reports a particular alert every T seconds for a week, the temporal
   filter keeps only the first."  Redundant alerts refresh the per-source
   clock, so a long chain collapses to its head.
2. **Spatial filter** — across sources, over the temporal filter's output:
   "removes an alert if some other source had previously reported that
   alert within T seconds."

The paper's critique, which this implementation lets you measure directly:
"serial filtering fails to remove alerts that share a root cause ... the
problem arises when the temporal filter removes messages that the spatial
filter would have used as cues that the failure had already been reported
by another source."  The simultaneous filter
(:mod:`repro.core.filtering`) removes those extra duplicates, and being one
pass instead of two it also runs faster (~16 % on the Spirit logs).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from .categories import Alert
from .filtering import DEFAULT_THRESHOLD, log_filter


def temporal_filter(
    alerts: Iterable[Alert],
    threshold: float = DEFAULT_THRESHOLD,
) -> Iterator[Alert]:
    """Per-source temporal coalescing (first stage of the serial pipeline).

    An alert is redundant if the *same source* reported the *same category*
    within ``threshold`` seconds; redundant alerts refresh the clock
    (chain suppression).  Input must be sorted by non-decreasing time.
    """
    last_seen: Dict[Tuple[str, str], float] = {}
    for alert in alerts:
        key = (alert.source, alert.category)
        last = last_seen.get(key)
        last_seen[key] = alert.timestamp
        if last is not None and alert.timestamp - last < threshold:
            continue
        yield alert


def spatial_filter(
    alerts: Iterable[Alert],
    threshold: float = DEFAULT_THRESHOLD,
) -> Iterator[Alert]:
    """Cross-source spatial coalescing (second stage of the serial pipeline).

    An alert is redundant if some *other* source reported the same category
    within ``threshold`` seconds.  Same-source repeats are the temporal
    filter's job and are deliberately not removed here.  Input must be
    sorted by non-decreasing time.
    """
    last_by_category: Dict[str, Tuple[float, str]] = {}
    for alert in alerts:
        previous = last_by_category.get(alert.category)
        last_by_category[alert.category] = (alert.timestamp, alert.source)
        if previous is not None:
            prev_time, prev_source = previous
            if (
                prev_source != alert.source
                and alert.timestamp - prev_time < threshold
            ):
                continue
        yield alert


def serial_filter(
    alerts: Iterable[Alert],
    threshold: float = DEFAULT_THRESHOLD,
) -> Iterator[Alert]:
    """The full serial pipeline: temporal filter, then spatial filter."""
    return spatial_filter(temporal_filter(alerts, threshold), threshold)


def serial_filter_list(
    alerts: Iterable[Alert],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Alert]:
    """Eager variant of :func:`serial_filter`."""
    return list(serial_filter(alerts, threshold))


def compare_filters(
    alerts: List[Alert],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Run both algorithms on the same stream and diff their outputs.

    Returns a dict with the surviving alert lists and the two asymmetric
    differences, keyed:

    * ``"simultaneous"`` / ``"serial"`` — the survivor lists;
    * ``"removed_only_by_simultaneous"`` — alerts the serial pipeline keeps
      but Algorithm 3.1 removes.  Per the paper these "tend to indicate
      failures in shared resources that were previously noticed by another
      node" — mostly extra false positives, occasionally a coincident
      independent failure (a lost true positive);
    * ``"removed_only_by_serial"`` — alerts Algorithm 3.1 keeps but the
      serial pipeline removes.  On a time-sorted stream this is provably
      empty (the simultaneous suppression condition is strictly broader at
      every step — see the containment property test), so a non-empty list
      here flags an unsorted input.
    """
    simultaneous = list(log_filter(alerts, threshold))
    serial = serial_filter_list(alerts, threshold)
    sim_ids = {id(a) for a in simultaneous}
    ser_ids = {id(a) for a in serial}
    return {
        "simultaneous": simultaneous,
        "serial": serial,
        "removed_only_by_simultaneous": [a for a in serial if id(a) not in sim_ids],
        "removed_only_by_serial": [a for a in simultaneous if id(a) not in ser_ids],
    }

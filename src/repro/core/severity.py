"""Severity-field alert tagging (the baseline the paper argues against).

Previous BG/L studies "identified alerts according to the *severity* field
of messages" (paper, Sections 2 and 3.2).  The paper shows this is
unreliable: on BG/L, tagging every FATAL or FAILURE message as an alert
yields 0 % false negatives but a 59.34 % false-positive rate (Table 5); on
Red Storm, CRIT is dominated by a single disk-failure class and "except
for this failure case, these data suggest that syslog severity is not a
reliable failure indicator" (Table 6).  Three of the five machines
(Thunderbird, Spirit, Liberty) do not even record severity.

This module implements the baseline so its error rates can be measured
against the expert tags — the comparison behind Tables 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Optional

from ..logmodel.record import LogRecord, RasSeverity, SyslogSeverity

#: The tagging rule evaluated in the paper's Table 5 discussion.
BGL_ALERT_SEVERITIES: FrozenSet[str] = frozenset({"FATAL", "FAILURE"})


@dataclass(frozen=True)
class SeverityTaggerConfig:
    """Which severity labels count as alerts for a severity-based tagger."""

    alert_labels: FrozenSet[str]

    @classmethod
    def bgl_fatal_failure(cls) -> "SeverityTaggerConfig":
        """The Table 5 rule: severity in {FATAL, FAILURE} => alert."""
        return cls(alert_labels=BGL_ALERT_SEVERITIES)

    @classmethod
    def syslog_at_least(cls, worst_allowed: SyslogSeverity) -> "SeverityTaggerConfig":
        """All syslog severities at least as severe as ``worst_allowed``.

        Severity enums order most-severe-first, so "at least as severe"
        means a numerically smaller-or-equal value.
        """
        labels = frozenset(
            level.name for level in SyslogSeverity if level <= worst_allowed
        )
        return cls(alert_labels=labels)

    @classmethod
    def ras_at_least(cls, worst_allowed: RasSeverity) -> "SeverityTaggerConfig":
        """All RAS severities at least as severe as ``worst_allowed``."""
        labels = frozenset(
            level.name for level in RasSeverity if level <= worst_allowed
        )
        return cls(alert_labels=labels)


class SeverityTagger:
    """Tags a record as an alert iff its severity label is in the config.

    Records without a severity field are never tagged — which is the
    baseline's fundamental weakness on the three machines that do not
    record one.
    """

    def __init__(self, config: Optional[SeverityTaggerConfig] = None):
        self.config = config or SeverityTaggerConfig.bgl_fatal_failure()

    def is_alert(self, record: LogRecord) -> bool:
        return record.severity is not None and record.severity in self.config.alert_labels

    def tag_stream(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Lazily yield the records this baseline would call alerts."""
        for record in records:
            if self.is_alert(record):
                yield record

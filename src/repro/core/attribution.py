"""Failure-report construction: the "Attribute Root Causes" workflow.

Section 5: "We want to respond to failures effectively, which requires
knowing what failed and why ...  Redundant and asymmetric alert reporting
necessitates filtering; we advise that future work investigate filters
that are aware of correlations among messages and characteristics of
different failure classes."

A filtered alert tells the operator *that* something happened; this module
reconstructs *what*: it clusters the raw alert stream into per-failure
reports that pull together everything the filter would have discarded —
every category involved (cascades cross categories, Figure 3/4), every
source involved (shared-resource failures cross nodes), the time span, and
a root-cause candidate ordered by the heuristic the paper's typing
implies: the earliest *hardware*-typed alert in a cascade is the most
plausible origin, software alerts downstream of it are symptoms.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .categories import Alert, AlertType
from .tupling import AlertTuple, tuple_alerts


@dataclass(frozen=True)
class FailureReport:
    """One reconstructed failure: everything its alert cluster reveals."""

    start: float
    end: float
    alert_count: int
    categories: Tuple[Tuple[str, int], ...]   # (category, count), ordered
    sources: Tuple[Tuple[str, int], ...]      # (source, count), ordered
    representative: Alert
    root_cause_candidate: Alert
    correlated_group: Optional[FrozenSet[str]] = None

    @property
    def span(self) -> float:
        return self.end - self.start

    @property
    def is_cascade(self) -> bool:
        """More than one category involved — a cascading failure."""
        return len(self.categories) > 1

    @property
    def is_shared_resource(self) -> bool:
        """More than one source involved — the spatial signature of a
        shared-resource failure (network, filesystem, scheduler)."""
        return len(self.sources) > 1

    def headline(self) -> str:
        """One console line for the operator."""
        cause = self.root_cause_candidate
        shape = []
        if self.is_cascade:
            shape.append(f"cascade of {len(self.categories)} categories")
        if self.is_shared_resource:
            shape.append(f"{len(self.sources)} sources")
        detail = f" ({', '.join(shape)})" if shape else ""
        return (
            f"{cause.category} on {cause.source}: {self.alert_count} alerts "
            f"over {self.span:.0f}s{detail}"
        )


def _root_cause(alerts: Sequence[Alert]) -> Alert:
    """The earliest hardware alert if any, else the earliest alert.

    Alert types are "based on each administrator's best understanding ...
    and may not necessarily be root cause" (Section 3.2) — hence
    *candidate*: hardware preceding software in a cluster is evidence, not
    proof.
    """
    for alert in alerts:
        if alert.alert_type is AlertType.HARDWARE:
            return alert
    return alerts[0]


def _group_for(
    categories: Iterable[str],
    groups: Sequence[FrozenSet[str]],
) -> Optional[FrozenSet[str]]:
    present = set(categories)
    for group in groups:
        if len(present & group) >= 2:
            return group
    return None


def report_from_tuple(
    cluster: AlertTuple,
    groups: Sequence[FrozenSet[str]] = (),
) -> FailureReport:
    """Summarize one alert cluster into a failure report."""
    categories = Counter(a.category for a in cluster.alerts)
    sources = Counter(a.source for a in cluster.alerts)
    return FailureReport(
        start=cluster.start,
        end=cluster.end,
        alert_count=cluster.size,
        categories=tuple(categories.most_common()),
        sources=tuple(sources.most_common()),
        representative=cluster.representative(),
        root_cause_candidate=_root_cause(cluster.alerts),
        correlated_group=_group_for(categories, groups),
    )


def build_failure_reports(
    raw_alerts: Iterable[Alert],
    window: float = 60.0,
    groups: Sequence[FrozenSet[str]] = (),
    min_alerts: int = 1,
) -> List[FailureReport]:
    """Cluster a time-sorted raw alert stream into failure reports.

    ``window`` is the coalescence gap (larger than the 5 s filter
    threshold: attribution wants the whole episode, not the first line);
    ``groups`` are learned correlated-category groups used to annotate
    reports whose cascade matches a known alias set.
    """
    reports = [
        report_from_tuple(cluster, groups)
        for cluster in tuple_alerts(raw_alerts, window=window)
        if cluster.size >= min_alerts
    ]
    return reports


def attribution_summary(reports: Sequence[FailureReport]) -> Dict[str, float]:
    """Aggregate attribution statistics over a report set."""
    if not reports:
        return {
            "reports": 0, "cascades": 0, "shared_resource": 0,
            "cascade_fraction": 0.0, "mean_alerts_per_failure": 0.0,
        }
    cascades = sum(1 for r in reports if r.is_cascade)
    shared = sum(1 for r in reports if r.is_shared_resource)
    return {
        "reports": len(reports),
        "cascades": cascades,
        "shared_resource": shared,
        "cascade_fraction": cascades / len(reports),
        "mean_alerts_per_failure": (
            sum(r.alert_count for r in reports) / len(reports)
        ),
    }

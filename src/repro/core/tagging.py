"""The alert tagger: applies expert rules to log records.

This reproduces the paper's alert-identification process (Section 3.2):
regular-expression rules, one per category, applied to each message; the
first matching rule tags the message as an alert of that rule's category.
Like ``logsurfer``, rules are ordered and first-match wins.

The tagger is a single pass and never raises on corrupted input — the
paper's Section 3.2.1 lists corruption among the challenges an automated
scheme must survive.  Corrupted records can still be tagged when enough of
the body remains for a pattern to match (a truncated VAPI line that kept
its "Local Catastrophic Error" core is still a VAPI alert), which mirrors
the manual process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Pattern, Sequence, Tuple

from ..logmodel.record import LogRecord
from .categories import Alert, CategoryDef, Ruleset
from .rules.compiled import CompiledRuleset, compiled_ruleset, scoped_pattern

__all__ = [
    "BatchOutcome",
    "RulesetHandle",
    "TagCount",
    "Tagger",
    "count_by_category",
    "count_by_type",
    "observed_categories",
    "scoped_pattern",
]


class Tagger:
    """A compiled expert ruleset, applied record-by-record.

    Parameters
    ----------
    ruleset:
        The ordered rules for one system.

    Notes
    -----
    Compilation happens once here (cached per process for registered
    system rulesets).  :meth:`tag` is the hot path: almost every record
    in a real log matches *no* rule (Liberty: 2,452 alerts in 265 M
    messages), so matching runs through the
    :class:`~repro.core.rules.compiled.CompiledRuleset` — a single
    branch-dispatched alternation (behind a literal prefilter where the
    rules allow one) whose hit names a candidate rule, after which only
    the rules *ahead* of the candidate are re-tested, preserving
    logsurfer's first-rule-wins semantics exactly (an alternation alone
    would implement earliest-*position* match, a different priority
    rule).
    """

    def __init__(self, ruleset: Ruleset):
        self.ruleset = ruleset
        self._fast: CompiledRuleset = compiled_ruleset(ruleset)
        #: The per-rule (pattern, category) scan the fast path shortcuts;
        #: kept because the equivalence tests (and the fallback when
        #: ``_prefilter`` is cleared) run it directly.
        self._compiled: List[Tuple[Pattern[str], CategoryDef]] = list(
            self._fast._ordered
        )
        #: The combined reject-filter pattern.  Setting this to ``None``
        #: disables the fast path entirely (the differential tests use
        #: that to build a reference tagger); an empty ruleset has none.
        self._prefilter: Optional[Pattern[str]] = self._fast.prefilter

    def match_text(self, text: str) -> Optional[CategoryDef]:
        """The first rule matching ``text``, or ``None``."""
        if self._prefilter is None:
            for pattern, category in self._compiled:
                if pattern.search(text):
                    return category
            return None
        return self._fast.match_text(text)

    def match_texts(self, texts: Sequence[str]) -> List[Tuple[int, CategoryDef]]:
        """Batch form of :meth:`match_text`: ``(position, category)`` for
        every matching text, in order.  Strict: a non-string element
        raises exactly as the per-record path would."""
        if self._prefilter is None:
            compiled = self._compiled
            hits: List[Tuple[int, CategoryDef]] = []
            for i, text in enumerate(texts):
                for pattern, category in compiled:
                    if pattern.search(text):
                        hits.append((i, category))
                        break
            return hits
        return self._fast.match_texts(texts)

    def match(self, record: LogRecord) -> Optional[CategoryDef]:
        """The first rule matching this record, or ``None``."""
        return self.match_text(record.full_text())

    def tag(self, record: LogRecord) -> Optional[Alert]:
        """Tag one record; ``None`` when no rule matches (not an alert)."""
        category = self.match(record)
        if category is None:
            return None
        return Alert.from_record(record, category)

    def tag_stream(
        self, records: Iterable[LogRecord], dead_letters=None
    ) -> Iterator[Alert]:
        """Lazily tag a record stream, yielding only the alerts.

        ``dead_letters`` (a :class:`~repro.resilience.deadletter.
        DeadLetterQueue`) makes the pass total: a record that crashes the
        rules engine — a body that is not a string, a pathological field
        mix from corruption — is quarantined under ``"tagger-error"``
        instead of killing the stream.  Without a queue the exception
        propagates, as before.
        """
        for record in records:
            try:
                alert = self.tag(record)
            except Exception as exc:
                if dead_letters is None:
                    raise
                dead_letters.put(record, "tagger-error", repr(exc))
                continue
            if alert is not None:
                yield alert

    def tag_stream_with_stats(
        self, records: Iterable[LogRecord]
    ) -> Iterator[Alert]:
        """Like :meth:`tag_stream` but maintains :attr:`last_stats`.

        ``last_stats`` maps ``"messages"`` / ``"alerts"`` / ``"corrupted"``
        to running counts, letting callers report Table 2-style totals
        without a second pass.
        """
        stats = {"messages": 0, "alerts": 0, "corrupted": 0}
        self.last_stats: Dict[str, int] = stats
        for record in records:
            stats["messages"] += 1
            if record.corrupted:
                stats["corrupted"] += 1
            alert = self.tag(record)
            if alert is not None:
                stats["alerts"] += 1
                yield alert

    def tag_batch(self, records: Sequence[LogRecord]) -> "BatchOutcome":
        """Tag one batch, returning a compact, picklable outcome.

        This is the unit of work the parallel execution layer ships to
        worker processes (:mod:`repro.parallel`), and also the serial
        fallback a crashed batch is retried through, so serial and
        parallel tagging share one code path.  The outcome records only
        the *hits* (almost every record in a real log matches no rule)
        and the per-record failures, exactly mirroring
        :meth:`tag_stream`'s quarantine semantics.
        """
        hits: List[Tuple[int, Alert]] = []
        errors: List[Tuple[int, str]] = []
        for index, record in enumerate(records):
            try:
                alert = self.tag(record)
            except Exception as exc:
                errors.append((index, repr(exc)))
                continue
            if alert is not None:
                hits.append((index, alert))
        return BatchOutcome(size=len(records), hits=tuple(hits),
                            errors=tuple(errors))


@dataclass(frozen=True)
class BatchOutcome:
    """The result of tagging one record batch.

    ``hits`` holds ``(index_within_batch, alert)`` pairs for the records
    a rule matched; ``errors`` holds ``(index, repr(exception))`` for the
    records that crashed the rules engine.  Every other index in
    ``range(size)`` matched no rule.  All fields pickle cheaply — the
    whole point: a million-record batch of chatter returns as a few
    hundred bytes instead of a million ``None``\\ s.
    """

    size: int
    hits: Tuple[Tuple[int, Alert], ...] = ()
    errors: Tuple[Tuple[int, str], ...] = ()

    def hit_map(self) -> Dict[int, Alert]:
        return dict(self.hits)

    def error_map(self) -> Dict[int, str]:
        return dict(self.errors)


@dataclass(frozen=True)
class RulesetHandle:
    """A picklable reference to a named system's ruleset.

    Compiled patterns and the ``body_factory`` callables inside
    :class:`CategoryDef` do not pickle, so worker processes receive this
    handle instead and compile the ruleset once per process
    (:func:`resolve` / :func:`tagger`).  Only the registered system
    rulesets can travel this way; ad-hoc rulesets stay in-process.
    """

    system: str

    def resolve(self) -> Ruleset:
        from .rules import get_ruleset

        return get_ruleset(self.system)

    def tagger(self) -> Tagger:
        return Tagger(self.resolve())

    def compiled(self) -> CompiledRuleset:
        """The per-process cached compiled form of this system's ruleset
        (worker initializers and batch paths share one compile)."""
        return compiled_ruleset(self.resolve())


@dataclass(frozen=True)
class TagCount:
    """Per-category tally, one row of the paper's Table 4."""

    category: str
    alert_type: str
    count: int


def count_by_category(alerts: Iterable[Alert]) -> Dict[str, int]:
    """Tally alerts per category tag."""
    counts: Dict[str, int] = {}
    for alert in alerts:
        counts[alert.category] = counts.get(alert.category, 0) + 1
    return counts


def count_by_type(alerts: Iterable[Alert]) -> Dict[str, int]:
    """Tally alerts per type code (H/S/I), one margin of Table 3."""
    counts: Dict[str, int] = {}
    for alert in alerts:
        code = alert.alert_type.value
        counts[code] = counts.get(code, 0) + 1
    return counts


def observed_categories(alerts: Iterable[Alert]) -> int:
    """Number of distinct categories actually observed (Table 2 column).

    The paper notes "the categories column indicates the number of
    categories that were actually observed in each log" — a category with
    zero occurrences does not count.
    """
    return len({alert.category for alert in alerts})

"""The alert tagger: applies expert rules to log records.

This reproduces the paper's alert-identification process (Section 3.2):
regular-expression rules, one per category, applied to each message; the
first matching rule tags the message as an alert of that rule's category.
Like ``logsurfer``, rules are ordered and first-match wins.

The tagger is a single pass and never raises on corrupted input — the
paper's Section 3.2.1 lists corruption among the challenges an automated
scheme must survive.  Corrupted records can still be tagged when enough of
the body remains for a pattern to match (a truncated VAPI line that kept
its "Local Catastrophic Error" core is still a VAPI alert), which mirrors
the manual process.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Pattern, Sequence, Tuple

from ..logmodel.record import LogRecord
from .categories import Alert, CategoryDef, Ruleset

#: Global inline-flag groups a pattern may open with, e.g. ``(?i)``.
_GLOBAL_FLAG_GROUP = re.compile(r"\(\?([aiLmsux]+)\)")

#: Flags expressible as scoped inline-flag letters (``(?i:...)``).
#: ``re.L`` needs a bytes pattern and ``re.U`` is the str default, so
#: neither can reach a str-pattern ruleset; both are dropped if present.
_FLAG_LETTERS = (
    (re.ASCII, "a"),
    (re.IGNORECASE, "i"),
    (re.MULTILINE, "m"),
    (re.DOTALL, "s"),
    (re.VERBOSE, "x"),
)


def scoped_pattern(category: CategoryDef) -> str:
    """The category's pattern as a self-contained alternation branch.

    Joining raw patterns with ``|`` loses per-rule flags: ``(?i)`` inside
    a branch is a *global* flag (an error since Python 3.11, silently
    applied to every branch before that), and ``CategoryDef.flags`` never
    reached the combined regex at all.  Scoped inline-flag groups
    (``(?i:...)``) carry each rule's flags without leaking them to the
    other branches.
    """
    pattern = category.pattern
    flags = category.flags
    while True:  # lift leading global flag groups, e.g. "(?i)foo"
        head = _GLOBAL_FLAG_GROUP.match(pattern)
        if head is None:
            break
        for flag, letter in _FLAG_LETTERS:
            if letter in head.group(1):
                flags |= flag
        pattern = pattern[head.end():]
    letters = "".join(
        letter for flag, letter in _FLAG_LETTERS if flags & flag
    )
    if letters:
        return f"(?{letters}:{pattern})"
    return f"(?:{pattern})"


class Tagger:
    """A compiled expert ruleset, applied record-by-record.

    Parameters
    ----------
    ruleset:
        The ordered rules for one system.

    Notes
    -----
    Compilation happens once here.  :meth:`tag` is the hot path: almost
    every record in a real log matches *no* rule (Liberty: 2,452 alerts in
    265 M messages), so the tagger first runs one combined
    alternation regex as a reject filter, and only on a hit falls back to
    the ordered scan that preserves logsurfer's first-rule-wins semantics
    exactly (an alternation alone would implement earliest-*position*
    match, which is a different priority rule).
    """

    def __init__(self, ruleset: Ruleset):
        self.ruleset = ruleset
        self._compiled: List[Tuple[Pattern[str], CategoryDef]] = [
            (cat.compiled(), cat) for cat in ruleset
        ]
        self._prefilter: Optional[Pattern[str]] = None
        if self._compiled:
            self._prefilter = re.compile(
                "|".join(scoped_pattern(cat) for cat in ruleset)
            )

    def match(self, record: LogRecord) -> Optional[CategoryDef]:
        """The first rule matching this record, or ``None``."""
        text = record.full_text()
        if self._prefilter is not None and self._prefilter.search(text) is None:
            return None
        for pattern, category in self._compiled:
            if pattern.search(text):
                return category
        return None

    def tag(self, record: LogRecord) -> Optional[Alert]:
        """Tag one record; ``None`` when no rule matches (not an alert)."""
        category = self.match(record)
        if category is None:
            return None
        return Alert.from_record(record, category)

    def tag_stream(
        self, records: Iterable[LogRecord], dead_letters=None
    ) -> Iterator[Alert]:
        """Lazily tag a record stream, yielding only the alerts.

        ``dead_letters`` (a :class:`~repro.resilience.deadletter.
        DeadLetterQueue`) makes the pass total: a record that crashes the
        rules engine — a body that is not a string, a pathological field
        mix from corruption — is quarantined under ``"tagger-error"``
        instead of killing the stream.  Without a queue the exception
        propagates, as before.
        """
        for record in records:
            try:
                alert = self.tag(record)
            except Exception as exc:
                if dead_letters is None:
                    raise
                dead_letters.put(record, "tagger-error", repr(exc))
                continue
            if alert is not None:
                yield alert

    def tag_stream_with_stats(
        self, records: Iterable[LogRecord]
    ) -> Iterator[Alert]:
        """Like :meth:`tag_stream` but maintains :attr:`last_stats`.

        ``last_stats`` maps ``"messages"`` / ``"alerts"`` / ``"corrupted"``
        to running counts, letting callers report Table 2-style totals
        without a second pass.
        """
        stats = {"messages": 0, "alerts": 0, "corrupted": 0}
        self.last_stats: Dict[str, int] = stats
        for record in records:
            stats["messages"] += 1
            if record.corrupted:
                stats["corrupted"] += 1
            alert = self.tag(record)
            if alert is not None:
                stats["alerts"] += 1
                yield alert

    def tag_batch(self, records: Sequence[LogRecord]) -> "BatchOutcome":
        """Tag one batch, returning a compact, picklable outcome.

        This is the unit of work the parallel execution layer ships to
        worker processes (:mod:`repro.parallel`), and also the serial
        fallback a crashed batch is retried through, so serial and
        parallel tagging share one code path.  The outcome records only
        the *hits* (almost every record in a real log matches no rule)
        and the per-record failures, exactly mirroring
        :meth:`tag_stream`'s quarantine semantics.
        """
        hits: List[Tuple[int, Alert]] = []
        errors: List[Tuple[int, str]] = []
        for index, record in enumerate(records):
            try:
                alert = self.tag(record)
            except Exception as exc:
                errors.append((index, repr(exc)))
                continue
            if alert is not None:
                hits.append((index, alert))
        return BatchOutcome(size=len(records), hits=tuple(hits),
                            errors=tuple(errors))


@dataclass(frozen=True)
class BatchOutcome:
    """The result of tagging one record batch.

    ``hits`` holds ``(index_within_batch, alert)`` pairs for the records
    a rule matched; ``errors`` holds ``(index, repr(exception))`` for the
    records that crashed the rules engine.  Every other index in
    ``range(size)`` matched no rule.  All fields pickle cheaply — the
    whole point: a million-record batch of chatter returns as a few
    hundred bytes instead of a million ``None``\\ s.
    """

    size: int
    hits: Tuple[Tuple[int, Alert], ...] = ()
    errors: Tuple[Tuple[int, str], ...] = ()

    def hit_map(self) -> Dict[int, Alert]:
        return dict(self.hits)

    def error_map(self) -> Dict[int, str]:
        return dict(self.errors)


@dataclass(frozen=True)
class RulesetHandle:
    """A picklable reference to a named system's ruleset.

    Compiled patterns and the ``body_factory`` callables inside
    :class:`CategoryDef` do not pickle, so worker processes receive this
    handle instead and compile the ruleset once per process
    (:func:`resolve` / :func:`tagger`).  Only the registered system
    rulesets can travel this way; ad-hoc rulesets stay in-process.
    """

    system: str

    def resolve(self) -> Ruleset:
        from .rules import get_ruleset

        return get_ruleset(self.system)

    def tagger(self) -> Tagger:
        return Tagger(self.resolve())


@dataclass(frozen=True)
class TagCount:
    """Per-category tally, one row of the paper's Table 4."""

    category: str
    alert_type: str
    count: int


def count_by_category(alerts: Iterable[Alert]) -> Dict[str, int]:
    """Tally alerts per category tag."""
    counts: Dict[str, int] = {}
    for alert in alerts:
        counts[alert.category] = counts.get(alert.category, 0) + 1
    return counts


def count_by_type(alerts: Iterable[Alert]) -> Dict[str, int]:
    """Tally alerts per type code (H/S/I), one margin of Table 3."""
    counts: Dict[str, int] = {}
    for alert in alerts:
        code = alert.alert_type.value
        counts[code] = counts.get(code, 0) + 1
    return counts


def observed_categories(alerts: Iterable[Alert]) -> int:
    """Number of distinct categories actually observed (Table 2 column).

    The paper notes "the categories column indicates the number of
    categories that were actually observed in each log" — a category with
    zero occurrences does not count.
    """
    return len({alert.category for alert in alerts})

"""Online log monitoring: the paper's "Detect Faults" recommendation.

Section 5: "We want to identify failures quickly.  Most failures are
evidenced in logs by a signature ...  Accurate detection and
disambiguation requires external information like operational context."

:class:`LogMonitor` is the online composition of the library's pieces —
an incremental tagger, the streaming form of Algorithm 3.1, and an
optional operational-context timeline — that turns a live record stream
into *operator events*: deduplicated alerts with a context-aware
disposition, plus storm notifications when a category's burst rate
explodes (the situation where per-alert paging would melt a pager).

Unlike the batch pipeline, the monitor works record-at-a-time with O(1)
state per category, the shape a deployed RAS daemon needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Set

from ..logmodel.record import LogRecord
from ..simulation.opcontext import ContextTimeline
from .categories import Alert, Ruleset
from .filtering import DEFAULT_THRESHOLD, SpatioTemporalFilter
from .tagging import Tagger


class Disposition(enum.Enum):
    """What the operator should do with an event."""

    PAGE = "page"              # new failure in production: act now
    LOG_ONLY = "log-only"      # expected during downtime: record, no page
    STORM = "storm"            # burst notification, rate-limited
    REVIEW = "review"          # ambiguous without context: human judgment


@dataclass(frozen=True)
class OperatorEvent:
    """One deduplicated, disambiguated event for the operator console."""

    timestamp: float
    category: str
    source: str
    disposition: Disposition
    message: str
    suppressed_count: int = 0


@dataclass
class MonitorStats:
    records_seen: int = 0
    alerts_tagged: int = 0
    events_emitted: int = 0
    pages: int = 0
    storms: int = 0


class LogMonitor:
    """Online tagging + filtering + disambiguation over a record stream.

    Parameters
    ----------
    ruleset:
        Expert rules for the monitored machine.
    timeline:
        Operational context; without it, ambiguous categories emit
        ``REVIEW`` (the paper's "unknown") instead of a confident verdict.
    ambiguous_categories:
        Categories whose meaning depends on operational state (BG/L's
        MASNORM being the canonical case).
    threshold:
        Redundancy window for the embedded Algorithm 3.1 filter.
    storm_threshold:
        Suppressed-alert count within one filter window chain that
        escalates a category to a single ``STORM`` event.
    """

    def __init__(
        self,
        ruleset: Ruleset,
        timeline: Optional[ContextTimeline] = None,
        ambiguous_categories: Iterable[str] = (),
        threshold: float = DEFAULT_THRESHOLD,
        storm_threshold: int = 100,
    ):
        if storm_threshold < 1:
            raise ValueError("storm_threshold must be at least 1")
        self.tagger = Tagger(ruleset)
        self.timeline = timeline
        self.ambiguous = set(ambiguous_categories)
        self.filter = SpatioTemporalFilter(threshold)
        self.storm_threshold = storm_threshold
        self.stats = MonitorStats()
        self._suppressed: Dict[str, int] = {}
        self._storm_notified: Set[str] = set()

    def _disposition(self, alert: Alert) -> Disposition:
        if alert.category not in self.ambiguous:
            return Disposition.PAGE
        if self.timeline is None:
            return Disposition.REVIEW
        state = self.timeline.state_at(alert.timestamp)
        return Disposition.LOG_ONLY if state.is_downtime else Disposition.PAGE

    def observe(self, record: LogRecord) -> Optional[OperatorEvent]:
        """Process one record; an event when the operator should see it."""
        self.stats.records_seen += 1
        alert = self.tagger.tag(record)
        if alert is None:
            return None
        self.stats.alerts_tagged += 1

        if self.filter.offer(alert):
            # A fresh (non-redundant) failure: reset storm accounting.
            suppressed = self._suppressed.pop(alert.category, 0)
            self._storm_notified.discard(alert.category)
            disposition = self._disposition(alert)
            self.stats.events_emitted += 1
            if disposition is Disposition.PAGE:
                self.stats.pages += 1
            return OperatorEvent(
                timestamp=alert.timestamp,
                category=alert.category,
                source=alert.source,
                disposition=disposition,
                message=record.full_text(),
                suppressed_count=suppressed,
            )

        # Redundant: count toward a storm notification, emitted once per
        # chain when the threshold is crossed.
        count = self._suppressed.get(alert.category, 0) + 1
        self._suppressed[alert.category] = count
        if (
            count >= self.storm_threshold
            and alert.category not in self._storm_notified
        ):
            self._storm_notified.add(alert.category)
            self.stats.events_emitted += 1
            self.stats.storms += 1
            return OperatorEvent(
                timestamp=alert.timestamp,
                category=alert.category,
                source=alert.source,
                disposition=Disposition.STORM,
                message=(
                    f"{count} redundant {alert.category} alerts suppressed "
                    "and counting"
                ),
                suppressed_count=count,
            )
        return None

    def run(self, records: Iterable[LogRecord]) -> Iterator[OperatorEvent]:
        """Lazily monitor a stream, yielding operator events."""
        for record in records:
            event = self.observe(record)
            if event is not None:
                yield event

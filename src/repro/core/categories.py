"""Alert categories, types, and the tagged-alert model.

The paper (Section 3.2) defines an *alert* as "a message in the system logs
that merits the attention of the system administrator", identified by
expert-supplied rules.  Every alert carries:

* a **category** — "two alerts are in the same category if they were tagged
  by the same expert rule" (Section 3.3); the paper observes 77 categories
  across the five systems (Table 4 lists the most common);
* a **type** — Hardware, Software, or Indeterminate, "based on each
  administrator's best understanding of the alert, and may not necessarily
  be root cause" (Section 3.2, Table 3).

This module defines the shared vocabulary; the per-system expert rules live
in :mod:`repro.core.rules`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Callable, Optional, Pattern, Tuple

from ..logmodel.record import Channel, LogRecord


class AlertType(enum.Enum):
    """Ostensible subsystem of origin (paper, Section 3.2).

    ``INDETERMINATE`` alerts "can originate from both hardware and
    software, or have unknown cause" (Table 4 caption).
    """

    HARDWARE = "H"
    SOFTWARE = "S"
    INDETERMINATE = "I"

    @classmethod
    def from_code(cls, code: str) -> "AlertType":
        """Parse the one-letter code used in the paper's tables."""
        for member in cls:
            if member.value == code:
                return member
        raise ValueError(f"unknown alert type code: {code!r}")


BodyFactory = Callable[..., str]


@dataclass(frozen=True)
class CategoryDef:
    """One expert rule: the category it defines and how to recognize it.

    The same definition serves both directions of the reproduction: the
    **tagger** applies ``pattern`` to a record's facility-prefixed text
    (regular-expression matching in the style of the ``logsurfer`` rules the
    administrators supplied, Section 3.2), and the **generator** emits
    bodies via ``body_factory`` that the pattern is guaranteed to match.

    Attributes
    ----------
    name:
        Category tag, e.g. ``"KERNDTLB"`` or ``"PBS_CHK"``.
    system:
        Short machine name the rule belongs to.
    alert_type:
        Hardware / Software / Indeterminate.
    pattern:
        Regex applied (``re.search``) to ``record.full_text()``.
    facility:
        Facility the generator stamps on records of this category.
    severity:
        Severity label the generator stamps (``None`` for systems that do
        not record severity).
    channel:
        Logging path records of this category travel.
    example:
        Anonymized example body, as in the paper's Table 4.
    body_factory:
        Callable ``(rng) -> str`` producing a concrete message body; falls
        back to ``example`` when not given.  Excluded from equality so
        category definitions compare by identity-relevant fields only.
    flags:
        ``re`` flags (e.g. ``re.IGNORECASE``) applied when compiling
        ``pattern``.  The tagger's combined prefilter must preserve these
        per-rule — see ``repro.core.tagging.scoped_pattern``.
    """

    name: str
    system: str
    alert_type: AlertType
    pattern: str
    facility: str = ""
    severity: Optional[str] = None
    channel: Channel = Channel.SYSLOG_UDP
    example: str = ""
    body_factory: Optional[BodyFactory] = field(default=None, compare=False)
    flags: int = 0

    def compiled(self) -> Pattern[str]:
        """The compiled regex (compiled fresh; rulesets cache these)."""
        return re.compile(self.pattern, self.flags)

    def make_body(self, rng=None) -> str:
        """A concrete message body for this category."""
        if self.body_factory is not None:
            return self.body_factory(rng)
        return self.example


@dataclass(frozen=True)
class Alert:
    """A log record tagged as an alert by an expert rule.

    Alerts are the unit the filtering algorithms operate on.  ``timestamp``,
    ``source``, and ``category`` are duplicated out of ``record`` because the
    filters touch only these three fields on every input and the hot path
    should not chase attribute chains.
    """

    timestamp: float
    source: str
    category: str
    alert_type: AlertType
    record: LogRecord = field(compare=False)

    @classmethod
    def from_record(cls, record: LogRecord, category: CategoryDef) -> "Alert":
        return cls(
            timestamp=record.timestamp,
            source=record.source,
            category=category.name,
            alert_type=category.alert_type,
            record=record,
        )


@dataclass(frozen=True)
class Ruleset:
    """An ordered collection of expert rules for one system.

    Order matters: like ``logsurfer``, the first matching rule wins, so
    more specific rules must precede more general ones.
    """

    system: str
    categories: Tuple[CategoryDef, ...]

    def __post_init__(self) -> None:
        names = [cat.name for cat in self.categories]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate category names in {self.system} ruleset: {sorted(duplicates)}"
            )
        foreign = [cat.name for cat in self.categories if cat.system != self.system]
        if foreign:
            raise ValueError(
                f"categories {foreign} do not belong to system {self.system!r}"
            )

    def get(self, name: str) -> CategoryDef:
        """Look up a category by tag name."""
        for cat in self.categories:
            if cat.name == name:
                return cat
        raise KeyError(f"no category {name!r} in {self.system} ruleset")

    def names(self) -> Tuple[str, ...]:
        """All category tags, in rule order."""
        return tuple(cat.name for cat in self.categories)

    def __len__(self) -> int:
        return len(self.categories)

    def __iter__(self):
        return iter(self.categories)

"""The paper's primary contribution: alert tagging and filtering.

Public surface:

* :class:`~repro.core.categories.Alert`, :class:`~repro.core.categories.CategoryDef`,
  :class:`~repro.core.categories.Ruleset`, :class:`~repro.core.categories.AlertType`
  — the alert vocabulary;
* :mod:`repro.core.rules` — the 77 expert rules for the five machines;
* :class:`~repro.core.tagging.Tagger` — regex tagging engine;
* :func:`~repro.core.filtering.log_filter` — the paper's Algorithm 3.1
  (simultaneous spatio-temporal filtering);
* :func:`~repro.core.serial_filter.serial_filter` — the Liang et al.
  temporal-then-spatial baseline;
* :class:`~repro.core.adaptive_filter.PerCategoryFilter` and
  :class:`~repro.core.correlated_filter.CorrelationAwareFilter` — the
  extensions the paper recommends as future work;
* :mod:`repro.core.tupling` — Tsao-style tuple clustering baseline;
* :class:`~repro.core.severity.SeverityTagger` — the severity-field
  baseline the paper evaluates (Tables 5 and 6).
"""

from .categories import Alert, AlertType, CategoryDef, Ruleset
from .tagging import (
    Tagger,
    count_by_category,
    count_by_type,
    observed_categories,
)
from .filtering import (
    DEFAULT_THRESHOLD,
    FilterReport,
    FilterStats,
    OutOfOrderError,
    SpatioTemporalFilter,
    filter_with_report,
    log_filter,
    log_filter_list,
    sorted_by_time,
)
from .serial_filter import (
    compare_filters,
    serial_filter,
    serial_filter_list,
    spatial_filter,
    temporal_filter,
)
from .adaptive_filter import PerCategoryFilter, suggest_thresholds
from .correlated_filter import (
    CorrelationAwareFilter,
    learn_correlated_groups,
    pair_cooccurrence,
)
from .tupling import AlertTuple, tuple_alerts, tuple_statistics
from .attribution import (
    FailureReport,
    attribution_summary,
    build_failure_reports,
)
from .monitor import Disposition, LogMonitor, MonitorStats, OperatorEvent
from .severity import SeverityTagger, SeverityTaggerConfig
from .rules import RULESETS, get_ruleset

__all__ = [
    "Alert",
    "AlertType",
    "CategoryDef",
    "Ruleset",
    "Tagger",
    "count_by_category",
    "count_by_type",
    "observed_categories",
    "DEFAULT_THRESHOLD",
    "FilterReport",
    "FilterStats",
    "OutOfOrderError",
    "SpatioTemporalFilter",
    "filter_with_report",
    "log_filter",
    "log_filter_list",
    "sorted_by_time",
    "compare_filters",
    "serial_filter",
    "serial_filter_list",
    "spatial_filter",
    "temporal_filter",
    "PerCategoryFilter",
    "suggest_thresholds",
    "CorrelationAwareFilter",
    "learn_correlated_groups",
    "pair_cooccurrence",
    "AlertTuple",
    "tuple_alerts",
    "tuple_statistics",
    "FailureReport",
    "attribution_summary",
    "build_failure_reports",
    "Disposition",
    "LogMonitor",
    "MonitorStats",
    "OperatorEvent",
    "SeverityTagger",
    "SeverityTaggerConfig",
    "RULESETS",
    "get_ruleset",
]

"""Correlation-aware filtering across categories.

The paper's Figure 3 shows two Liberty categories — ``GM_PAR`` (Myrinet
NIC parity panic, Hardware) and ``GM_LANAI`` (LANai not running, Software)
— whose occurrences are clearly correlated because they are two faces of
the same underlying failure, yet "current tagging and filtering techniques
do not adequately address this situation": a per-category filter keeps one
alert of *each* tag per failure.  Section 5 recommends "filters that are
aware of correlations among messages", which this module implements in two
parts:

* :func:`learn_correlated_groups` — measures, for every category pair, how
  often their alerts co-occur within a window, and unions pairs whose
  co-occurrence rate clears a confidence bar into *alias groups*;
* :class:`CorrelationAwareFilter` — Algorithm 3.1 run on alias groups: all
  categories in a group share one redundancy clock, so the GM_PAR followed
  two seconds later by GM_LANAI collapses to a single alert.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from .categories import Alert
from .filtering import DEFAULT_THRESHOLD


def pair_cooccurrence(
    alerts: Iterable[Alert],
    window: float = 60.0,
) -> Dict[Tuple[str, str], int]:
    """Count, per unordered category pair, windows where both fired.

    A sliding pass over the time-sorted stream: each alert is paired with
    every *different* category seen within the trailing ``window`` seconds,
    at most once per (alert, other-category).  Returns counts keyed by
    sorted category pairs.

    The window is tracked as a deque plus a per-category counter, so each
    alert costs O(distinct categories in window) rather than O(window
    population) — a storm of a million same-category alerts (Spirit's
    reality) stays linear.
    """
    from collections import deque

    recent: "deque[Tuple[float, str]]" = deque()
    in_window: Dict[str, int] = {}
    counts: Dict[Tuple[str, str], int] = {}
    for alert in alerts:
        while recent and alert.timestamp - recent[0][0] > window:
            _, old_category = recent.popleft()
            remaining = in_window[old_category] - 1
            if remaining:
                in_window[old_category] = remaining
            else:
                del in_window[old_category]
        for other_category in in_window:
            if other_category != alert.category:
                key = (
                    (alert.category, other_category)
                    if alert.category < other_category
                    else (other_category, alert.category)
                )
                counts[key] = counts.get(key, 0) + 1
        recent.append((alert.timestamp, alert.category))
        in_window[alert.category] = in_window.get(alert.category, 0) + 1
    return counts


def learn_correlated_groups(
    alerts: List[Alert],
    window: float = 60.0,
    min_cooccurrence: int = 3,
    min_rate: float = 0.5,
) -> List[FrozenSet[str]]:
    """Union correlated categories into alias groups.

    A pair qualifies when it co-occurred at least ``min_cooccurrence``
    times *and* the co-occurrence count is at least ``min_rate`` of the
    rarer category's total count — i.e. the rarer tag mostly appears next
    to the other, which is the Figure 3 signature ("GM_LANAI messages do
    not always follow GM_PAR messages, nor vice versa.  However, the
    correlation is clear").  Qualifying pairs are merged transitively
    (union-find) into groups.
    """
    totals: Dict[str, int] = {}
    for alert in alerts:
        totals[alert.category] = totals.get(alert.category, 0) + 1
    parent: Dict[str, str] = {}

    def find(tag: str) -> str:
        parent.setdefault(tag, tag)
        while parent[tag] != tag:
            parent[tag] = parent[parent[tag]]
            tag = parent[tag]
        return tag

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for (cat_a, cat_b), count in pair_cooccurrence(alerts, window).items():
        rarer = min(totals.get(cat_a, 0), totals.get(cat_b, 0))
        if rarer == 0:
            continue
        if count >= min_cooccurrence and count / rarer >= min_rate:
            union(cat_a, cat_b)

    groups: Dict[str, Set[str]] = {}
    for tag in parent:
        groups.setdefault(find(tag), set()).add(tag)
    return [frozenset(members) for members in groups.values() if len(members) > 1]


class CorrelationAwareFilter:
    """Algorithm 3.1 over alias groups of correlated categories.

    Categories in the same group share a redundancy clock: an alert is
    redundant when *any category of its group* was reported within the
    threshold.  Ungrouped categories behave exactly as in the plain filter.
    """

    def __init__(
        self,
        groups: Iterable[FrozenSet[str]] = (),
        threshold: float = DEFAULT_THRESHOLD,
    ):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self._alias: Dict[str, str] = {}
        for group in groups:
            canonical = min(group)
            for member in group:
                if member in self._alias and self._alias[member] != canonical:
                    raise ValueError(
                        f"category {member!r} appears in multiple groups"
                    )
                self._alias[member] = canonical
        self._last_seen: Dict[str, float] = {}

    def group_key(self, category: str) -> str:
        """The shared clock key for a category (itself when ungrouped)."""
        return self._alias.get(category, category)

    def offer(self, alert: Alert) -> bool:
        key = self.group_key(alert.category)
        last = self._last_seen.get(key)
        self._last_seen[key] = alert.timestamp
        if last is not None and alert.timestamp - last < self.threshold:
            return False
        return True

    def filter(self, alerts: Iterable[Alert]) -> Iterator[Alert]:
        """Lazily filter a time-sorted stream."""
        for alert in alerts:
            if self.offer(alert):
                yield alert

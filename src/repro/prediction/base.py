"""Predictor interface and event-based evaluation.

A predictor watches the alert stream and emits *warnings*: "a failure of
category C is imminent."  Evaluation follows the critical-event-prediction
literature the paper cites (Sahoo et al., Liang et al.): a failure counts
as *predicted* if a warning preceded it within the lead window
[lead_min, lead_max]; a warning counts as *correct* if a failure follows
it within the same window.  Precision limits operator fatigue, recall
limits surprise — the paper notes "limiting false positives to an
operationally-acceptable rate tends to be the critical factor"
(Section 3.3.2).
"""

from __future__ import annotations

import abc
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Sequence

from .features import AlertHistory


@dataclass(frozen=True)
class Warning_:
    """One emitted prediction (trailing underscore: ``Warning`` is a
    Python built-in exception)."""

    t: float
    category: str
    score: float


class Predictor(abc.ABC):
    """Base predictor: train on one span of history, warn over another."""

    #: The failure category this instance predicts.
    target: str

    @abc.abstractmethod
    def train(self, history: AlertHistory, t0: float, t1: float) -> None:
        """Fit on failures/alerts within [t0, t1)."""

    @abc.abstractmethod
    def warnings(
        self, history: AlertHistory, t0: float, t1: float
    ) -> List[Warning_]:
        """Emit warnings for the evaluation span [t0, t1)."""


@dataclass(frozen=True)
class PredictionScore:
    """Event-based evaluation outcome for one predictor on one span."""

    target: str
    failures: int
    predicted_failures: int
    warnings: int
    correct_warnings: int

    @property
    def recall(self) -> float:
        return self.predicted_failures / self.failures if self.failures else 0.0

    @property
    def precision(self) -> float:
        return self.correct_warnings / self.warnings if self.warnings else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def evaluate(
    warnings: Sequence[Warning_],
    failure_times: Sequence[float],
    target: str,
    lead_min: float = 10.0,
    lead_max: float = 3600.0,
) -> PredictionScore:
    """Score warnings against ground-truth failure times.

    ``lead_min`` excludes warnings too late to act on; ``lead_max`` bounds
    how early a warning may claim credit.
    """
    if lead_min < 0 or lead_max <= lead_min:
        raise ValueError("need 0 <= lead_min < lead_max")
    fail_times = sorted(failure_times)
    warn_times = sorted(w.t for w in warnings if w.category == target)

    predicted = 0
    for ft in fail_times:
        lo = bisect_left(warn_times, ft - lead_max)
        hi = bisect_right(warn_times, ft - lead_min)
        if hi > lo:
            predicted += 1

    correct = 0
    for wt in warn_times:
        lo = bisect_left(fail_times, wt + lead_min)
        hi = bisect_right(fail_times, wt + lead_max)
        if hi > lo:
            correct += 1

    return PredictionScore(
        target=target,
        failures=len(fail_times),
        predicted_failures=predicted,
        warnings=len(warn_times),
        correct_warnings=correct,
    )

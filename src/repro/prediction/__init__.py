"""Failure prediction: single-feature baselines and the per-category
ensemble the paper recommends (Sections 4 and 5)."""

from .base import PredictionScore, Predictor, Warning_, evaluate
from .dft import DftFiring, DftPredictor, dft_scan
from .ensemble import (
    DEFAULT_FACTORIES,
    EnsembleMember,
    PredictorEnsemble,
)
from .features import AlertHistory, WindowFeatures
from .predictors import BurstPredictor, PrecursorPredictor, SeverityPredictor

__all__ = [
    "PredictionScore",
    "Predictor",
    "Warning_",
    "evaluate",
    "DftFiring",
    "DftPredictor",
    "dft_scan",
    "DEFAULT_FACTORIES",
    "EnsembleMember",
    "PredictorEnsemble",
    "AlertHistory",
    "WindowFeatures",
    "BurstPredictor",
    "PrecursorPredictor",
    "SeverityPredictor",
]

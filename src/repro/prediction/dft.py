"""The Dispersion Frame Technique (Lin & Siewiorek).

The paper's related work cites Lin & Siewiorek's "Error log analysis:
statistical modeling and heuristic trend analysis" [11], whose Dispersion
Frame Technique (DFT) is the classic heuristic for predicting hardware
failure from accelerating error interarrivals.  DFT observes that
intermittent errors cluster increasingly tightly before a permanent
failure, and fires on any of five rules over the last few error times.

Definitions, following the original: the *i*-th **dispersion frame** is
the interarrival time between error *i* and error *i-1*; a frame is
applied as a window centered successively on previous errors, and the
technique counts how many errors fall inside.  The rules (as commonly
stated):

* **3.3 rule** — two consecutive frames each contain >= 3 errors in half
  the frame;
* **2-in-1 rule** — a frame (window = previous interarrival) contains two
  errors;
* **4-in-1 rule** — four errors within one frame of 24 hours;
* **4 decreasing** — four monotonically decreasing frames, and at least
  one halving step;
* **2-of-4 rule** — two of the last four frames under one hour.

Our implementation evaluates the rules per (source, category) pair, since
DFT models per-device degradation — exactly the ECC-style categories the
paper found to behave like physical processes.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .base import Predictor, Warning_
from .features import AlertHistory

HOUR = 3600.0
DAY = 86400.0


@dataclass(frozen=True)
class DftFiring:
    """One DFT rule activation."""

    t: float
    source: str
    rule: str


def _rules_fire(times: Sequence[float]) -> Optional[str]:
    """Evaluate the DFT rules on a device's recent error times.

    ``times`` must be ascending; the decision uses up to the last five
    errors (four frames).  Returns the first firing rule's name or
    ``None``.
    """
    if len(times) < 2:
        return None
    frames = [
        times[i] - times[i - 1] for i in range(len(times) - 3, len(times))
        if i >= 1
    ]
    # frames[-1] is the newest interarrival.
    newest = frames[-1]

    # 2-in-1: the newest interarrival is under half the previous frame.
    if len(frames) >= 2 and newest <= frames[-2] / 2:
        return "2-in-1"

    # 4-in-1: four errors inside 24 hours.
    if len(times) >= 4 and times[-1] - times[-4] <= DAY:
        return "4-in-1"

    # 2-of-4: two of the last four frames under one hour.
    if len(frames) >= 2 and sum(1 for f in frames[-4:] if f < HOUR) >= 2:
        return "2-of-4"

    # 4 decreasing: monotone shrink across four frames with a halving.
    if len(frames) >= 3:
        last = frames[-3:]
        if all(b < a for a, b in zip(last, last[1:])) and last[-1] <= last[0] / 2:
            return "4-decreasing"

    # 3.3 rule: two successive frames each holding >= 3 errors needs
    # denser bookkeeping; approximate with 6 errors inside two newest
    # frames' span.
    if len(times) >= 6:
        span = max(newest, 1e-9) * 2
        if times[-1] - times[-6] <= span:
            return "3.3"
    return None


def dft_scan(
    events: Sequence[Tuple[float, str]],
    min_history: int = 2,
    refractory: float = 12 * HOUR,
) -> List[DftFiring]:
    """Scan (time, source) error events and report DFT firings.

    One firing per source per ``refractory`` period: DFT is a replacement
    advisory, not a pager.
    """
    by_source: Dict[str, List[float]] = {}
    last_fired: Dict[str, float] = {}
    firings: List[DftFiring] = []
    for t, source in sorted(events):
        history = by_source.setdefault(source, [])
        history.append(t)
        if len(history) < min_history:
            continue
        if source in last_fired and t - last_fired[source] < refractory:
            continue
        rule = _rules_fire(history[-6:])
        if rule is not None:
            last_fired[source] = t
            firings.append(DftFiring(t=t, source=source, rule=rule))
    return firings


class DftPredictor(Predictor):
    """DFT wrapped in the ensemble's :class:`Predictor` interface.

    Warnings are per-device degradation advisories for the target
    category.  Training is a no-op (DFT is parameter-free); the value of
    including it in the ensemble is that validation scoring routes only
    physically-degrading categories to it.
    """

    def __init__(self, target: str, refractory: float = 12 * HOUR):
        self.target = target
        self.refractory = refractory

    def train(self, history: AlertHistory, t0: float, t1: float) -> None:
        """Parameter-free heuristic; nothing to fit."""

    def warnings(
        self, history: AlertHistory, t0: float, t1: float
    ) -> List[Warning_]:
        # Span-slice the target category's alerts (ascending) rather than
        # scanning the whole history; dft_scan re-sorts, so this is
        # output-identical to the old full-history filter.
        alerts = history.category_alerts(self.target)
        times = [a.timestamp for a in alerts]
        i0 = bisect_left(times, t0)
        i1 = bisect_left(times, t1)
        events = [
            (alert.timestamp, alert.source) for alert in alerts[i0:i1]
        ]
        return [
            Warning_(firing.t, self.target, 1.0)
            for firing in dft_scan(events, refractory=self.refractory)
        ]

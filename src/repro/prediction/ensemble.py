"""The per-category predictor ensemble (the paper's Section 5 proposal).

"Event prediction efforts should produce an ensemble of predictors, each
specializing in one or more categories" (Section 1); "predictors should
specialize in sets of failures with similar predictive behaviors"
(Section 5).  The ensemble trains every candidate predictor per target
category on a training span, scores each on a validation span, and routes
each category to its best candidate — falling back to silence for
categories nothing predicts well (a predictor that cries wolf is worse
than none).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .base import PredictionScore, Predictor, Warning_, evaluate
from .dft import DftPredictor
from .features import AlertHistory
from .predictors import BurstPredictor, PrecursorPredictor, SeverityPredictor

#: A factory building a fresh predictor for a target category.
PredictorFactory = Callable[[str], Predictor]

DEFAULT_FACTORIES: Dict[str, PredictorFactory] = {
    "burst": lambda target: BurstPredictor(target),
    "severity": lambda target: SeverityPredictor(target),
    "precursor": lambda target: PrecursorPredictor(target),
    "dft": lambda target: DftPredictor(target),
}


@dataclass
class EnsembleMember:
    """The chosen specialist for one category."""

    category: str
    kind: str
    predictor: Predictor
    validation: PredictionScore


@dataclass
class PredictorEnsemble:
    """Trains and routes per-category specialists.

    Parameters
    ----------
    factories:
        Candidate predictor families by name (default: burst, severity,
        precursor).
    min_f1:
        Validation F1 below which a category gets *no* predictor — the
    "some failure types have no predictive signature" case (Section 1:
        "different categories of failures have different predictive
        signatures (if any)").
    min_precision:
        Validation precision below which a *warning-emitting* candidate
        is disqualified outright, regardless of F1 — the cries-wolf
        guard: "limiting false positives to an operationally-acceptable
        rate tends to be the critical factor" (Section 3.3.2).  A
        candidate that never warned is not crying wolf and is judged on
        F1 alone (which is then 0).
    lead_min / lead_max:
        The actionable lead window used for scoring.

    Selection is deterministic: candidates are tried in sorted-name
    order and only a strictly better F1 displaces the incumbent, so
    equal scores resolve to the alphabetically first kind on every run.
    """

    factories: Dict[str, PredictorFactory] = field(
        default_factory=lambda: dict(DEFAULT_FACTORIES)
    )
    min_f1: float = 0.2
    min_precision: float = 0.25
    min_failures: int = 4
    lead_min: float = 10.0
    lead_max: float = 3600.0
    members: Dict[str, EnsembleMember] = field(default_factory=dict)

    def fit(
        self,
        history: AlertHistory,
        train_span: "tuple[float, float]",
        validation_span: "tuple[float, float]",
        categories: Optional[Sequence[str]] = None,
    ) -> "PredictorEnsemble":
        """Select the best candidate per category on validation F1."""
        self.members = {}
        targets = list(categories) if categories else history.categories
        for target in targets:
            v_failures = [
                t
                for t in history.category_times(target)
                if validation_span[0] <= t < validation_span[1]
            ]
            if len(v_failures) < self.min_failures:
                continue
            best: Optional[EnsembleMember] = None
            for kind in sorted(self.factories):
                predictor = self.factories[kind](target)
                predictor.train(history, *train_span)
                warnings = predictor.warnings(history, *validation_span)
                score = evaluate(
                    warnings, v_failures, target,
                    lead_min=self.lead_min, lead_max=self.lead_max,
                )
                if score.warnings and score.precision < self.min_precision:
                    continue  # cries wolf on validation: never selectable
                if best is None or score.f1 > best.validation.f1:
                    best = EnsembleMember(target, kind, predictor, score)
            if best is not None and best.validation.f1 >= self.min_f1:
                self.members[target] = best
        return self

    def warnings(
        self, history: AlertHistory, t0: float, t1: float
    ) -> List[Warning_]:
        """All specialists' warnings over a span, time-ordered."""
        out: List[Warning_] = []
        for member in self.members.values():
            out.extend(member.predictor.warnings(history, t0, t1))
        out.sort(key=lambda w: w.t)
        return out

    def score(
        self, history: AlertHistory, t0: float, t1: float
    ) -> Dict[str, PredictionScore]:
        """Per-category evaluation over a test span."""
        scores: Dict[str, PredictionScore] = {}
        for target, member in self.members.items():
            failures = [
                t for t in history.category_times(target) if t0 <= t < t1
            ]
            warnings = member.predictor.warnings(history, t0, t1)
            scores[target] = evaluate(
                warnings, failures, target,
                lead_min=self.lead_min, lead_max=self.lead_max,
            )
        return scores

    def summary(self) -> str:
        lines = ["Ensemble members (category -> specialist):"]
        for target in sorted(self.members):
            member = self.members[target]
            lines.append(
                f"  {target:<12} {member.kind:<10} "
                f"val P={member.validation.precision:.2f} "
                f"R={member.validation.recall:.2f} "
                f"F1={member.validation.f1:.2f}"
            )
        if not self.members:
            lines.append("  (none cleared the F1 bar)")
        return "\n".join(lines)

"""Concrete failure predictors: the single-feature baselines and the
precursor learner.

The paper's critique (Section 4): "previous prediction approaches focused
on single features for detecting all failure types (e.g. severity levels
or message bursts)."  Both of those single-feature baselines are here —
:class:`BurstPredictor` (message bursts) and :class:`SeverityPredictor`
(high-severity messages) — alongside :class:`PrecursorPredictor`, which
learns per-target precursor categories, the per-class specialization the
paper recommends.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .base import Predictor, Warning_
from .features import AlertHistory


def _dedupe(warnings: List[Warning_], refractory: float) -> List[Warning_]:
    """Suppress warnings within ``refractory`` seconds of the previous one
    (an un-throttled predictor spams the operator during every burst)."""
    out: List[Warning_] = []
    last: Optional[float] = None
    for warning in sorted(warnings, key=lambda w: w.t):
        if last is None or warning.t - last >= refractory:
            out.append(warning)
            last = warning.t
    return out


class BurstPredictor(Predictor):
    """Warn when total alert traffic bursts (the message-burst feature).

    Training estimates the background alert rate; prediction fires when a
    trailing window holds ``sigma`` times more alerts than the trained
    expectation.  Deliberately category-blind — that is the point of the
    baseline.
    """

    def __init__(
        self,
        target: str,
        window: float = 600.0,
        sigma: float = 4.0,
        refractory: float = 1800.0,
    ):
        self.target = target
        self.window = window
        self.sigma = sigma
        self.refractory = refractory
        self._expected_per_window = 0.0

    def train(self, history: AlertHistory, t0: float, t1: float) -> None:
        span = max(t1 - t0, 1.0)
        total = history.count_between(t0, t1)
        self._expected_per_window = total * self.window / span

    def warnings(
        self, history: AlertHistory, t0: float, t1: float
    ) -> List[Warning_]:
        threshold = max(3.0, self._expected_per_window * self.sigma)
        out: List[Warning_] = []
        # Evaluate at each alert arrival (bursts only begin at alerts).
        for alert in history.alerts:
            if not (t0 <= alert.timestamp < t1):
                continue
            count = history.count_between(
                alert.timestamp - self.window, alert.timestamp
            )
            if count >= threshold:
                out.append(
                    Warning_(alert.timestamp, self.target, float(count))
                )
        return _dedupe(out, self.refractory)


class SeverityPredictor(Predictor):
    """Warn on any high-severity message (the severity-level feature).

    The weakest baseline on machines that do not record severity — it then
    never warns at all, which is the paper's Table 5/6 point transplanted
    into prediction.
    """

    def __init__(
        self,
        target: str,
        alert_labels: Sequence[str] = ("FATAL", "FAILURE", "EMERG", "ALERT", "CRIT"),
        refractory: float = 1800.0,
    ):
        self.target = target
        self.alert_labels = frozenset(alert_labels)
        self.refractory = refractory

    def train(self, history: AlertHistory, t0: float, t1: float) -> None:
        """Stateless baseline; nothing to fit."""

    def warnings(
        self, history: AlertHistory, t0: float, t1: float
    ) -> List[Warning_]:
        out = [
            Warning_(alert.timestamp, self.target, 1.0)
            for alert in history.alerts
            if t0 <= alert.timestamp < t1
            and alert.record.severity in self.alert_labels
        ]
        return _dedupe(out, self.refractory)


class PrecursorPredictor(Predictor):
    """Learn which categories precede the target, then warn on them.

    Training measures, for every candidate category, the *lift*: how much
    more likely a target failure is within ``lead`` seconds after a
    candidate alert than at a random moment.  Candidates whose lift clears
    ``min_lift`` (and fire at least ``min_support`` times before failures)
    become precursors; prediction warns whenever a precursor fires.

    This is the per-category specialization of Section 4: different
    failure classes get different predictive signatures — or none, in
    which case this predictor stays silent rather than guessing.
    """

    def __init__(
        self,
        target: str,
        lead: float = 3600.0,
        min_lift: float = 3.0,
        min_support: int = 3,
        refractory: float = 900.0,
    ):
        self.target = target
        self.lead = lead
        self.min_lift = min_lift
        self.min_support = min_support
        self.refractory = refractory
        self.precursors: Dict[str, float] = {}

    def train(self, history: AlertHistory, t0: float, t1: float) -> None:
        span = max(t1 - t0, 1.0)
        target_times = [
            t for t in history.category_times(self.target) if t0 <= t < t1
        ]
        base_rate = len(target_times) / span  # failures per second
        self.precursors = {}
        if not target_times or base_rate <= 0:
            return
        for category in history.categories:
            if category == self.target:
                continue
            cand_times = [
                t for t in history.category_times(category) if t0 <= t < t1
            ]
            if not cand_times:
                continue
            hits = 0
            for ct in cand_times:
                followed = history.category_count_between(
                    self.target, ct, ct + self.lead
                )
                if followed > 0:
                    hits += 1
            hit_rate = hits / len(cand_times)
            expected = min(1.0, base_rate * self.lead)
            lift = hit_rate / expected if expected > 0 else 0.0
            if hits >= self.min_support and lift >= self.min_lift:
                self.precursors[category] = lift

    def warnings(
        self, history: AlertHistory, t0: float, t1: float
    ) -> List[Warning_]:
        if not self.precursors:
            return []
        out = [
            Warning_(alert.timestamp, self.target,
                     self.precursors[alert.category])
            for alert in history.alerts
            if t0 <= alert.timestamp < t1 and alert.category in self.precursors
        ]
        return _dedupe(out, self.refractory)

"""Concrete failure predictors: the single-feature baselines and the
precursor learner.

The paper's critique (Section 4): "previous prediction approaches focused
on single features for detecting all failure types (e.g. severity levels
or message bursts)."  Both of those single-feature baselines are here —
:class:`BurstPredictor` (message bursts) and :class:`SeverityPredictor`
(high-severity messages) — alongside :class:`PrecursorPredictor`, which
learns per-target precursor categories, the per-class specialization the
paper recommends.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

import numpy as np

from .base import Predictor, Warning_
from .features import AlertHistory


def _dedupe(warnings: List[Warning_], refractory: float) -> List[Warning_]:
    """Suppress warnings within ``refractory`` seconds of the previous one
    (an un-throttled predictor spams the operator during every burst)."""
    out: List[Warning_] = []
    last: Optional[float] = None
    for warning in sorted(warnings, key=lambda w: w.t):
        if last is None or warning.t - last >= refractory:
            out.append(warning)
            last = warning.t
    return out


class BurstPredictor(Predictor):
    """Warn when total alert traffic bursts (the message-burst feature).

    Training estimates the background alert rate; prediction fires when a
    trailing window holds ``sigma`` times more alerts than the trained
    expectation.  Deliberately category-blind — that is the point of the
    baseline.
    """

    def __init__(
        self,
        target: str,
        window: float = 600.0,
        sigma: float = 4.0,
        refractory: float = 1800.0,
    ):
        self.target = target
        self.window = window
        self.sigma = sigma
        self.refractory = refractory
        self._expected_per_window = 0.0

    def train(self, history: AlertHistory, t0: float, t1: float) -> None:
        span = max(t1 - t0, 1.0)
        total = history.count_between(t0, t1)
        self._expected_per_window = total * self.window / span

    def warnings(
        self, history: AlertHistory, t0: float, t1: float
    ) -> List[Warning_]:
        threshold = max(3.0, self._expected_per_window * self.sigma)
        # Evaluate at each alert arrival (bursts only begin at alerts).
        # Vectorized: searchsorted(side='left') is bisect_left, so the
        # trailing-window counts equal count_between(t - window, t)
        # exactly; the greedy in-order refractory pass below is _dedupe.
        full = history.times_array()
        i0 = int(np.searchsorted(full, t0))
        i1 = int(np.searchsorted(full, t1))
        if i0 >= i1:
            return []
        t_arr = full[i0:i1]
        counts = np.searchsorted(full, t_arr) - np.searchsorted(
            full, t_arr - self.window
        )
        out: List[Warning_] = []
        last: Optional[float] = None
        for i in np.nonzero(counts >= threshold)[0]:
            t = float(t_arr[i])
            if last is None or t - last >= self.refractory:
                out.append(Warning_(t, self.target, float(counts[i])))
                last = t
        return out


class SeverityPredictor(Predictor):
    """Warn on any high-severity message (the severity-level feature).

    The weakest baseline on machines that do not record severity — it then
    never warns at all, which is the paper's Table 5/6 point transplanted
    into prediction.
    """

    def __init__(
        self,
        target: str,
        alert_labels: Sequence[str] = ("FATAL", "FAILURE", "EMERG", "ALERT", "CRIT"),
        refractory: float = 1800.0,
    ):
        self.target = target
        self.alert_labels = frozenset(alert_labels)
        self.refractory = refractory

    def train(self, history: AlertHistory, t0: float, t1: float) -> None:
        """Stateless baseline; nothing to fit."""

    def warnings(
        self, history: AlertHistory, t0: float, t1: float
    ) -> List[Warning_]:
        # One shared pass builds the high-severity time index (memoized
        # on the history); each target then just slices its span.
        times = history.severity_times(self.alert_labels)
        i0 = bisect_left(times, t0)
        i1 = bisect_left(times, t1)
        out = [Warning_(t, self.target, 1.0) for t in times[i0:i1]]
        return _dedupe(out, self.refractory)


class PrecursorPredictor(Predictor):
    """Learn which categories precede the target, then warn on them.

    Training measures, for every candidate category, the *lift*: how much
    more likely a target failure is within ``lead`` seconds after a
    candidate alert than at a random moment.  Candidates whose lift clears
    ``min_lift`` (and fire at least ``min_support`` times before failures)
    become precursors; prediction warns whenever a precursor fires.

    This is the per-category specialization of Section 4: different
    failure classes get different predictive signatures — or none, in
    which case this predictor stays silent rather than guessing.
    """

    def __init__(
        self,
        target: str,
        lead: float = 3600.0,
        min_lift: float = 3.0,
        min_support: int = 3,
        refractory: float = 900.0,
    ):
        self.target = target
        self.lead = lead
        self.min_lift = min_lift
        self.min_support = min_support
        self.refractory = refractory
        self.precursors: Dict[str, float] = {}

    def train(self, history: AlertHistory, t0: float, t1: float) -> None:
        span = max(t1 - t0, 1.0)
        target_all = history.category_times_array(self.target)
        n_target = int(np.searchsorted(target_all, t1)) - int(
            np.searchsorted(target_all, t0)
        )
        base_rate = n_target / span  # failures per second
        self.precursors = {}
        if not n_target or base_rate <= 0:
            return
        # Vectorized per candidate category: a "hit" is a candidate alert
        # with at least one target alert in [ct, ct + lead), i.e.
        # bisect_left(target, ct + lead) > bisect_left(target, ct) —
        # searchsorted(side='left') keeps this bit-identical to the old
        # per-candidate category_count_between loop.
        for category in history.categories:
            if category == self.target:
                continue
            cand_all = history.category_times_array(category)
            c0 = int(np.searchsorted(cand_all, t0))
            c1 = int(np.searchsorted(cand_all, t1))
            if c0 >= c1:
                continue
            cand = cand_all[c0:c1]
            lo = np.searchsorted(target_all, cand)
            hi = np.searchsorted(target_all, cand + self.lead)
            hits = int((hi > lo).sum())
            hit_rate = hits / cand.size
            expected = min(1.0, base_rate * self.lead)
            lift = hit_rate / expected if expected > 0 else 0.0
            if hits >= self.min_support and lift >= self.min_lift:
                self.precursors[category] = lift

    def warnings(
        self, history: AlertHistory, t0: float, t1: float
    ) -> List[Warning_]:
        if not self.precursors:
            return []
        # Per-precursor span slices instead of a full-history scan;
        # _dedupe re-sorts, so the merge order does not matter.
        out: List[Warning_] = []
        for category in sorted(self.precursors):
            lift = self.precursors[category]
            times = history.category_times(category)
            i0 = bisect_left(times, t0)
            i1 = bisect_left(times, t1)
            out.extend(Warning_(t, self.target, lift) for t in times[i0:i1])
        return _dedupe(out, self.refractory)

"""Feature extraction over alert streams for failure prediction.

The predictors consume *windowed* views of the log: per-category counts,
total rates, and severity mix over a trailing window.  This mirrors the
feature families of the prediction literature the paper cites (Sahoo et
al.'s event counts, Liang et al.'s burst features) — exactly the "single
features" the paper says should be combined per failure class instead of
applied uniformly (Section 4).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from ..core.categories import Alert


@dataclass(frozen=True)
class WindowFeatures:
    """Features of one trailing window ending at ``t``."""

    t: float
    window: float
    total: int
    by_category: Dict[str, int]

    def rate(self) -> float:
        """Alerts per second in the window."""
        return self.total / self.window if self.window > 0 else 0.0

    def count(self, category: str) -> int:
        return self.by_category.get(category, 0)


class AlertHistory:
    """A time-indexed view over a sorted alert list with O(log n) windowed
    count queries — the substrate for all predictors."""

    def __init__(self, alerts: Sequence[Alert]):
        self.alerts = sorted(alerts, key=lambda a: a.timestamp)
        self._times = [a.timestamp for a in self.alerts]
        self._by_category: Dict[str, List[float]] = {}
        self._alerts_by_category: Dict[str, List[Alert]] = {}
        for alert in self.alerts:
            self._by_category.setdefault(alert.category, []).append(
                alert.timestamp
            )
            self._alerts_by_category.setdefault(alert.category, []).append(
                alert
            )
        # Memoized ndarray mirrors of the time indexes, for the
        # vectorized predictors (np.searchsorted side='left' is exactly
        # bisect_left, so the vector paths stay output-identical).
        self._times_np: Optional[np.ndarray] = None
        self._by_category_np: Dict[str, np.ndarray] = {}
        self._severity_times: Dict[FrozenSet[str], List[float]] = {}

    @property
    def categories(self) -> List[str]:
        return sorted(self._by_category)

    def count_between(self, t0: float, t1: float) -> int:
        """Alerts with timestamp in [t0, t1)."""
        return bisect_left(self._times, t1) - bisect_left(self._times, t0)

    def category_count_between(self, category: str, t0: float, t1: float) -> int:
        times = self._by_category.get(category, [])
        return bisect_left(times, t1) - bisect_left(times, t0)

    def category_times(self, category: str) -> List[float]:
        return list(self._by_category.get(category, []))

    def category_alerts(self, category: str) -> List[Alert]:
        """The category's alerts, ascending (a shared list: do not mutate)."""
        return self._alerts_by_category.get(category, [])

    def between(self, t0: float, t1: float) -> List[Alert]:
        """Alerts with timestamp in [t0, t1), ascending (a fresh slice)."""
        i0 = bisect_left(self._times, t0)
        i1 = bisect_left(self._times, t1)
        return self.alerts[i0:i1]

    def times_array(self) -> np.ndarray:
        if self._times_np is None:
            self._times_np = np.asarray(self._times, dtype=np.float64)
        return self._times_np

    def category_times_array(self, category: str) -> np.ndarray:
        arr = self._by_category_np.get(category)
        if arr is None:
            arr = np.asarray(
                self._by_category.get(category, []), dtype=np.float64
            )
            self._by_category_np[category] = arr
        return arr

    def severity_times(self, labels: FrozenSet[str]) -> List[float]:
        """Timestamps of alerts whose record severity is in ``labels``,
        ascending; memoized per label set (every severity predictor in a
        refit shares one pass over the history)."""
        cached = self._severity_times.get(labels)
        if cached is None:
            cached = [
                alert.timestamp
                for alert in self.alerts
                if alert.record.severity in labels
            ]
            self._severity_times[labels] = cached
        return cached

    def features_at(self, t: float, window: float) -> WindowFeatures:
        """Trailing-window features for the interval [t - window, t)."""
        t0 = t - window
        by_category = {
            category: self.category_count_between(category, t0, t)
            for category in self._by_category
        }
        by_category = {c: n for c, n in by_category.items() if n > 0}
        return WindowFeatures(
            t=t,
            window=window,
            total=self.count_between(t0, t),
            by_category=by_category,
        )

    def first_time(self) -> float:
        return self._times[0] if self._times else 0.0

    def last_time(self) -> float:
        return self._times[-1] if self._times else 0.0

"""Feature extraction over alert streams for failure prediction.

The predictors consume *windowed* views of the log: per-category counts,
total rates, and severity mix over a trailing window.  This mirrors the
feature families of the prediction literature the paper cites (Sahoo et
al.'s event counts, Liang et al.'s burst features) — exactly the "single
features" the paper says should be combined per failure class instead of
applied uniformly (Section 4).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.categories import Alert


@dataclass(frozen=True)
class WindowFeatures:
    """Features of one trailing window ending at ``t``."""

    t: float
    window: float
    total: int
    by_category: Dict[str, int]

    def rate(self) -> float:
        """Alerts per second in the window."""
        return self.total / self.window if self.window > 0 else 0.0

    def count(self, category: str) -> int:
        return self.by_category.get(category, 0)


class AlertHistory:
    """A time-indexed view over a sorted alert list with O(log n) windowed
    count queries — the substrate for all predictors."""

    def __init__(self, alerts: Sequence[Alert]):
        self.alerts = sorted(alerts, key=lambda a: a.timestamp)
        self._times = [a.timestamp for a in self.alerts]
        self._by_category: Dict[str, List[float]] = {}
        for alert in self.alerts:
            self._by_category.setdefault(alert.category, []).append(
                alert.timestamp
            )

    @property
    def categories(self) -> List[str]:
        return sorted(self._by_category)

    def count_between(self, t0: float, t1: float) -> int:
        """Alerts with timestamp in [t0, t1)."""
        return bisect_left(self._times, t1) - bisect_left(self._times, t0)

    def category_count_between(self, category: str, t0: float, t1: float) -> int:
        times = self._by_category.get(category, [])
        return bisect_left(times, t1) - bisect_left(times, t0)

    def category_times(self, category: str) -> List[float]:
        return list(self._by_category.get(category, []))

    def features_at(self, t: float, window: float) -> WindowFeatures:
        """Trailing-window features for the interval [t - window, t)."""
        t0 = t - window
        by_category = {
            category: self.category_count_between(category, t0, t)
            for category in self._by_category
        }
        by_category = {c: n for c, n in by_category.items() if n > 0}
        return WindowFeatures(
            t=t,
            window=window,
            total=self.count_between(t0, t),
            by_category=by_category,
        )

    def first_time(self) -> float:
        return self._times[0] if self._times else 0.0

    def last_time(self) -> float:
        return self._times[-1] if self._times else 0.0

"""Text renderers regenerating the paper's tables and figures."""

from .format import (
    bar,
    format_float,
    format_int,
    format_pct,
    histogram_rows,
    render_table,
    sparkline,
)
from .tables import (
    SYSTEM_ORDER,
    all_tables,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from .report import system_report
from .figures import (
    all_figures,
    figure1,
    figure2a,
    figure2b,
    figure3,
    figure4,
    figure5,
    figure6,
    liberty_figures,
)

__all__ = [
    "bar",
    "format_float",
    "format_int",
    "format_pct",
    "histogram_rows",
    "render_table",
    "sparkline",
    "SYSTEM_ORDER",
    "all_figures",
    "all_tables",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure1",
    "figure2a",
    "figure2b",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "liberty_figures",
    "system_report",
]

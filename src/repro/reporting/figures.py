"""Text renderers for the paper's Figures 1-6.

Each ``figureN`` function regenerates the corresponding figure's data
series from live pipeline results and renders it as monospace text:
sparklines for time series, block-bar histograms for distributions,
timeline scatter rows for correlated categories.  The *data* the renders
display is exactly what the benches assert shape properties on.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.correlation import tag_correlation_from_times
from ..analysis.distributions import compare_models, empirical_cdf
from ..analysis.interarrival import (
    LogHistogram,
    interarrival_times,
    log_histogram,
)
from ..analysis.phases import PhaseShift, detect_phase_shifts
from ..analysis.timeseries import (
    RateSeries,
    SourceDistribution,
    hourly_message_counts,
    messages_by_source,
)
from ..core.categories import Alert
from ..simulation.opcontext import ContextTimeline
from .format import bar, format_int, histogram_rows, sparkline


def _date(epoch: float) -> str:
    return time.strftime("%Y-%m-%d", time.gmtime(epoch))


def figure1(timeline: ContextTimeline, max_intervals: int = 20) -> str:
    """Figure 1: the operational-context state machine, as a timeline.

    The paper's figure is the state diagram; the reproduction renders the
    concrete state history that diagram generates, which is the data an
    alert disambiguator consumes.
    """
    lines = [
        "Figure 1. Operational context timeline",
        "=======================================",
        f"window: {_date(timeline.start)} .. {_date(timeline.end)}",
        f"production fraction: {timeline.production_fraction():.3f}",
        "",
    ]
    intervals = list(timeline.intervals())
    shown = intervals[:max_intervals]
    for t0, t1, state, cause in shown:
        hours = (t1 - t0) / 3600.0
        lines.append(
            f"  {_date(t0)}  {state.value:<22} {hours:9.1f} h  ({cause})"
        )
    if len(intervals) > len(shown):
        lines.append(f"  ... {len(intervals) - len(shown)} more intervals")
    return "\n".join(lines)


def figure2a(
    series: RateSeries,
    shifts: Optional[Sequence[PhaseShift]] = None,
) -> str:
    """Figure 2(a): messages bucketed by hour, with detected phase shifts."""
    if shifts is None:
        shifts = detect_phase_shifts(series)
    lines = [
        "Figure 2(a). Messages per hour",
        "==============================",
        sparkline(series.counts.tolist()),
        f"buckets: {len(series.counts)}  total: {format_int(int(series.counts.sum()))}"
        f"  mean rate: {series.mean_rate():.3f} msg/s",
    ]
    for shift in shifts:
        lines.append(
            f"  shift at {_date(shift.timestamp)}: "
            f"{shift.mean_before:.1f} -> {shift.mean_after:.1f} msgs/hour "
            f"(x{shift.magnitude:.2f})"
        )
    if not shifts:
        lines.append("  no phase shifts detected")
    return "\n".join(lines)


def figure2b(distribution: SourceDistribution, top: int = 15) -> str:
    """Figure 2(b): messages by source, sorted by decreasing quantity."""
    ranked = distribution.ranked()
    lines = [
        "Figure 2(b). Messages by source (rank order)",
        "============================================",
    ]
    peak = ranked[0][1] if ranked else 0
    for source, count in ranked[:top]:
        label = source if source and source.isprintable() else "<corrupted>"
        lines.append(
            f"  {label:<16} |{bar(count, peak, 36).ljust(36)}| {format_int(count)}"
        )
    if len(ranked) > top:
        lines.append(f"  ... {len(ranked) - top} more sources")
    lines.append(
        f"  sources: {len(ranked)}   top-1 concentration: "
        f"{distribution.concentration(1):.3f}   unattributed msgs: "
        f"{format_int(distribution.unattributed())}"
    )
    return "\n".join(lines)


def _scatter_row(
    times: Sequence[float], t0: float, t1: float, width: int = 72
) -> str:
    cells = [" "] * width
    span = max(t1 - t0, 1e-9)
    for t in times:
        idx = min(width - 1, max(0, int((t - t0) / span * width)))
        cells[idx] = "•"
    return "".join(cells)


def figure3(
    alerts: Sequence[Alert],
    category_a: str = "GM_PAR",
    category_b: str = "GM_LANAI",
    window: float = 300.0,
) -> str:
    """Figure 3: two correlated alert classes on a shared time axis.

    On an :class:`~repro.store.query.AlertQuery` (or a stored view) the
    bounds come from partition metadata and the two category series from
    single-partition column scans; otherwise one streaming pass extracts
    the two timestamp columns without materializing the alerts.
    """
    query = (
        alerts
        if callable(getattr(alerts, "category_timestamps", None))
        else getattr(alerts, "query", None)
    )
    if query is not None:
        bounds = query.time_bounds()
        if bounds is None:
            return "Figure 3. (no alerts)"
        t0, t1 = bounds
        times_a = [float(t) for t in query.category_timestamps(category_a)]
        times_b = [float(t) for t in query.category_timestamps(category_b)]
    else:
        times_a, times_b = [], []
        t0, t1 = math.inf, -math.inf
        for alert in alerts:
            ts = alert.timestamp
            t0 = ts if ts < t0 else t0
            t1 = ts if ts > t1 else t1
            if alert.category == category_a:
                times_a.append(ts)
            elif alert.category == category_b:
                times_b.append(ts)
        if t1 < t0:
            return "Figure 3. (no alerts)"
    corr = tag_correlation_from_times(
        category_a, category_b, times_a, times_b, window=window
    )
    label_width = max(len(category_a), len(category_b))
    lines = [
        f"Figure 3. {category_a} vs {category_b} over time",
        "=" * 48,
        f"  {category_a.rjust(label_width)} |{_scatter_row(times_a, t0, t1)}|",
        f"  {category_b.rjust(label_width)} |{_scatter_row(times_b, t0, t1)}|",
        f"  window {_date(t0)} .. {_date(t1)}",
        f"  counts: {len(times_a)} vs {len(times_b)}   coincidences(±{window:g}s): "
        f"{corr.coincidences}   rate: {corr.coincidence_rate:.2f}   "
        f"correlated: {corr.is_correlated}",
    ]
    return "\n".join(lines)


def figure4(
    filtered_alerts: Sequence[Alert],
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> str:
    """Figure 4: categorized filtered alerts over time, one row per tag.

    Single pass over ``filtered_alerts`` — a list, a generator, or a
    columnar store scan — keeping only the timestamp columns.  Row order
    is by descending count with ties broken by first appearance in the
    stream, identical between the in-memory and spilled paths.
    """
    by_category: Dict[str, List[float]] = {}
    lo_seen, hi_seen = math.inf, -math.inf
    for alert in filtered_alerts:
        ts = alert.timestamp
        by_category.setdefault(alert.category, []).append(ts)
        lo_seen = ts if ts < lo_seen else lo_seen
        hi_seen = ts if ts > hi_seen else hi_seen
    if not by_category:
        return "Figure 4. (no alerts)"
    lo = t0 if t0 is not None else lo_seen
    hi = t1 if t1 is not None else hi_seen
    order = sorted(by_category, key=lambda c: -len(by_category[c]))
    label_width = max(len(c) for c in order)
    lines = [
        "Figure 4. Filtered alerts by category over time",
        "===============================================",
    ]
    for category in order:
        times = by_category[category]
        lines.append(
            f"  {category.rjust(label_width)} "
            f"|{_scatter_row(times, lo, hi)}| {len(times)}"
        )
    lines.append(f"  window {_date(lo)} .. {_date(hi)}")
    return "\n".join(lines)


def figure5(ecc_alerts: Sequence[Alert]) -> str:
    """Figure 5: ECC interarrivals — empirical CDF and log-gap histogram.

    Renders both of the paper's views of the same data and reports the
    model comparison: ECC should look exponential-ish/lognormal-ish where
    other categories do not.
    """
    fast = getattr(ecc_alerts, "timestamps", None)
    if callable(fast):
        times = np.sort(np.asarray(fast(), dtype=float))
    else:
        times = np.sort(
            np.asarray([a.timestamp for a in ecc_alerts], dtype=float)
        )
    gaps = np.diff(times) if times.size >= 2 else np.empty(0)
    lines = [
        "Figure 5. ECC alert interarrival distribution",
        "=============================================",
    ]
    if gaps.size < 3:
        lines.append("  (too few ECC alerts for a distribution)")
        return "\n".join(lines)
    values, heights = empirical_cdf(gaps)
    quantiles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
    lines.append("  (a) empirical CDF (hours):")
    for q in quantiles:
        idx = min(len(values) - 1, int(q * len(values)))
        lines.append(f"      P(gap <= {values[idx] / 3600.0:10.2f} h) = {q:.2f}")
    hist = log_histogram(gaps, bins_per_decade=2)
    labels = [f"1e{edge:.1f}s" for edge in hist.bin_edges[:-1]]
    lines.append("  (b) histogram of log10(gap):")
    lines.extend("      " + row for row in histogram_rows(labels, hist.counts.tolist()))
    comparison = compare_models(gaps)
    for name, fit in comparison.fits.items():
        lines.append(
            f"  fit {name:<12} KS={fit.ks_statistic:.3f} p={fit.ks_pvalue:.3f}"
        )
    best = comparison.best_name if comparison.best_name else "none (all rejected)"
    lines.append(f"  best-fitting model: {best}")
    return "\n".join(lines)


def figure6(
    histograms: Dict[str, LogHistogram],
) -> str:
    """Figure 6: filtered interarrival log-histograms per system.

    The paper's shape claim: bimodal on BG/L (correlated alerts and
    residual redundancy), unimodal on Spirit.
    """
    lines = [
        "Figure 6. Filtered alert interarrival log-histograms",
        "====================================================",
    ]
    for system, hist in histograms.items():
        labels = [f"1e{edge:.1f}s" for edge in hist.bin_edges[:-1]]
        lines.append(f"  {system}: modes={hist.mode_count()} "
                     f"bimodal={hist.is_bimodal()}")
        lines.extend("    " + row for row in histogram_rows(labels, hist.counts.tolist()))
        lines.append("")
    return "\n".join(lines).rstrip()


def liberty_figures(result, records=None) -> str:
    """Figures 2(a), 2(b), 3, and 4 from one Liberty pipeline result.

    ``records`` supplies the full message stream for the traffic figures
    when the caller kept it; alert-only figures come from the result.
    """
    sections = []
    if records is not None:
        records = list(records)
        sections.append(figure2a(hourly_message_counts(records)))
        sections.append(figure2b(messages_by_source(records)))
    sections.append(figure3(result.raw_alerts))
    sections.append(figure4(result.filtered_alerts))
    return "\n\n".join(sections)


def all_figures(results: Dict[str, object]) -> str:
    """Figures 3-6 from pipeline results alone (no record stream).

    Figures 1 and 2 need the raw message stream or the operational
    timeline, which neither a result nor an alert store retains; this
    renders every figure that replays from the alerts themselves, so it
    works identically on live results and on results loaded back from a
    spilled store directory (``repro report``).
    """
    sections: List[str] = []
    if "liberty" in results:
        sections.append(figure3(results["liberty"].raw_alerts))
        sections.append(figure4(results["liberty"].filtered_alerts))
    if "thunderbird" in results:
        ecc = results["thunderbird"].alerts.filtered().where("ECC")
        sections.append(figure5(ecc))
    hist_systems = [s for s in ("bgl", "spirit") if s in results]
    if hist_systems:
        sections.append(
            figure6(
                {
                    system: log_histogram(
                        interarrival_times(
                            results[system].alerts.filtered()
                        ),
                        bins_per_decade=2,
                    )
                    for system in hist_systems
                }
            )
        )
    return "\n\n".join(sections)

"""Text renderers for the paper's Tables 1-6.

Each ``tableN`` function regenerates the corresponding table from live
pipeline results (Table 1 from static specs), printing the same rows and
columns the paper reports plus, where useful, the paper's reference
numbers for side-by-side comparison.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.categories import AlertType
from ..core.rules import get_ruleset
from ..core.rules.bgl import OTHER_NAMES as BGL_OTHER_NAMES
from ..logmodel.record import RasSeverity, SyslogSeverity
from ..pipeline import PipelineResult
from ..systems.specs import LOG_SPECS, SYSTEMS
from .format import format_float, format_int, format_pct, render_table

#: Presentation order used throughout the paper.
SYSTEM_ORDER = ("bgl", "thunderbird", "redstorm", "spirit", "liberty")


def table1() -> str:
    """Table 1: system characteristics at the time of collection."""
    rows = []
    for name in SYSTEM_ORDER:
        spec = SYSTEMS[name]
        rows.append(
            (
                spec.external_name,
                spec.owner,
                spec.vendor,
                format_int(spec.top500_rank),
                format_int(spec.processors),
                format_int(spec.memory_gb),
                spec.interconnect,
            )
        )
    return render_table(
        ("System", "Owner", "Vendor", "Top500 Rank", "Procs",
         "Memory (GB)", "Interconnect"),
        rows,
        title="Table 1. System characteristics",
        align_left=(0, 1, 2, 6),
    )


def table2(results: Dict[str, PipelineResult]) -> str:
    """Table 2: log characteristics, measured vs the paper's reference.

    Absolute counts scale with the generator's ``scale``; the reference
    columns let the reader check the *shape* (ordering, ratios).
    """
    rows = []
    for name in SYSTEM_ORDER:
        if name not in results:
            continue
        result = results[name]
        ref = LOG_SPECS[name]
        rows.append(
            (
                SYSTEMS[name].external_name,
                ref.start_date,
                format_float(result.stats.days, 0),
                format_int(result.stats.raw_bytes),
                format_int(result.stats.compressed_bytes),
                format_float(result.stats.rate_bytes_per_second, 3),
                format_int(result.message_count),
                format_int(result.raw_alert_count),
                format_int(result.observed_categories),
                format_int(ref.messages),
                format_int(ref.alerts),
            )
        )
    return render_table(
        ("System", "Start Date", "Days", "Bytes", "Gzip Bytes",
         "Rate (B/s)", "Messages", "Alerts", "Cats",
         "Paper Msgs", "Paper Alerts"),
        rows,
        title="Table 2. Log characteristics (measured at the run's scale)",
        align_left=(0, 1),
    )


_TYPE_ORDER = (AlertType.HARDWARE, AlertType.SOFTWARE, AlertType.INDETERMINATE)
_TYPE_LABEL = {
    AlertType.HARDWARE: "Hardware",
    AlertType.SOFTWARE: "Software",
    AlertType.INDETERMINATE: "Indeterminate",
}


def table3(results: Dict[str, PipelineResult]) -> str:
    """Table 3: alert type distribution, raw vs filtered, all systems."""
    raw: Dict[AlertType, int] = {t: 0 for t in _TYPE_ORDER}
    filtered: Dict[AlertType, int] = {t: 0 for t in _TYPE_ORDER}
    for result in results.values():
        # Aggregate pushdown: on a spilled run this reads partition
        # metadata; on an in-memory run it is one pass over the lists.
        for alert_type, (raw_count, kept_count) in \
                result.alert_type_counts().items():
            raw[alert_type] += raw_count
            filtered[alert_type] += kept_count
    raw_total = sum(raw.values()) or 1
    filtered_total = sum(filtered.values()) or 1
    rows = []
    for alert_type in _TYPE_ORDER:
        rows.append(
            (
                _TYPE_LABEL[alert_type],
                format_int(raw[alert_type]),
                format_pct(100.0 * raw[alert_type] / raw_total),
                format_int(filtered[alert_type]),
                format_pct(100.0 * filtered[alert_type] / filtered_total),
            )
        )
    return render_table(
        ("Type", "Raw Count", "Raw %", "Filtered Count", "Filtered %"),
        rows,
        title="Table 3. Alert type distribution before and after filtering",
    )


def table4(
    results: Dict[str, PipelineResult],
    max_example_chars: int = 50,
    aggregate_bgl_others: bool = True,
) -> str:
    """Table 4: per-category raw/filtered counts with example bodies.

    Matches the paper's presentation: categories per system in descending
    raw count, BG/L's 31 minor categories aggregated into one
    "31 Others" row (pass ``aggregate_bgl_others=False`` for the full
    listing).
    """
    rows: List[tuple] = []
    for name in SYSTEM_ORDER:
        if name not in results:
            continue
        result = results[name]
        ruleset = get_ruleset(name)
        counts = result.category_counts()
        rows.append(
            (
                f"{SYSTEMS[name].external_name}",
                "",
                format_int(result.raw_alert_count),
                format_int(result.filtered_alert_count),
                "",
            )
        )
        others_raw = others_filtered = 0
        category_rows = []
        for category in ruleset:
            raw_count, filtered_count = counts.get(category.name, (0, 0))
            if raw_count == 0:
                continue
            if (
                aggregate_bgl_others
                and name == "bgl"
                and category.name in BGL_OTHER_NAMES
            ):
                others_raw += raw_count
                others_filtered += filtered_count
                continue
            example = category.example
            if len(example) > max_example_chars:
                example = example[: max_example_chars - 3] + "..."
            category_rows.append(
                (
                    f"  {category.alert_type.value} / {category.name}",
                    "",
                    raw_count,
                    filtered_count,
                    example,
                )
            )
        category_rows.sort(key=lambda row: -row[2])
        if others_raw:
            category_rows.append(
                (
                    f"  I / {len(BGL_OTHER_NAMES)} Others",
                    "",
                    others_raw,
                    others_filtered,
                    "machine check interrupt",
                )
            )
        rows.extend(
            (label, blank, format_int(raw_c), format_int(filt_c), example)
            for label, blank, raw_c, filt_c, example in category_rows
        )
    return render_table(
        ("Alert Type/Cat.", "", "Raw", "Filtered", "Example Message Body"),
        rows,
        title="Table 4. Alert categories per system",
        align_left=(0, 4),
    )


def table5(result: PipelineResult) -> str:
    """Table 5: BG/L severity distribution among messages and alerts."""
    if result.system != "bgl":
        raise ValueError("Table 5 is defined for the BG/L result")
    order = [sev.name for sev in RasSeverity]
    rows = [
        (label, format_int(m), format_pct(pm), format_int(a), format_pct(pa))
        for label, m, pm, a, pa in result.severity_tab.rows(order)
    ]
    return render_table(
        ("Severity", "Messages", "Msg %", "Alerts", "Alert %"),
        rows,
        title="Table 5. BG/L severity distribution (messages vs expert alerts)",
    )


def table6(result: PipelineResult) -> str:
    """Table 6: Red Storm syslog severity distribution.

    Restricted to severity-bearing records (the syslog paths); the RAS TCP
    path "has no severity analog" and is excluded, as in the paper.
    """
    if result.system != "redstorm":
        raise ValueError("Table 6 is defined for the Red Storm result")
    order = [sev.name for sev in SyslogSeverity]
    rows = [
        (label, format_int(m), format_pct(pm), format_int(a), format_pct(pa))
        for label, m, pm, a, pa in result.severity_tab.rows(order)
    ]
    return render_table(
        ("Severity", "Messages", "Msg %", "Alerts", "Alert %"),
        rows,
        title="Table 6. Red Storm syslog severity distribution",
    )


def all_tables(results: Dict[str, PipelineResult]) -> str:
    """Every table the results cover, concatenated."""
    sections = [table1()]
    if results:
        sections.extend([table2(results), table3(results), table4(results)])
    if "bgl" in results:
        sections.append(table5(results["bgl"]))
    if "redstorm" in results:
        sections.append(table6(results["redstorm"]))
    return "\n\n".join(sections)

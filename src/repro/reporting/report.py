"""Full single-system analysis report.

Combines every analysis the library implements into one text document for
one machine — what an operations team would generate weekly: volume
statistics, category table, severity cross-tab, filtering effectiveness,
failure attribution, interarrival characterization, and traffic phases.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.interarrival import (
    interarrival_series,
    log_histogram,
    summary_statistics,
)
from ..core.attribution import attribution_summary, build_failure_reports
from ..core.correlated_filter import learn_correlated_groups
from ..core.filtering import sorted_by_time
from ..logmodel.record import RasSeverity, SyslogSeverity
from ..pipeline import PipelineResult
from .format import format_int, format_pct, render_table


def _severity_section(result: PipelineResult) -> Optional[str]:
    labels = (
        [s.name for s in RasSeverity]
        if result.system == "bgl"
        else [s.name for s in SyslogSeverity]
    )
    if not any(label in result.severity_tab.messages for label in labels):
        return None
    rows = [
        (label, format_int(m), format_pct(pm), format_int(a), format_pct(pa))
        for label, m, pm, a, pa in result.severity_tab.rows(labels)
        if m > 0
    ]
    return render_table(
        ("Severity", "Messages", "Msg %", "Alerts", "Alert %"),
        rows,
        title="Severity distribution",
    )


def _category_section(result: PipelineResult) -> str:
    rows = [
        (category, format_int(raw), format_int(filtered),
         format_pct(100.0 * (1 - filtered / raw) if raw else 0.0, 1))
        for category, (raw, filtered) in sorted(
            result.category_counts().items(), key=lambda kv: -kv[1][0]
        )
    ]
    return render_table(
        ("Category", "Raw", "Filtered", "Redundancy"),
        rows,
        title="Alert categories",
    )


def _attribution_section(result: PipelineResult) -> str:
    alerts = sorted_by_time(result.raw_alerts)
    groups = learn_correlated_groups(alerts, window=300.0)
    reports = build_failure_reports(alerts, window=120.0, groups=groups)
    stats = attribution_summary(reports)
    lines = [
        "Failure attribution",
        "===================",
        f"failure episodes:     {stats['reports']:,}",
        f"cascades:             {stats['cascades']:,} "
        f"({format_pct(100 * stats['cascade_fraction'], 1)})",
        f"shared-resource:      {stats['shared_resource']:,}",
        f"alerts per failure:   {stats['mean_alerts_per_failure']:.1f}",
    ]
    if groups:
        lines.append(
            "correlated tag groups: "
            + "; ".join(" <-> ".join(sorted(g)) for g in groups)
        )
    worst = sorted(reports, key=lambda r: -r.alert_count)[:5]
    if worst:
        lines.append("largest episodes:")
        lines.extend(f"  {report.headline()}" for report in worst)
    return "\n".join(lines)


def _interarrival_section(result: PipelineResult) -> str:
    lines = ["Interarrival characterization (filtered alerts)",
             "==============================================="]
    # One pass over the filtered alerts — whether they are a list or a
    # columnar store scan — yields both the pooled and per-category gaps.
    series = interarrival_series(result.filtered_alerts)
    pooled = series.gaps
    if pooled.size >= 2:
        hist = log_histogram(pooled, bins_per_decade=2)
        stats = summary_statistics(pooled)
        lines.append(
            f"pooled: n={stats['count']} median={stats['median']:.0f}s "
            f"cv={stats['cv']:.2f} modes={hist.mode_count()} "
            f"bimodal={hist.is_bimodal()}"
        )
    for category, gaps in sorted(series.by_category.items()):
        if gaps.size < 5:
            continue
        stats = summary_statistics(gaps)
        flavor = "independent-ish" if stats["cv"] < 1.5 else "correlated"
        lines.append(
            f"  {category:<12} n={stats['count']:<6} "
            f"median={stats['median']:>10.0f}s cv={stats['cv']:>6.2f}  "
            f"[{flavor}]"
        )
    return "\n".join(lines)


def system_report(result: PipelineResult) -> str:
    """The full report for one pipeline result."""
    sections: List[str] = [
        f"Analysis report: {result.system}",
        "#" * 40,
        result.summary(),
        _category_section(result),
    ]
    severity = _severity_section(result)
    if severity is not None:
        sections.append(severity)
    if result.raw_alerts:
        sections.append(_attribution_section(result))
        sections.append(_interarrival_section(result))
    return "\n\n".join(sections)

"""Plain-text table and chart primitives for the reporting layer.

Everything the benches print goes through these helpers so all tables
share one look: left-aligned text columns, right-aligned numerics, Unicode
block bars for magnitude columns.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def format_int(value: int) -> str:
    """Thousands-separated integer."""
    return f"{value:,}"


def format_float(value: float, digits: int = 2) -> str:
    return f"{value:,.{digits}f}"


def format_pct(value: float, digits: int = 2) -> str:
    """A percentage with a trailing %, e.g. 98.04%."""
    return f"{value:.{digits}f}%"


def bar(value: float, maximum: float, width: int = 30) -> str:
    """A horizontal bar of ``width`` cells proportional to value/maximum."""
    if maximum <= 0 or value <= 0:
        return ""
    fraction = min(1.0, value / maximum)
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * (len(_BLOCKS) - 1))] if full < width else ""
    return "█" * full + partial


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
    title: Optional[str] = None,
    align_left: Sequence[int] = (0,),
) -> str:
    """Render rows as an aligned monospace table.

    ``align_left`` lists the column indices that are text (left-aligned);
    all other columns right-align, which is right for numbers.
    """
    materialized: List[List[str]] = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    left = set(align_left)

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i in left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """A one-line sparkline resampled to ``width`` characters."""
    if not values:
        return ""
    ticks = "▁▂▃▄▅▆▇█"
    n = len(values)
    resampled = []
    for i in range(min(width, n)):
        lo = i * n // min(width, n)
        hi = max(lo + 1, (i + 1) * n // min(width, n))
        resampled.append(max(values[lo:hi]))
    peak = max(resampled)
    if peak <= 0:
        return "▁" * len(resampled)
    return "".join(ticks[min(len(ticks) - 1, int(v / peak * (len(ticks) - 1)))]
                   for v in resampled)


def histogram_rows(
    labels: Sequence[str],
    counts: Sequence[float],
    width: int = 40,
) -> List[str]:
    """Label + bar + count rows for a histogram rendering."""
    peak = max(counts) if counts else 0
    label_width = max((len(label) for label in labels), default=0)
    rows = []
    for label, count in zip(labels, counts):
        rows.append(
            f"{label.rjust(label_width)} |{bar(count, peak, width).ljust(width)}| "
            f"{format_int(int(count))}"
        )
    return rows

"""Spatial and inter-tag correlation analysis (Figure 3, Section 4).

Two findings in the paper rest on correlation measurement:

* **spatial correlation** — the Thunderbird CPU clock bug was found
  "only after noticing that its occurrence was spatially correlated across
  nodes": alerts of one category landing on *many distinct nodes at nearly
  the same time* indicate a shared trigger, not independent hardware decay;
* **inter-tag correlation** — Liberty's ``GM_PAR``/``GM_LANAI`` pair
  (Figure 3): "GM_LANAI messages do not always follow GM_PAR messages, nor
  vice versa.  However, the correlation is clear."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.categories import Alert


@dataclass(frozen=True)
class SpatialCorrelation:
    """Spatial-correlation measurements for one category."""

    category: str
    incidents: int                 # bursts observed
    mean_distinct_sources: float   # distinct nodes per burst
    multi_source_fraction: float   # bursts touching >1 node

    @property
    def is_spatially_correlated(self) -> bool:
        """The CPU-bug signature: most bursts span several nodes."""
        return self.multi_source_fraction > 0.5 and self.mean_distinct_sources > 2.0


def spatial_correlation(
    alerts: Iterable[Alert],
    window: float = 60.0,
) -> Dict[str, SpatialCorrelation]:
    """Measure, per category, how many distinct nodes each burst touches.

    Bursts are runs of same-category alerts with gaps <= ``window``
    (tuple-style grouping).  A physical per-node process (ECC) yields
    single-node bursts; a shared software trigger (the SMP clock bug)
    yields multi-node bursts.
    """
    runs: Dict[str, List[List[Alert]]] = {}
    last_time: Dict[str, float] = {}
    for alert in alerts:
        series = runs.setdefault(alert.category, [])
        if not series or alert.timestamp - last_time[alert.category] > window:
            series.append([])
        series[-1].append(alert)
        last_time[alert.category] = alert.timestamp

    out: Dict[str, SpatialCorrelation] = {}
    for category, bursts in runs.items():
        distinct = [len({a.source for a in burst}) for burst in bursts]
        multi = sum(1 for d in distinct if d > 1)
        out[category] = SpatialCorrelation(
            category=category,
            incidents=len(bursts),
            mean_distinct_sources=float(np.mean(distinct)),
            multi_source_fraction=multi / len(bursts),
        )
    return out


@dataclass(frozen=True)
class TagCorrelation:
    """Lagged co-occurrence between two categories (the Figure 3 pair)."""

    category_a: str
    category_b: str
    count_a: int
    count_b: int
    coincidences: int        # a-alerts with a b-alert within the window
    coincidence_rate: float  # coincidences / min(count_a, count_b)
    mean_lag: float          # mean signed (b - a) lag over coincidences

    @property
    def is_correlated(self) -> bool:
        return self.coincidences >= 3 and self.coincidence_rate >= 0.5


def tag_correlation(
    alerts: Iterable[Alert],
    category_a: str,
    category_b: str,
    window: float = 300.0,
) -> TagCorrelation:
    """Measure how often ``category_a`` and ``category_b`` fire together.

    For each alert of the rarer category, look for the nearest alert of
    the other within ±``window`` seconds.  This is the quantitative form
    of eyeballing Figure 3's two aligned scatter rows.

    Accepts a materialized sequence or an
    :class:`~repro.store.query.AlertQuery` — a query answers with two
    single-partition column scans (predicate pushdown on the category
    key) instead of a full pass.
    """
    pushdown = getattr(alerts, "category_timestamps", None)
    if callable(pushdown):
        times_a = [float(t) for t in pushdown(category_a)]
        times_b = [float(t) for t in pushdown(category_b)]
        return tag_correlation_from_times(
            category_a, category_b, times_a, times_b, window
        )
    # Two passes are needed, so a one-shot generator would silently lose
    # the second category; demand a materialized sequence.
    if not isinstance(alerts, (list, tuple)):
        raise TypeError(
            "tag_correlation requires a list of alerts or an AlertQuery"
        )
    times_a = [a.timestamp for a in alerts if a.category == category_a]
    times_b = [a.timestamp for a in alerts if a.category == category_b]
    return tag_correlation_from_times(
        category_a, category_b, times_a, times_b, window
    )


def tag_correlation_from_times(
    category_a: str,
    category_b: str,
    times_a: Sequence[float],
    times_b: Sequence[float],
    window: float = 300.0,
) -> TagCorrelation:
    """The :func:`tag_correlation` computation over pre-extracted
    timestamp columns (what a chunked column scan hands over)."""
    if not times_a or not times_b:
        return TagCorrelation(category_a, category_b, len(times_a),
                              len(times_b), 0, 0.0, 0.0)
    base, other = (times_a, times_b) if len(times_a) <= len(times_b) else (times_b, times_a)
    other_arr = np.asarray(other)
    lags: List[float] = []
    for t in base:
        idx = int(np.searchsorted(other_arr, t))
        best = None
        for j in (idx - 1, idx):
            if 0 <= j < other_arr.size:
                lag = float(other_arr[j] - t)
                if abs(lag) <= window and (best is None or abs(lag) < abs(best)):
                    best = lag
        if best is not None:
            lags.append(best)
    rarer = min(len(times_a), len(times_b))
    return TagCorrelation(
        category_a=category_a,
        category_b=category_b,
        count_a=len(times_a),
        count_b=len(times_b),
        coincidences=len(lags),
        coincidence_rate=len(lags) / rarer if rarer else 0.0,
        mean_lag=float(np.mean(lags)) if lags else 0.0,
    )


def correlation_matrix(
    alerts: Sequence[Alert],
    categories: Sequence[str],
    window: float = 300.0,
) -> Dict[Tuple[str, str], TagCorrelation]:
    """Pairwise tag correlations over a category list (upper triangle)."""
    if not callable(getattr(alerts, "category_timestamps", None)):
        alerts = list(alerts)
    out: Dict[Tuple[str, str], TagCorrelation] = {}
    for i, cat_a in enumerate(categories):
        for cat_b in categories[i + 1:]:
            out[(cat_a, cat_b)] = tag_correlation(alerts, cat_a, cat_b, window)
    return out

"""Distribution fitting and goodness-of-fit for failure interarrivals.

Section 4: "frequently, for mathematical convenience ... failures are
modeled as occurring independently (exponential interarrival times)"; the
paper finds this appropriate only for low-level physical processes (the
Thunderbird ECC alerts, Figure 5, "appears exponential and is roughly log
normal with a heavy left tail") and warns that for everything else "in
even the best visual fit cases, heavy tails result in very poor statistical
goodness-of-fit metrics ... such modeling of this data is misguided."

This module makes those statements measurable: MLE fits for exponential,
lognormal, and Weibull models, Kolmogorov-Smirnov goodness-of-fit, and a
model comparison that reports — as the paper insists — when *no* model
fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class FitResult:
    """One fitted model with its KS goodness-of-fit."""

    name: str
    params: Tuple[float, ...]
    log_likelihood: float
    ks_statistic: float
    ks_pvalue: float

    @property
    def acceptable(self) -> bool:
        """Conventional alpha = 0.05 acceptance of the KS test."""
        return self.ks_pvalue >= 0.05


def _clean(sample: Sequence[float]) -> np.ndarray:
    array = np.asarray(list(sample), dtype=float)
    array = array[array > 0]
    if array.size < 2:
        raise ValueError("need at least two positive observations to fit")
    return array


def fit_exponential(sample: Sequence[float]) -> FitResult:
    """MLE exponential fit (rate = 1/mean), KS-tested against the sample."""
    array = _clean(sample)
    scale = float(array.mean())
    loglik = float(np.sum(stats.expon.logpdf(array, scale=scale)))
    ks = stats.kstest(array, "expon", args=(0, scale))
    return FitResult(
        name="exponential",
        params=(scale,),
        log_likelihood=loglik,
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
    )


def fit_lognormal(sample: Sequence[float]) -> FitResult:
    """MLE lognormal fit (on log-space mean/sigma), KS-tested."""
    array = _clean(sample)
    logs = np.log(array)
    mu = float(logs.mean())
    sigma = float(logs.std(ddof=0))
    sigma = max(sigma, 1e-9)
    loglik = float(
        np.sum(stats.lognorm.logpdf(array, s=sigma, scale=np.exp(mu)))
    )
    ks = stats.kstest(array, "lognorm", args=(sigma, 0, np.exp(mu)))
    return FitResult(
        name="lognormal",
        params=(mu, sigma),
        log_likelihood=loglik,
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
    )


def fit_weibull(sample: Sequence[float]) -> FitResult:
    """MLE Weibull fit (shape, scale), KS-tested.

    Weibull is the classic reliability-engineering alternative; shape < 1
    means a decreasing hazard (bursty), shape = 1 reduces to exponential.
    """
    array = _clean(sample)
    shape, _, scale = stats.weibull_min.fit(array, floc=0)
    loglik = float(
        np.sum(stats.weibull_min.logpdf(array, shape, 0, scale))
    )
    ks = stats.kstest(array, "weibull_min", args=(shape, 0, scale))
    return FitResult(
        name="weibull",
        params=(float(shape), float(scale)),
        log_likelihood=loglik,
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
    )


def fit_all(sample: Sequence[float]) -> Dict[str, FitResult]:
    """All three fits keyed by model name."""
    return {
        fit.name: fit
        for fit in (
            fit_exponential(sample),
            fit_lognormal(sample),
            fit_weibull(sample),
        )
    }


@dataclass(frozen=True)
class ModelComparison:
    """Outcome of comparing candidate models on one sample."""

    fits: Dict[str, FitResult]
    best_name: Optional[str]

    @property
    def best(self) -> Optional[FitResult]:
        return self.fits[self.best_name] if self.best_name else None

    @property
    def none_fit(self) -> bool:
        """True when every candidate is rejected — the paper's common case
        ("heavy tails result in very poor statistical goodness-of-fit")."""
        return all(not fit.acceptable for fit in self.fits.values())


def compare_models(sample: Sequence[float]) -> ModelComparison:
    """Fit all models; the best is the acceptable one with the highest
    likelihood, or ``None`` when all are rejected by KS at alpha = 0.05."""
    fits = fit_all(sample)
    acceptable = [fit for fit in fits.values() if fit.acceptable]
    if not acceptable:
        return ModelComparison(fits=fits, best_name=None)
    best = max(acceptable, key=lambda fit: fit.log_likelihood)
    return ModelComparison(fits=fits, best_name=best.name)


def empirical_cdf(sample: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted values and empirical CDF heights (the Figure 5(a) view)."""
    array = np.sort(np.asarray(list(sample), dtype=float))
    if array.size == 0:
        return array, array
    heights = np.arange(1, array.size + 1) / array.size
    return array, heights


def exponentiality_score(sample: Sequence[float]) -> float:
    """A [0, 1] score of how exponential (independent) a gap sample looks.

    Combines the KS p-value with a CV penalty: a truly Poisson process has
    CV ~ 1, so score = p_value * exp(-|cv - 1|).  Used by the Figure 5
    bench to assert ECC >> other categories.
    """
    array = _clean(sample)
    fit = fit_exponential(array)
    cv = float(array.std() / array.mean()) if array.mean() > 0 else 0.0
    return fit.ks_pvalue * float(np.exp(-abs(cv - 1.0)))

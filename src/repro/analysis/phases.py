"""Phase-shift detection in message traffic (system evolution).

Section 3.2.1, "System Evolution": "over the course of a system's
lifetime, anything from software upgrades to minor configuration changes
can drastically alter the meaning or character of the logs ...  The
ability to detect phase shifts in behavior would be a valuable tool for
triggering relearning or for knowing which existing behavioral model to
apply."  Figure 2(a) shows the motivating example — step changes in
Liberty's hourly message rate, the first caused by an OS upgrade.

The detector is a binary-segmentation changepoint search on the bucketed
rate series using a normalized mean-shift statistic — small, dependency-
free, and effective on step-shaped shifts like Figure 2(a)'s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .timeseries import RateSeries


@dataclass(frozen=True)
class PhaseShift:
    """One detected behavior change."""

    bucket_index: int
    timestamp: float
    mean_before: float
    mean_after: float

    @property
    def magnitude(self) -> float:
        """Relative rate change (new mean / old mean)."""
        if self.mean_before == 0:
            return float("inf") if self.mean_after > 0 else 1.0
        return self.mean_after / self.mean_before


def _best_split(values: np.ndarray) -> "tuple[int, float]":
    """The split index maximizing the normalized mean-shift statistic.

    For split k the statistic is |mean(left) - mean(right)| scaled by
    sqrt(k (n-k) / n) / std — the CUSUM-style score under which a true
    step change at k is the argmax in expectation.
    """
    n = len(values)
    std = values.std()
    if n < 4 or std == 0:
        return 0, 0.0
    cumulative = np.cumsum(values)
    total = cumulative[-1]
    ks = np.arange(1, n)
    left_means = cumulative[:-1] / ks
    right_means = (total - cumulative[:-1]) / (n - ks)
    weights = np.sqrt(ks * (n - ks) / n)
    scores = np.abs(left_means - right_means) * weights / std
    best = int(np.argmax(scores))
    return best + 1, float(scores[best])


def detect_phase_shifts(
    series: RateSeries,
    threshold: float = 3.0,
    min_segment: int = 24,
    max_shifts: int = 8,
) -> List[PhaseShift]:
    """Recursive binary segmentation on a rate series.

    Parameters
    ----------
    series:
        The bucketed traffic series (hourly, per Figure 2(a)).
    threshold:
        Minimum normalized shift score to accept a changepoint; 3.0 is a
        ~3-sigma bar against declaring noise a new phase.
    min_segment:
        Minimum buckets on each side of a shift (24 hourly buckets = one
        day), rejecting transient storms as "evolution".
    max_shifts:
        Recursion budget.
    """
    values = series.counts.astype(float)
    found: List[PhaseShift] = []

    def recurse(lo: int, hi: int, budget: int) -> None:
        if budget <= 0 or hi - lo < 2 * min_segment:
            return
        split, score = _best_split(values[lo:hi])
        if score < threshold or split < min_segment or (hi - lo) - split < min_segment:
            return
        cut = lo + split
        found.append(
            PhaseShift(
                bucket_index=cut,
                timestamp=series.start + cut * series.bucket_seconds,
                mean_before=float(values[lo:cut].mean()),
                mean_after=float(values[cut:hi].mean()),
            )
        )
        recurse(lo, cut, budget - 1)
        recurse(cut, hi, budget - 1)

    recurse(0, len(values), max_shifts)
    found.sort(key=lambda shift: shift.bucket_index)
    return found


def segment_means(
    series: RateSeries, shifts: Sequence[PhaseShift]
) -> List[float]:
    """Mean rate of each phase delimited by the detected shifts."""
    values = series.counts.astype(float)
    cuts = [0] + [shift.bucket_index for shift in shifts] + [len(values)]
    return [
        float(values[cuts[i]: cuts[i + 1]].mean()) if cuts[i + 1] > cuts[i] else 0.0
        for i in range(len(cuts) - 1)
    ]

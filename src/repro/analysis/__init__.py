"""Statistical analyses of tagged and filtered alert streams.

Implements the measurement half of the paper: interarrival statistics and
log-histograms (Figures 5-6), distribution fitting with goodness-of-fit
(Section 4's modeling discussion), spatial and inter-tag correlation
(Figure 3, the CPU-bug discovery), traffic time series and per-source
skew (Figure 2), phase-shift detection (system evolution), severity
cross-tabulation (Tables 5-6), and context-aware RAS metrics (Section 5).
"""

from .checkpointing import (
    CheckpointOutcome,
    daly_interval,
    empirical_optimum,
    interval_sweep,
    simulate_lost_work,
    synthetic_exponential_failures,
    young_interval,
)
from .correlation import (
    SpatialCorrelation,
    TagCorrelation,
    correlation_matrix,
    spatial_correlation,
    tag_correlation,
)
from .distributions import (
    FitResult,
    ModelComparison,
    compare_models,
    empirical_cdf,
    exponentiality_score,
    fit_all,
    fit_exponential,
    fit_lognormal,
    fit_weibull,
)
from .interarrival import (
    LogHistogram,
    interarrival_times,
    interarrivals_by_category,
    log_histogram,
    summary_statistics,
)
from .patterns import (
    Template,
    mine_templates,
    ruleset_from_templates,
    suggest_rules,
    template_coverage,
)
from .phases import PhaseShift, detect_phase_shifts, segment_means
from .ras import (
    LostWorkEntry,
    LostWorkReport,
    lost_work_report,
    mttf_sensitivity,
    naive_log_mttf,
)
from .severity_eval import (
    DetectorScore,
    SeverityCrossTab,
    score_severity_detector,
    severity_cross_tab,
)
from .timeseries import (
    RateSeries,
    SourceDistribution,
    bucket_counts,
    hourly_message_counts,
    messages_by_source,
    rate_bytes_per_second,
)

__all__ = [
    "CheckpointOutcome",
    "daly_interval",
    "empirical_optimum",
    "interval_sweep",
    "simulate_lost_work",
    "synthetic_exponential_failures",
    "young_interval",
    "SpatialCorrelation",
    "TagCorrelation",
    "correlation_matrix",
    "spatial_correlation",
    "tag_correlation",
    "FitResult",
    "ModelComparison",
    "compare_models",
    "empirical_cdf",
    "exponentiality_score",
    "fit_all",
    "fit_exponential",
    "fit_lognormal",
    "fit_weibull",
    "LogHistogram",
    "interarrival_times",
    "interarrivals_by_category",
    "log_histogram",
    "summary_statistics",
    "Template",
    "mine_templates",
    "ruleset_from_templates",
    "suggest_rules",
    "template_coverage",
    "PhaseShift",
    "detect_phase_shifts",
    "segment_means",
    "LostWorkEntry",
    "LostWorkReport",
    "lost_work_report",
    "mttf_sensitivity",
    "naive_log_mttf",
    "DetectorScore",
    "SeverityCrossTab",
    "score_severity_detector",
    "severity_cross_tab",
    "RateSeries",
    "SourceDistribution",
    "bucket_counts",
    "hourly_message_counts",
    "messages_by_source",
    "rate_bytes_per_second",
]

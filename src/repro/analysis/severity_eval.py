"""Severity-vs-expert-tag evaluation (the paper's Tables 5 and 6).

The paper cross-tabulates the severity field against its expert alert
tags to show severity is an unreliable detector: "if we had used the
severity field instead of the expert rules to tag alerts on BG/L, tagging
any message with a severity of FATAL or FAILURE as an alert, we would have
a false negative rate of 0% but a false positive rate of 59.34%"
(Section 3.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.severity import SeverityTaggerConfig
from ..core.tagging import Tagger
from ..logmodel.record import LogRecord


@dataclass
class SeverityCrossTab:
    """Per-severity message and alert counts — one of Tables 5/6.

    ``messages[label]`` counts all messages carrying that severity;
    ``alerts[label]`` counts the subset the expert rules tag as alerts.
    ``label`` is the severity string, or ``"(none)"`` for records without
    the field (the state of affairs on three of the five machines).
    """

    messages: Dict[str, int] = field(default_factory=dict)
    alerts: Dict[str, int] = field(default_factory=dict)

    NONE_LABEL = "(none)"

    def add(self, record: LogRecord, is_alert: bool) -> None:
        label = record.severity if record.severity is not None else self.NONE_LABEL
        self.messages[label] = self.messages.get(label, 0) + 1
        if is_alert:
            self.alerts[label] = self.alerts.get(label, 0) + 1

    def add_batch(
        self, records: Sequence[LogRecord], alert_indices: Iterable[int]
    ) -> None:
        """Batch form of :meth:`add`: every record counts as a message;
        the records at ``alert_indices`` also count as alerts.  Counter
        preserves first-occurrence order, so the tab's dicts grow in the
        same key order the per-record form produces."""
        messages = self.messages
        none_label = self.NONE_LABEL
        for label, count in Counter(
            record.severity for record in records
        ).items():
            if label is None:
                label = none_label
            messages[label] = messages.get(label, 0) + count
        alerts = self.alerts
        for label, count in Counter(
            records[i].severity for i in alert_indices
        ).items():
            if label is None:
                label = none_label
            alerts[label] = alerts.get(label, 0) + count

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_alerts(self) -> int:
        return sum(self.alerts.values())

    def rows(self, order: Sequence[str]) -> List[Tuple[str, int, float, int, float]]:
        """(label, messages, msg %, alerts, alert %) rows in a fixed order,
        matching the layout of Tables 5 and 6.

        Percentages are over the listed labels only: Table 6 covers just
        the severity-bearing syslog paths, so Red Storm's severity-less
        RAS-path records must not inflate the denominators.
        """
        total_m = sum(self.messages.get(label, 0) for label in order) or 1
        total_a = sum(self.alerts.get(label, 0) for label in order) or 1
        out = []
        for label in order:
            m = self.messages.get(label, 0)
            a = self.alerts.get(label, 0)
            out.append((label, m, 100.0 * m / total_m, a, 100.0 * a / total_a))
        return out


def severity_cross_tab(
    records: Iterable[LogRecord],
    tagger: Tagger,
) -> SeverityCrossTab:
    """Build the severity/alert cross-tabulation in one pass."""
    tab = SeverityCrossTab()
    for record in records:
        tab.add(record, tagger.match(record) is not None)
    return tab


@dataclass(frozen=True)
class DetectorScore:
    """Confusion counts of a severity-based detector vs expert tags."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def false_positive_rate(self) -> float:
        """Fraction of severity-flagged messages that are not alerts —
        the 59.34 % number in Section 3.2 uses this definition (1 -
        precision), not FP over all negatives."""
        flagged = self.true_positives + self.false_positives
        return self.false_positives / flagged if flagged else 0.0

    @property
    def false_negative_rate(self) -> float:
        """Fraction of expert alerts the detector misses."""
        actual = self.true_positives + self.false_negatives
        return self.false_negatives / actual if actual else 0.0

    @property
    def precision(self) -> float:
        return 1.0 - self.false_positive_rate

    @property
    def recall(self) -> float:
        return 1.0 - self.false_negative_rate


def score_severity_detector(
    records: Iterable[LogRecord],
    tagger: Tagger,
    config: Optional[SeverityTaggerConfig] = None,
) -> DetectorScore:
    """Score a severity-based detector against the expert ruleset.

    With the default config (FATAL/FAILURE on BG/L) this reproduces the
    paper's 0 % FN / 59.34 % FP evaluation.
    """
    config = config or SeverityTaggerConfig.bgl_fatal_failure()
    tp = fp = tn = fn = 0
    for record in records:
        flagged = (
            record.severity is not None
            and record.severity in config.alert_labels
        )
        actual = tagger.match(record) is not None
        if flagged and actual:
            tp += 1
        elif flagged:
            fp += 1
        elif actual:
            fn += 1
        else:
            tn += 1
    return DetectorScore(tp, fp, tn, fn)

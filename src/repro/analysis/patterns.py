"""Frequent message-template mining (Vaarandi-style clustering).

The paper's related work includes Vaarandi's "breadth-first algorithm for
mining frequent patterns from event logs" [27] and frames automatic alert
identification as an open problem whose first step is taming "the
unstructured message bodies ... the shorthand of multiple programmers"
(Section 3.2.1).  This module implements the SLCT-family approach:

1. count frequent (position, word) pairs over the message bodies;
2. form each line's *template* by keeping its frequent words and masking
   the rest as ``*`` wildcards;
3. cluster lines by template and report clusters by support.

The miner gives an unsupervised view of a log that an analyst can compare
against the expert rules: on generated data, the dominant mined templates
correspond to the calibrated categories — which the test suite checks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

WILDCARD = "*"


@dataclass(frozen=True)
class Template:
    """One mined message template."""

    tokens: Tuple[str, ...]
    support: int
    example: str

    def pattern(self) -> str:
        """The template as a display string, wildcards as ``*``."""
        return " ".join(self.tokens)

    def matches(self, text: str) -> bool:
        """Whether a message body instantiates this template."""
        words = text.split()
        if len(words) != len(self.tokens):
            return False
        return all(
            token == WILDCARD or token == word
            for token, word in zip(self.tokens, words)
        )


def _line_template(
    words: Sequence[str],
    frequent: "set[Tuple[int, str]]",
) -> Tuple[str, ...]:
    return tuple(
        word if (i, word) in frequent else WILDCARD
        for i, word in enumerate(words)
    )


def mine_templates(
    bodies: Iterable[str],
    min_support: int = 10,
    max_templates: int = 100,
) -> List[Template]:
    """Mine frequent templates from message bodies.

    Two passes (the bodies iterable must be re-iterable or a list):
    first counts (position, word) frequencies, second forms templates.
    Templates with fewer than ``min_support`` lines are dropped; the rest
    are returned in decreasing support order.
    """
    if min_support < 1:
        raise ValueError("min_support must be at least 1")
    bodies = list(bodies)

    word_counts: Counter = Counter()
    for body in bodies:
        for i, word in enumerate(body.split()):
            word_counts[(i, word)] += 1
    frequent = {
        key for key, count in word_counts.items() if count >= min_support
    }

    clusters: Dict[Tuple[str, ...], List[str]] = {}
    for body in bodies:
        template = _line_template(body.split(), frequent)
        clusters.setdefault(template, []).append(body)

    templates = [
        Template(tokens=tokens, support=len(lines), example=lines[0])
        for tokens, lines in clusters.items()
        if len(lines) >= min_support and any(t != WILDCARD for t in tokens)
    ]
    templates.sort(key=lambda t: (-t.support, t.pattern()))
    return templates[:max_templates]


def template_coverage(
    templates: Sequence[Template], bodies: Iterable[str]
) -> float:
    """Fraction of bodies matched by at least one mined template."""
    bodies = list(bodies)
    if not bodies:
        return 0.0
    matched = sum(
        1
        for body in bodies
        if any(template.matches(body) for template in templates)
    )
    return matched / len(bodies)


def ruleset_from_templates(
    system: str,
    templates: Sequence[Template],
    alert_keywords: Sequence[str] = (
        "error", "fail", "failed", "failure", "panic", "fatal", "abort",
        "refused", "cannot", "timeout", "assert",
    ),
    max_rules: int = 32,
):
    """Bootstrap an expert-style ruleset from mined templates.

    The bridge from unsupervised mining to the paper's tagging workflow
    for a machine *without* administrator rules: templates whose literal
    words contain failure-indicating keywords become candidate categories
    (``MINED_001`` ...), compiled into a :class:`~repro.core.categories.Ruleset`
    the ordinary :class:`~repro.core.tagging.Tagger` can run.  The output
    is a starting point for expert review, not a replacement for it — the
    paper is emphatic that automatic identification alone is insufficient.
    """
    import re as _re

    from ..core.categories import AlertType, CategoryDef, Ruleset

    keywords = tuple(k.lower() for k in alert_keywords)
    categories = []
    for index, template in enumerate(templates):
        literals = " ".join(
            token for token in template.tokens if token != WILDCARD
        ).lower()
        if not any(keyword in literals for keyword in keywords):
            continue
        pattern = " ".join(
            _re.escape(token) if token != WILDCARD else r"\S+"
            for token in template.tokens
        )
        categories.append(
            CategoryDef(
                name=f"MINED_{index + 1:03d}",
                system=system,
                alert_type=AlertType.INDETERMINATE,
                pattern=pattern,
                example=template.example,
            )
        )
        if len(categories) >= max_rules:
            break
    return Ruleset(system=system, categories=tuple(categories))


def suggest_rules(
    templates: Sequence[Template],
    max_rules: int = 20,
    min_literal_words: int = 3,
) -> List[str]:
    """Turn mined templates into candidate regex rules.

    The bridge from unsupervised mining to the expert-rule workflow: each
    sufficiently literal template becomes an anchored regex an
    administrator could review, edit, and adopt — the "automatically
    identifying alerts" direction the paper marks as open.
    """
    import re as _re

    rules: List[str] = []
    for template in templates:
        literals = [t for t in template.tokens if t != WILDCARD]
        if len(literals) < min_literal_words:
            continue
        parts = [
            _re.escape(token) if token != WILDCARD else r"\S+"
            for token in template.tokens
        ]
        rules.append(" ".join(parts))
        if len(rules) >= max_rules:
            break
    return rules

"""Checkpoint-interval analysis under measured failure processes.

The paper's Section 4 opens with why failure models matter: "these models
are then used to study the effects of failures on other aspects of the
system, such as job scheduling or checkpointing performance", and then
warns that assuming independence (exponential interarrivals) is wrong for
most alert categories.  The authors' own prior work (cooperative
checkpointing [14, 15]) is exactly such a consumer.

This module closes that loop quantitatively:

* :func:`young_interval` / :func:`daly_interval` — the classical optimal
  checkpoint intervals, which *assume* exponential interarrivals with a
  given MTBF;
* :func:`simulate_lost_work` — replay an application against an actual
  failure-time sequence (e.g. the filtered alerts of one category) and
  measure wasted time for a given checkpoint interval;
* :func:`interval_sweep` — wasted time across intervals, exposing how far
  the exponential-assumption optimum sits from the empirical optimum when
  failures are correlated — the paper's "one size does not fit all" made
  measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


def young_interval(mtbf: float, checkpoint_cost: float) -> float:
    """Young's first-order optimal interval: sqrt(2 * C * MTBF)."""
    if mtbf <= 0 or checkpoint_cost <= 0:
        raise ValueError("mtbf and checkpoint_cost must be positive")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(mtbf: float, checkpoint_cost: float) -> float:
    """Daly's higher-order refinement of Young's interval.

    Uses the perturbation solution
    ``sqrt(2 C M) * (1 + sqrt(C/(2M))/3 + (C/(2M))/9) - C`` for C < 2M,
    falling back to ``M`` otherwise (checkpointing cannot help when a
    checkpoint costs more than the time between failures).
    """
    if mtbf <= 0 or checkpoint_cost <= 0:
        raise ValueError("mtbf and checkpoint_cost must be positive")
    if checkpoint_cost >= 2.0 * mtbf:
        return mtbf
    ratio = math.sqrt(checkpoint_cost / (2.0 * mtbf))
    return (
        math.sqrt(2.0 * checkpoint_cost * mtbf)
        * (1.0 + ratio / 3.0 + ratio * ratio / 9.0)
        - checkpoint_cost
    )


@dataclass(frozen=True)
class CheckpointOutcome:
    """Result of replaying one (interval, failure-sequence) combination."""

    interval: float
    wall_time: float
    useful_work: float
    checkpoint_overhead: float
    rework: float
    failures_hit: int

    @property
    def efficiency(self) -> float:
        """Useful work per wall-clock second (1.0 = failure-free, no
        checkpoints)."""
        return self.useful_work / self.wall_time if self.wall_time > 0 else 0.0


def simulate_lost_work(
    failure_times: Sequence[float],
    interval: float,
    checkpoint_cost: float,
    work_target: float,
    restart_cost: float = 0.0,
    start: float = 0.0,
) -> CheckpointOutcome:
    """Replay an application against a concrete failure-time sequence.

    The application starts at ``start``, needs ``work_target`` seconds of
    computation, checkpoints every ``interval`` seconds of progress at
    ``checkpoint_cost`` each, and on a failure loses progress since the
    last completed checkpoint, pays ``restart_cost``, and resumes.  Wall
    time accrues until the work target is met (or all failures are
    consumed, after which execution is failure-free).
    """
    if interval <= 0 or checkpoint_cost < 0 or work_target <= 0:
        raise ValueError("interval and work_target must be positive")
    failures = sorted(t for t in failure_times if t >= start)
    failure_idx = 0
    now = start
    done = 0.0          # work safely checkpointed
    overhead = 0.0
    rework = 0.0
    hits = 0

    while done < work_target:
        segment_work = min(interval, work_target - done)
        needs_checkpoint = done + segment_work < work_target
        segment_span = segment_work + (checkpoint_cost if needs_checkpoint else 0.0)
        segment_end = now + segment_span

        if failure_idx < len(failures) and failures[failure_idx] < segment_end:
            # Failure mid-segment: everything since the last checkpoint is
            # lost; wall time ran until the failure plus the restart.
            failure_time = failures[failure_idx]
            failure_idx += 1
            hits += 1
            rework += failure_time - now
            now = failure_time + restart_cost
            overhead += restart_cost
            continue

        now = segment_end
        done += segment_work
        if needs_checkpoint:
            overhead += checkpoint_cost

    return CheckpointOutcome(
        interval=interval,
        wall_time=now - start,
        useful_work=work_target,
        checkpoint_overhead=overhead,
        rework=rework,
        failures_hit=hits,
    )


def interval_sweep(
    failure_times: Sequence[float],
    intervals: Sequence[float],
    checkpoint_cost: float,
    work_target: float,
    restart_cost: float = 0.0,
    start: float = 0.0,
) -> Dict[float, CheckpointOutcome]:
    """Replay every candidate interval against the same failure sequence."""
    return {
        interval: simulate_lost_work(
            failure_times, interval, checkpoint_cost, work_target,
            restart_cost=restart_cost, start=start,
        )
        for interval in intervals
    }


def empirical_optimum(
    outcomes: Dict[float, CheckpointOutcome]
) -> float:
    """The swept interval with the best efficiency."""
    if not outcomes:
        raise ValueError("no outcomes to compare")
    return max(outcomes, key=lambda interval: outcomes[interval].efficiency)


def synthetic_exponential_failures(
    rng: np.random.Generator,
    mtbf: float,
    horizon: float,
    start: float = 0.0,
) -> List[float]:
    """A Poisson failure sequence — the assumption Daly/Young encode —
    for comparing against measured (correlated) failure sequences."""
    times: List[float] = []
    t = start
    while True:
        t += float(rng.exponential(mtbf))
        if t >= start + horizon:
            return times
        times.append(t)

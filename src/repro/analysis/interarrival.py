"""Interarrival-time computation and log-histograms (Figures 5 and 6).

The paper studies the timing of *filtered* alerts: "modeling the timing of
failure events is a common endeavor in systems research" (Section 4).  Its
instruments are the interarrival-time sequence (gaps between consecutive
alerts), per category or pooled, and the histogram of gap logarithms —
Figure 6 plots "the log distribution of interarrival times after
filtering", whose modality is the paper's diagnostic: bimodal on BG/L
(residual redundancy + correlated failures), unimodal on Spirit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.categories import Alert


def _gaps_from_times(times: np.ndarray) -> np.ndarray:
    if times.size < 2:
        return np.empty(0)
    gaps = np.diff(times)
    if (gaps < 0).any():
        raise ValueError("alerts must be sorted by non-decreasing time")
    return gaps


def interarrival_times(alerts: Iterable[Alert]) -> np.ndarray:
    """Gaps (seconds) between consecutive alerts of a time-sorted stream.

    Single pass over ``alerts`` — a generator is consumed exactly once.
    An :class:`~repro.store.query.AlertQuery` takes the column fast
    path: timestamps decode straight from column pages with no per-alert
    objects.  Callers that need the pooled *and* the per-category gaps
    from one non-restartable stream must use :func:`interarrival_series`
    (calling this *and* :func:`interarrivals_by_category` on the same
    generator would find it already exhausted).
    """
    fast = getattr(alerts, "timestamps", None)
    if callable(fast):
        times = np.asarray(fast(), dtype=float)
    else:
        times = np.array([alert.timestamp for alert in alerts], dtype=float)
    return _gaps_from_times(times)


def interarrivals_by_category(
    alerts: Iterable[Alert],
) -> Dict[str, np.ndarray]:
    """Per-category gap arrays from one time-sorted stream.

    Single pass, generator-safe; categories appear in first-appearance
    (stream) order.  Only categories with at least two alerts — one gap
    — are present.
    """
    times: Dict[str, List[float]] = {}
    for alert in alerts:
        times.setdefault(alert.category, []).append(alert.timestamp)
    return {
        category: np.diff(np.array(series))
        for category, series in times.items()
        if len(series) >= 2
    }


@dataclass(frozen=True)
class InterarrivalSeries:
    """Pooled and per-category gaps computed from one stream pass."""

    #: Gaps between consecutive alerts of the whole stream.
    gaps: np.ndarray
    #: Per-category gap arrays, categories in first-appearance order.
    by_category: Dict[str, np.ndarray]


def interarrival_series(alerts: Iterable[Alert]) -> InterarrivalSeries:
    """Pooled *and* per-category interarrival gaps in one pass.

    This is the generator-safe (and store-scan-safe) replacement for
    calling :func:`interarrival_times` and
    :func:`interarrivals_by_category` back to back on the same
    iterable, which consumed it twice: here the stream is walked exactly
    once, whether it is a list, a generator, or a columnar store scan,
    and the two views are byte-identical to the historical two-call
    results on a re-iterable input.
    """
    pooled: List[float] = []
    per_category: Dict[str, List[float]] = {}
    for alert in alerts:
        pooled.append(alert.timestamp)
        per_category.setdefault(alert.category, []).append(alert.timestamp)
    gaps = _gaps_from_times(np.asarray(pooled, dtype=float))
    by_category = {
        category: np.diff(np.array(series))
        for category, series in per_category.items()
        if len(series) >= 2
    }
    return InterarrivalSeries(gaps=gaps, by_category=by_category)


@dataclass(frozen=True)
class LogHistogram:
    """Histogram of log10(gap): bin left edges (log10 seconds) and counts."""

    bin_edges: np.ndarray   # length n+1, log10 seconds
    counts: np.ndarray      # length n

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def mode_count(self) -> int:
        """Number of local maxima — Figure 6's modality diagnostic.

        A bin is a mode when strictly greater than the nearest differing
        neighbors on both sides (plateaus count once); leading/trailing
        zeros are ignored.
        """
        counts = self.counts.astype(float)
        nonzero = np.nonzero(counts)[0]
        if nonzero.size == 0:
            return 0
        trimmed = counts[nonzero[0]: nonzero[-1] + 1]
        # Collapse plateaus so "equal then down" reads as one peak.
        collapsed = [trimmed[0]]
        for value in trimmed[1:]:
            if value != collapsed[-1]:
                collapsed.append(value)
        modes = 0
        for i, value in enumerate(collapsed):
            left_ok = i == 0 or collapsed[i - 1] < value
            right_ok = i == len(collapsed) - 1 or collapsed[i + 1] < value
            if left_ok and right_ok:
                modes += 1
        return modes

    def is_bimodal(self, min_valley_depth: float = 0.5) -> bool:
        """Whether two well-separated modes exist.

        ``min_valley_depth``: the valley between the two tallest peaks must
        dip below this fraction of the smaller peak — guards against
        counting histogram noise as a second mode.
        """
        counts = self.counts.astype(float)
        if counts.sum() == 0:
            return False
        peak_idx = [
            i
            for i in range(len(counts))
            if counts[i] > 0
            and (i == 0 or counts[i] >= counts[i - 1])
            and (i == len(counts) - 1 or counts[i] >= counts[i + 1])
        ]
        if len(peak_idx) < 2:
            return False
        # The two tallest peaks, then the deepest valley between them.
        peak_idx.sort(key=lambda i: counts[i], reverse=True)
        a, b = sorted(peak_idx[:2])
        if b - a < 2:
            return False
        valley = counts[a + 1: b].min()
        smaller_peak = min(counts[a], counts[b])
        return valley <= min_valley_depth * smaller_peak


def log_histogram(
    gaps: Sequence[float],
    bins_per_decade: int = 4,
    min_gap: float = 1e-2,
    range_log10: Optional[Tuple[float, float]] = None,
) -> LogHistogram:
    """Histogram gaps on a log10 axis (the Figure 6 view).

    Zero gaps (syslog's one-second timestamps make them common) are clamped
    to ``min_gap`` so they land in the leftmost decade rather than
    vanishing.
    """
    array = np.asarray(list(gaps), dtype=float)
    if array.size == 0:
        edges = np.array([math.log10(min_gap), math.log10(min_gap) + 1])
        return LogHistogram(bin_edges=edges, counts=np.zeros(1, dtype=int))
    logs = np.log10(np.clip(array, min_gap, None))
    if range_log10 is None:
        lo = math.floor(logs.min() * bins_per_decade) / bins_per_decade
        hi = math.ceil(logs.max() * bins_per_decade) / bins_per_decade
        if hi <= lo:
            hi = lo + 1.0 / bins_per_decade
    else:
        lo, hi = range_log10
    n_bins = max(1, int(round((hi - lo) * bins_per_decade)))
    counts, edges = np.histogram(logs, bins=n_bins, range=(lo, hi))
    return LogHistogram(bin_edges=edges, counts=counts)


def summary_statistics(gaps: Sequence[float]) -> Dict[str, float]:
    """Mean/median/CV and tail stats of an interarrival sample.

    The coefficient of variation is the classic burstiness flag: CV ~ 1 is
    Poisson-like (the paper's ECC case), CV >> 1 means correlated arrivals
    (most other categories, Section 4).
    """
    array = np.asarray(list(gaps), dtype=float)
    if array.size == 0:
        return {"count": 0, "mean": 0.0, "median": 0.0, "cv": 0.0,
                "p95": 0.0, "max": 0.0}
    mean = float(array.mean())
    std = float(array.std())
    return {
        "count": int(array.size),
        "mean": mean,
        "median": float(np.median(array)),
        "cv": std / mean if mean > 0 else 0.0,
        "p95": float(np.percentile(array, 95)),
        "max": float(array.max()),
    }

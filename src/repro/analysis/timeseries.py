"""Message-traffic time series and per-source distributions (Figure 2).

Two of the paper's most cited plots are simple aggregations the field kept
reusing: Figure 2(a), "the number of messages, bucketed by hour", whose
steps reveal system evolution ("an upgrade in the operating system after
the machine was put into production use"); and Figure 2(b), "the number of
messages by message source, sorted by decreasing quantity", whose extremes
expose chatty admin nodes and a cluster of corrupted, unattributable
sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..logmodel.record import LogRecord


@dataclass(frozen=True)
class RateSeries:
    """Messages per fixed-width bucket over an observation window."""

    bucket_seconds: float
    start: float
    counts: np.ndarray

    @property
    def end(self) -> float:
        return self.start + self.bucket_seconds * len(self.counts)

    def times(self) -> np.ndarray:
        """Bucket left edges as epoch seconds."""
        return self.start + np.arange(len(self.counts)) * self.bucket_seconds

    def mean_rate(self) -> float:
        """Mean messages/second over the window."""
        total_seconds = self.bucket_seconds * len(self.counts)
        return float(self.counts.sum()) / total_seconds if total_seconds else 0.0


def bucket_counts(
    timestamps: Iterable[float],
    bucket_seconds: float = 3600.0,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> RateSeries:
    """Count events per bucket (Figure 2(a) uses hourly buckets)."""
    if bucket_seconds <= 0:
        raise ValueError("bucket_seconds must be positive")
    array = np.asarray(list(timestamps), dtype=float)
    if array.size == 0:
        return RateSeries(bucket_seconds, start or 0.0, np.zeros(0, dtype=int))
    lo = float(array.min()) if start is None else start
    if end is None:
        # Window derived from the data: the max timestamp must land inside
        # the last bucket, even when it sits exactly on a bucket boundary.
        hi = float(array.max())
        n_buckets = int((hi - lo) // bucket_seconds) + 1
    else:
        hi = end
        n_buckets = max(1, int(np.ceil((hi - lo) / bucket_seconds)))
    idx = np.clip(((array - lo) / bucket_seconds).astype(int), 0, n_buckets - 1)
    counts = np.bincount(idx, minlength=n_buckets)
    return RateSeries(bucket_seconds, lo, counts)


def hourly_message_counts(
    records: Iterable[LogRecord],
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> RateSeries:
    """Figure 2(a): the hourly message-count series for a record stream."""
    return bucket_counts(
        (record.timestamp for record in records),
        bucket_seconds=3600.0,
        start=start,
        end=end,
    )


@dataclass(frozen=True)
class SourceDistribution:
    """Per-source message totals, Figure 2(b)'s rank view."""

    counts: Dict[str, int]

    def ranked(self) -> List[Tuple[str, int]]:
        """Sources by decreasing count (the Figure 2(b) x-axis order)."""
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def top(self, n: int) -> List[Tuple[str, int]]:
        return self.ranked()[:n]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def concentration(self, top_n: int = 1) -> float:
        """Fraction of messages from the ``top_n`` chattiest sources —
        e.g. Spirit's sn373 carrying >half of all alerts."""
        total = self.total
        if total == 0:
            return 0.0
        return sum(count for _, count in self.top(top_n)) / total

    def unattributed(self) -> int:
        """Messages whose source field is empty or non-printable — the
        corrupted cluster at the bottom of Figure 2(b)."""
        from ..logmodel.corruption import looks_garbled

        return sum(
            count
            for source, count in self.counts.items()
            if not source or looks_garbled(source)
        )


def messages_by_source(records: Iterable[LogRecord]) -> SourceDistribution:
    """Tally messages per source field (Figure 2(b))."""
    counts: Dict[str, int] = {}
    for record in records:
        counts[record.source] = counts.get(record.source, 0) + 1
    return SourceDistribution(counts=counts)


def rate_bytes_per_second(
    total_bytes: int, start: float, end: float
) -> float:
    """Table 2's rate column: log bytes per second of observation."""
    if end <= start:
        raise ValueError("end must be after start")
    return total_bytes / (end - start)

"""Context-aware RAS metrics (the paper's Section 5 recommendation).

"Despite the temptation to calculate values like MTTF from the system
logs, doing so can be inaccurate and misleading ... using logs to compare
machines is absurd.  We recommend calculating RAS metrics based on
quantities of direct interest, such as the amount of useful work lost due
to failures" (Quantify RAS, Section 5).

This module provides both sides of that argument:

* :func:`naive_log_mttf` — the misleading metric, computed anyway so its
  instability can be demonstrated (it moves with filtering thresholds and
  logging verbosity, not machine health);
* :func:`lost_work_report` — the recommended metric: node-seconds of work
  destroyed by failures, attributed with operational context so downtime
  failures do not count against production reliability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..core.categories import Alert
from ..simulation.opcontext import ContextTimeline, OperationalState
from ..simulation.workload import Job


def naive_log_mttf(
    filtered_alerts: Sequence[Alert],
    window_seconds: float,
) -> float:
    """Mean time to failure computed the naive way: window / alert count.

    The paper warns this is "a strong function of the specific system and
    logging configuration": change the filter threshold or a syslog
    verbosity knob and the "MTTF" moves while the hardware does not.
    Returns ``inf`` for an alert-free window.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    if not filtered_alerts:
        return float("inf")
    return window_seconds / len(filtered_alerts)


@dataclass(frozen=True)
class LostWorkEntry:
    """Work destroyed by one failure event."""

    timestamp: float
    category: str
    source: str
    lost_node_seconds: float
    state: OperationalState


@dataclass
class LostWorkReport:
    """Aggregate lost-work accounting over an observation window."""

    entries: List[LostWorkEntry]

    @property
    def total_lost_node_seconds(self) -> float:
        return sum(entry.lost_node_seconds for entry in self.entries)

    @property
    def production_lost_node_seconds(self) -> float:
        """Losses during production time only — the figure of merit."""
        return sum(
            entry.lost_node_seconds
            for entry in self.entries
            if entry.state is OperationalState.PRODUCTION_UPTIME
        )

    def by_category(self) -> "dict[str, float]":
        totals: dict = {}
        for entry in self.entries:
            totals[entry.category] = (
                totals.get(entry.category, 0.0) + entry.lost_node_seconds
            )
        return totals


def lost_work_report(
    filtered_alerts: Iterable[Alert],
    jobs: Sequence[Job],
    timeline: Optional[ContextTimeline] = None,
    job_fatal_categories: Optional[Sequence[str]] = None,
) -> LostWorkReport:
    """Account the work each (filtered) failure destroyed.

    A failure kills the jobs running on its source node at its timestamp;
    each killed job loses its elapsed node-seconds (no checkpointing).
    With a context timeline, failures outside production uptime are
    recorded but attributable separately — the paper's point that "some
    alerts may be ignored during a scheduled downtime that would be
    significant during production time" (Section 3.2.1).

    ``job_fatal_categories`` limits which categories kill jobs (e.g.
    Liberty's PBS bug); ``None`` means all filtered alerts do.
    """
    fatal = set(job_fatal_categories) if job_fatal_categories is not None else None
    entries: List[LostWorkEntry] = []
    for alert in filtered_alerts:
        if fatal is not None and alert.category not in fatal:
            continue
        state = (
            timeline.state_at(alert.timestamp)
            if timeline is not None
            else OperationalState.PRODUCTION_UPTIME
        )
        lost = 0.0
        for job in jobs:
            if job.start <= alert.timestamp < job.end and any(
                node.name == alert.source for node in job.nodes
            ):
                lost += (alert.timestamp - job.start) * job.width
        entries.append(
            LostWorkEntry(
                timestamp=alert.timestamp,
                category=alert.category,
                source=alert.source,
                lost_node_seconds=lost,
                state=state,
            )
        )
    return LostWorkReport(entries=entries)


def mttf_sensitivity(
    alerts: Sequence[Alert],
    window_seconds: float,
    thresholds: Sequence[float] = (1.0, 5.0, 60.0, 600.0),
) -> "dict[float, float]":
    """Naive MTTF as a function of the filtering threshold.

    The spread of the returned values *is* the paper's argument: a metric
    that varies by orders of magnitude with an analysis knob measures the
    knob, not the machine.
    """
    from ..core.filtering import log_filter_list

    return {
        threshold: naive_log_mttf(
            log_filter_list(list(alerts), threshold), window_seconds
        )
        for threshold in thresholds
    }

"""Engine sinks that spill the ruled-on alert flow to a columnar store.

:class:`ColumnarSink` replaces :class:`~repro.engine.stages.AlertListSink`
when a run spills: instead of appending to Python lists it streams every
``(alert, kept)`` verdict into a :class:`ColumnarStoreWriter`, and its
``raw_alerts`` / ``filtered_alerts`` attributes become lazy
:class:`~repro.store.query.StoredAlertSequence` views — same surface,
bounded memory.

:class:`StoreTeeSink` is the service-side composition: it wraps any
existing sink (the tenant's journaling sink) and tees the flow into a
writer without disturbing the inner sink's authority over counters and
tails, mirroring :class:`~repro.engine.stages.ObservingSink`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.categories import Alert
from ..core.filtering import FilterReport
from ..engine.stages import Sink, emit_batch
from .columnar import ColumnarStoreWriter
from .query import StoredAlertSequence


class ColumnarSink:
    """The spill-to-disk sink: verdicts go to column pages, not lists."""

    def __init__(self, report: FilterReport, writer: ColumnarStoreWriter):
        self.report = report
        self.writer = writer

    @property
    def raw_alerts(self) -> StoredAlertSequence:
        """Every tagged alert, as a lazy scan over committed + buffered
        state (readers see committed pages; call ``writer.commit()``
        before reading mid-run)."""
        return StoredAlertSequence(self.writer.reader(), kept=None)

    @property
    def filtered_alerts(self) -> StoredAlertSequence:
        return StoredAlertSequence(self.writer.reader(), kept=True)

    def emit(self, alert: Alert, kept: bool) -> None:
        self.report.record(alert, kept)
        self.writer.append(alert, kept)

    def emit_batch(self, pairs: Sequence[Tuple[Alert, bool]]) -> None:
        record = self.report.record
        append = self.writer.append
        for alert, kept in pairs:
            record(alert, kept)
            append(alert, kept)


class StoreTeeSink:
    """Tee a sink's alert flow into a columnar store writer.

    The inner sink stays authoritative for everything downstream reads
    (report, tails, counters); the writer is a side effect.  Commit
    cadence is the owner's job — the service commits at the same
    barriers it checkpoints the tenant.
    """

    def __init__(self, inner: Sink, writer: ColumnarStoreWriter):
        self.inner = inner
        self.writer = writer

    @property
    def report(self):
        return self.inner.report  # type: ignore[attr-defined]

    @property
    def raw_alerts(self):
        return self.inner.raw_alerts  # type: ignore[attr-defined]

    @property
    def filtered_alerts(self):
        return self.inner.filtered_alerts  # type: ignore[attr-defined]

    def emit(self, alert: Alert, kept: bool) -> None:
        self.inner.emit(alert, kept)
        self.writer.append(alert, kept)

    def emit_batch(self, pairs: Sequence[Tuple[Alert, bool]]) -> None:
        emit_batch(self.inner, pairs)
        self.writer.append_batch(pairs)

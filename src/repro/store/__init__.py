"""Spill-to-disk columnar alert store + the out-of-core query layer.

The analytics data plane: the engine sink streams every ruled-on alert
into struct-packed, CRC-framed column files partitioned by
``(category, hour)``; :class:`AlertQuery` is the single access path the
analysis and reporting layers read alerts through — partition-pushdown
aggregates, chunked column scans, and exact-emit-order object scans
that are byte-equivalent to the in-memory lists they replace.
"""

from .columnar import (
    ColumnarStore,
    ColumnarStoreWriter,
    Partition,
    PartitionMeta,
    StoreError,
    is_store_dir,
)
from .format import (
    COLUMN_MAGIC,
    PAGE_ROWS,
    PARTITION_SECONDS,
    StoreFormatError,
    partition_hour,
)
from .memory import MemoryAlertStore
from .query import AlertChunk, AlertQuery, StoredAlertSequence
from .replay import load_result, run_summary
from .sink import ColumnarSink, StoreTeeSink

__all__ = [
    "AlertChunk",
    "AlertQuery",
    "COLUMN_MAGIC",
    "ColumnarSink",
    "ColumnarStore",
    "ColumnarStoreWriter",
    "MemoryAlertStore",
    "PAGE_ROWS",
    "PARTITION_SECONDS",
    "Partition",
    "PartitionMeta",
    "StoreError",
    "StoreFormatError",
    "StoreTeeSink",
    "StoredAlertSequence",
    "is_store_dir",
    "load_result",
    "partition_hour",
    "run_summary",
]

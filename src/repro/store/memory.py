"""In-memory twin of the columnar store.

Every analytics consumer goes through :class:`~repro.store.query.AlertQuery`;
this class is the backend for results that never spilled — it wraps the
``PipelineResult`` raw/filtered lists behind the same scan/aggregate
surface as :class:`~repro.store.columnar.ColumnarStore`, which is what
makes "byte-identical with or without a store" a testable contract
instead of a convention.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.categories import Alert, AlertType


class MemoryAlertStore:
    """Alert lists presented through the store scan/aggregate interface."""

    complete = True

    def __init__(self, system: str, alerts: Sequence[Alert],
                 kept_flags: Sequence[bool]) -> None:
        if len(alerts) != len(kept_flags):
            raise ValueError("alerts and kept flags disagree in length")
        self.system = system
        self._alerts = list(alerts)
        self._kept = list(kept_flags)
        self.degraded: List[str] = []

    @classmethod
    def from_lists(cls, system: str, raw: Sequence[Alert],
                   filtered: Sequence[Alert]) -> "MemoryAlertStore":
        """Build from a result's raw/filtered pair.

        ``filtered`` is an in-order subsequence of ``raw`` (the filter
        only drops), so a greedy one-pass walk recovers the kept flag:
        identity first (same objects within one run), equality as the
        fallback for reconstructed lists.
        """
        raw = list(raw)
        filtered = list(filtered)
        kept_flags = [False] * len(raw)
        j = 0
        for i, alert in enumerate(raw):
            if j < len(filtered) and (filtered[j] is alert
                                      or filtered[j] == alert):
                kept_flags[i] = True
                j += 1
        if j != len(filtered):
            raise ValueError(
                "filtered alerts are not an in-order subsequence of raw"
            )
        return cls(system, raw, kept_flags)

    # -- scans -----------------------------------------------------------

    def iter_alerts(self, kept: Optional[bool] = None,
                    categories=None) -> Iterator[Alert]:
        wanted = None if categories is None else set(categories)
        for alert, is_kept in zip(self._alerts, self._kept):
            if kept is not None and is_kept != kept:
                continue
            if wanted is not None and alert.category not in wanted:
                continue
            yield alert

    def category_timestamps(self, category: str,
                            kept: Optional[bool] = None) -> "np.ndarray":
        return np.asarray(
            [a.timestamp for a in self.iter_alerts(kept=kept,
                                                   categories=(category,))],
            dtype=np.float64,
        )

    def timestamps(self, kept: Optional[bool] = None) -> "np.ndarray":
        return np.asarray(
            [a.timestamp for a in self.iter_alerts(kept=kept)],
            dtype=np.float64,
        )

    # -- aggregates ------------------------------------------------------

    def count(self, kept: Optional[bool] = None, categories=None) -> int:
        return sum(1 for _ in self.iter_alerts(kept=kept, categories=categories))

    def count_by_category(self, categories=None) -> Dict[str, Tuple[int, int]]:
        counts: Dict[str, Tuple[int, int]] = {}
        wanted = None if categories is None else set(categories)
        for alert, is_kept in zip(self._alerts, self._kept):
            if wanted is not None and alert.category not in wanted:
                continue
            raw, kept = counts.get(alert.category, (0, 0))
            counts[alert.category] = (raw + 1, kept + (1 if is_kept else 0))
        return counts

    def count_by_type(self) -> Dict[AlertType, Tuple[int, int]]:
        counts: Dict[AlertType, Tuple[int, int]] = {}
        for alert, is_kept in zip(self._alerts, self._kept):
            raw, kept = counts.get(alert.alert_type, (0, 0))
            counts[alert.alert_type] = (raw + 1, kept + (1 if is_kept else 0))
        return counts

    def categories(self, kept: Optional[bool] = None) -> set:
        return {a.category for a in self.iter_alerts(kept=kept)}

    def time_bounds(self, kept: Optional[bool] = None,
                    categories=None) -> Optional[Tuple[float, float]]:
        lo = np.inf
        hi = -np.inf
        empty = True
        for alert in self.iter_alerts(kept=kept, categories=categories):
            empty = False
            if alert.timestamp < lo:
                lo = alert.timestamp
            if alert.timestamp > hi:
                hi = alert.timestamp
        if empty:
            return None
        return float(lo), float(hi)

    def category_alert_type(self, category: str) -> Optional[AlertType]:
        for alert in self._alerts:
            if alert.category == category:
                return alert.alert_type
        return None

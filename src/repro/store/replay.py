"""Rebuilding a ``PipelineResult`` from a finalized store — the other
half of ``repro report``: a stored run replays every table and figure
without re-running the pipeline.

The store holds two things: the alert columns (partitioned, scanned on
demand) and the :data:`~repro.store.format.SUMMARY_NAME` blob with the
run's non-alert state — Table 2 volume statistics, the filter report,
the severity cross-tab, the corruption count.  Together they are
exactly the slice of a :class:`~repro.engine.result.PipelineResult`
the Section 4/5 analytics read, so the replayed result is
byte-equivalent to the live one for every table and figure.
"""

from __future__ import annotations

from typing import Any, Dict

from .columnar import ColumnarStore
from .query import StoredAlertSequence


def run_summary(result) -> Dict[str, Any]:
    """The non-alert halves of a result, as the SUMMARY payload."""
    return {
        "system": result.system,
        "threshold": result.threshold,
        "stats": result.stats,
        "filter_report": result.filter_report,
        "severity": result.severity_tab,
        "corrupted": result.corrupted_messages,
    }


def load_result(root: str):
    """A :class:`~repro.engine.result.PipelineResult` over a finalized
    store: alert sequences are lazy scans, aggregates are manifest
    pushdowns, and the summary halves come back exactly as persisted."""
    from ..engine.result import PipelineResult

    store = ColumnarStore(root)
    summary = store.load_summary()
    return PipelineResult(
        system=store.system,
        stats=summary["stats"],
        raw_alerts=StoredAlertSequence(store, kept=None),
        filtered_alerts=StoredAlertSequence(store, kept=True),
        filter_report=summary["filter_report"],
        severity_tab=summary["severity"],
        corrupted_messages=summary["corrupted"],
        threshold=summary["threshold"],
        store=store,
    )

"""On-disk layout of the columnar alert store.

One store holds one system's alerts, partitioned by ``(category, hour)``
— the two keys every Section 4/5 analysis pushes predicates down on —
with each partition a single append-only column file::

    <store>/
      MANIFEST                  # wire-framed dict: committed partitions
      SUMMARY                   # wire-framed run summary (at finalize)
      parts/<category>/<hour>.col

A ``.col`` file is the PR 8 durable-file shape: the 6-byte
:func:`repro.resilience.wire.file_header` followed by CRC32 frames
(:func:`~repro.resilience.wire.encode_frame`), one frame per *column
page*.  A page is a struct-packed batch of up to :data:`PAGE_ROWS`
alerts — sequence numbers, timestamps, kept flags, and dictionary-coded
source/severity columns — so a scan decodes one page at a time and
never materializes a partition.  Torn tails and bit-rot therefore
degrade exactly like the WAL does: the CRC walk stops at the first
untrustworthy byte and everything before it stays readable.

Pages never straddle a commit barrier (the writer seals every open page
at :meth:`~repro.store.columnar.ColumnarStoreWriter.commit`), which is
what makes checkpoint resume page-granular: every committed page lies
entirely on one side of any checkpoint watermark, so truncation never
has to split a frame.
"""

from __future__ import annotations

import struct
import urllib.parse
from typing import List, Optional, Tuple

import numpy as np

#: Magic for column files and the store summary; the manifest rides the
#: shared :data:`~repro.resilience.wire.CHECKPOINT_MAGIC` manifest codec.
COLUMN_MAGIC = b"RCOL"

#: Rows per sealed column page.  Small enough that a one-page decode is
#: a bounded allocation, large enough that the frame/dict overhead
#: amortizes to ~1 byte/row.
PAGE_ROWS = 4096

#: Seconds per partition bucket (the paper's Figure 2(a) hour).
PARTITION_SECONDS = 3600

MANIFEST_NAME = "MANIFEST"
SUMMARY_NAME = "SUMMARY"
PARTS_DIR = "parts"

#: Manifest format version for the store's own schema evolution.
STORE_FORMAT = 1

_PAGE_HEADER = struct.Struct("<IQ")  # rows, first_seq
_DICT_LEN = struct.Struct("<H")


class StoreFormatError(ValueError):
    """A page or manifest that violates the store's own schema."""


def partition_hour(timestamp: float) -> int:
    """The hour bucket a timestamp lands in (floor division, so the
    sub-second reorder tolerance can step a partition backwards)."""
    return int(timestamp // PARTITION_SECONDS)


def partition_relpath(category: str, hour: int) -> str:
    """Filesystem-safe relative path for a partition's column file.
    Category names are URL-quoted the same way tenant ids are, so a
    hostile tag cannot escape the store directory."""
    name = urllib.parse.quote(category, safe="")
    if name.startswith("."):
        name = "%2E" + name[1:]
    return f"{PARTS_DIR}/{name}/{hour}.col"


def _pack_dict(entries: List[str]) -> bytes:
    out = [_DICT_LEN.pack(len(entries))]
    for entry in entries:
        raw = entry.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise StoreFormatError("dictionary entry longer than 64 KiB")
        out.append(_DICT_LEN.pack(len(raw)))
        out.append(raw)
    return b"".join(out)


def _unpack_dict(data: bytes, offset: int) -> Tuple[List[str], int]:
    (count,) = _DICT_LEN.unpack_from(data, offset)
    offset += _DICT_LEN.size
    entries: List[str] = []
    for _ in range(count):
        (length,) = _DICT_LEN.unpack_from(data, offset)
        offset += _DICT_LEN.size
        entries.append(data[offset:offset + length].decode("utf-8"))
        offset += length
    return entries, offset


def encode_page(
    first_seq: int,
    seq_offsets: "np.ndarray",
    timestamps: "np.ndarray",
    kept: "np.ndarray",
    source_ids: "np.ndarray",
    severity_ids: "np.ndarray",
    source_dict: List[str],
    severity_dict: List[str],
) -> bytes:
    """Pack one column page (the payload of one CRC frame).

    ``severity_ids`` index ``severity_dict`` shifted by one: id 0 is the
    reserved "no severity" value, so systems without severity labels pay
    one byte per row and an empty dictionary.
    """
    n = len(timestamps)
    if not (len(seq_offsets) == len(kept) == len(source_ids)
            == len(severity_ids) == n):
        raise StoreFormatError("column lengths disagree")
    if len(severity_dict) > 0xFFFE:
        raise StoreFormatError("too many distinct severities in one page")
    return b"".join((
        _PAGE_HEADER.pack(n, first_seq),
        np.ascontiguousarray(seq_offsets, dtype=np.uint32).tobytes(),
        np.ascontiguousarray(timestamps, dtype=np.float64).tobytes(),
        np.ascontiguousarray(kept, dtype=np.uint8).tobytes(),
        np.ascontiguousarray(source_ids, dtype=np.uint16).tobytes(),
        np.ascontiguousarray(severity_ids, dtype=np.uint16).tobytes(),
        _pack_dict(source_dict),
        _pack_dict(severity_dict),
    ))


class PageColumns:
    """One decoded column page: parallel numpy columns plus the
    dictionaries needed to resolve source/severity ids to strings."""

    __slots__ = ("first_seq", "seqs", "timestamps", "kept",
                 "source_ids", "severity_ids", "sources", "severities")

    def __init__(self, first_seq, seqs, timestamps, kept, source_ids,
                 severity_ids, sources, severities):
        self.first_seq = first_seq
        self.seqs = seqs
        self.timestamps = timestamps
        self.kept = kept
        self.source_ids = source_ids
        self.severity_ids = severity_ids
        self.sources = sources
        self.severities = severities

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def last_seq(self) -> int:
        return int(self.seqs[-1]) if len(self.seqs) else self.first_seq

    def source_at(self, i: int) -> str:
        return self.sources[self.source_ids[i]]

    def severity_at(self, i: int) -> Optional[str]:
        sid = self.severity_ids[i]
        return None if sid == 0 else self.severities[sid - 1]


def decode_page(payload: bytes) -> PageColumns:
    """Unpack one page frame payload back into columns."""
    if len(payload) < _PAGE_HEADER.size:
        raise StoreFormatError("page shorter than its header")
    n, first_seq = _PAGE_HEADER.unpack_from(payload)
    offset = _PAGE_HEADER.size
    need = n * (4 + 8 + 1 + 2 + 2)
    if len(payload) - offset < need:
        raise StoreFormatError(
            f"page claims {n} rows but holds {len(payload) - offset} "
            f"column bytes (need {need})"
        )

    def column(dtype, size):
        nonlocal offset
        arr = np.frombuffer(payload, dtype=dtype, count=n, offset=offset)
        offset += n * size
        return arr

    seq_offsets = column(np.uint32, 4)
    timestamps = column(np.float64, 8)
    kept = column(np.uint8, 1)
    source_ids = column(np.uint16, 2)
    severity_ids = column(np.uint16, 2)
    try:
        sources, offset = _unpack_dict(payload, offset)
        severities, offset = _unpack_dict(payload, offset)
    except (struct.error, UnicodeDecodeError) as exc:
        raise StoreFormatError(f"undecodable page dictionary: {exc!r}")
    if source_ids.size and sources and int(source_ids.max()) >= len(sources):
        raise StoreFormatError("source id beyond page dictionary")
    if severity_ids.size and int(severity_ids.max()) > len(severities):
        raise StoreFormatError("severity id beyond page dictionary")
    return PageColumns(
        first_seq=first_seq,
        seqs=first_seq + seq_offsets.astype(np.uint64),
        timestamps=timestamps,
        kept=kept,
        source_ids=source_ids,
        severity_ids=severity_ids,
        sources=sources,
        severities=severities,
    )

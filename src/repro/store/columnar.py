"""The spill-to-disk columnar alert store: incremental writer + reader.

The writer is fed by the engine sink one alert at a time (or a batch at
a time), buffers rows per partition, and makes them durable only at
**commit barriers** — the same points where the pipeline checkpoints.
The invariants that make crash/resume exact:

* every committed page lies entirely inside one inter-commit interval
  (open pages are sealed at :meth:`ColumnarStoreWriter.commit`), so a
  checkpoint watermark never splits a page;
* the manifest records, per partition, the committed byte length —
  anything past it (a crash between commits) is a torn tail to truncate,
  never data to trust;
* the manifest itself is replaced atomically, so the store always
  describes some barrier-consistent state.

On resume the writer truncates each partition back to pages whose rows
all precede the checkpoint's sequence watermark; the re-run stream then
re-emits exactly the dropped suffix.  ``state_dir`` resume therefore
never double-writes a partition.

The reader (:class:`ColumnarStore`) exposes bounded-memory scans: one
decoded page per partition is alive at a time, and cross-partition
iteration is a k-way merge on the global sequence number, which
reconstructs exact emit order even when the reorder tolerance lets an
alert cross an hour boundary backwards.
"""

from __future__ import annotations

import heapq
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..core.categories import Alert, AlertType
from ..logmodel.record import LogRecord
from ..resilience import wire
from .format import (
    COLUMN_MAGIC,
    MANIFEST_NAME,
    PAGE_ROWS,
    PARTS_DIR,
    PageColumns,
    STORE_FORMAT,
    SUMMARY_NAME,
    StoreFormatError,
    decode_page,
    encode_page,
    partition_hour,
    partition_relpath,
)


class StoreError(RuntimeError):
    """The store cannot satisfy a request (bad resume watermark, absent
    summary, incompatible format)."""


def _write_atomic(path: str, data: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def _encode_blob(fields: Dict[str, Any]) -> bytes:
    return wire.file_header(COLUMN_MAGIC) + wire.encode_frame(
        pickle.dumps(dict(fields), protocol=pickle.HIGHEST_PROTOCOL)
    )


def _decode_blob(data: bytes) -> Dict[str, Any]:
    wire.check_header(data, COLUMN_MAGIC)
    payloads, _end, error = wire.scan_frames(data)
    if error is not None or len(payloads) != 1:
        raise wire.WireError(error or f"blob holds {len(payloads)} frames")
    try:
        fields = pickle.loads(payloads[0])
    except Exception as exc:  # pickle raises many types
        raise wire.WireError(f"undecodable store blob: {exc!r}") from exc
    if not isinstance(fields, dict):
        raise wire.WireError("store blob payload is not a dict")
    return fields


@dataclass
class PartitionMeta:
    """Committed state of one ``(category, hour)`` partition."""

    category: str
    hour: int
    path: str  # relative to the store root
    bytes: int  # committed file length (anything beyond is torn tail)
    rows: int
    kept: int
    alert_type: str  # one-letter paper code
    ts_min: float
    ts_max: float
    kept_ts_min: Optional[float]
    kept_ts_max: Optional[float]

    def to_fields(self) -> Dict[str, Any]:
        return {
            "category": self.category,
            "hour": self.hour,
            "path": self.path,
            "bytes": self.bytes,
            "rows": self.rows,
            "kept": self.kept,
            "alert_type": self.alert_type,
            "ts_min": self.ts_min,
            "ts_max": self.ts_max,
            "kept_ts_min": self.kept_ts_min,
            "kept_ts_max": self.kept_ts_max,
        }

    @classmethod
    def from_fields(cls, fields: Dict[str, Any]) -> "PartitionMeta":
        return cls(**{k: fields[k] for k in (
            "category", "hour", "path", "bytes", "rows", "kept",
            "alert_type", "ts_min", "ts_max", "kept_ts_min", "kept_ts_max",
        )})


class _PageBuffer:
    """Rows accumulated for one partition since its last sealed page."""

    __slots__ = ("seqs", "timestamps", "kept", "source_ids", "severity_ids",
                 "sources", "source_index", "severities", "severity_index")

    def __init__(self) -> None:
        self.seqs: List[int] = []
        self.timestamps: List[float] = []
        self.kept: List[int] = []
        self.source_ids: List[int] = []
        self.severity_ids: List[int] = []
        self.sources: List[str] = []
        self.source_index: Dict[str, int] = {}
        self.severities: List[str] = []
        self.severity_index: Dict[str, int] = {}

    def add(self, seq: int, timestamp: float, source: str,
            severity: Optional[str], kept: bool) -> None:
        sid = self.source_index.get(source)
        if sid is None:
            sid = self.source_index[source] = len(self.sources)
            self.sources.append(source)
        if severity is None:
            vid = 0
        else:
            vid = self.severity_index.get(severity)
            if vid is None:
                vid = self.severity_index[severity] = len(self.severities) + 1
                self.severities.append(severity)
        self.seqs.append(seq)
        self.timestamps.append(timestamp)
        self.kept.append(1 if kept else 0)
        self.source_ids.append(sid)
        self.severity_ids.append(vid)

    def __len__(self) -> int:
        return len(self.seqs)

    def seal(self) -> bytes:
        first = self.seqs[0]
        offsets = np.asarray(self.seqs, dtype=np.uint64) - first
        if offsets.size and int(offsets[-1]) > 0xFFFFFFFF:
            raise StoreFormatError("page spans more than 2**32 sequence ids")
        return encode_page(
            first_seq=first,
            seq_offsets=offsets.astype(np.uint32),
            timestamps=np.asarray(self.timestamps, dtype=np.float64),
            kept=np.asarray(self.kept, dtype=np.uint8),
            source_ids=np.asarray(self.source_ids, dtype=np.uint16),
            severity_ids=np.asarray(self.severity_ids, dtype=np.uint16),
            source_dict=self.sources,
            severity_dict=self.severities,
        )


class _WriterPartition:
    """Writer-side bookkeeping for one partition."""

    __slots__ = ("meta", "buffer", "pending")

    def __init__(self, meta: PartitionMeta) -> None:
        self.meta = meta
        self.buffer = _PageBuffer()
        self.pending: List[bytes] = []  # sealed, uncommitted page payloads


class ColumnarStoreWriter:
    """Incremental writer for one system's columnar store.

    Lifecycle: construct, :meth:`begin` (fresh / resume / append mode),
    feed via :meth:`append` / :meth:`append_batch`, make durable at
    every barrier via :meth:`commit`, and :meth:`finalize` when the run
    completes.  Between barriers nothing is promised: a crash loses at
    most the rows since the last commit — exactly the rows the resumed
    pipeline re-emits.
    """

    def __init__(self, root: str, system: str, *,
                 page_rows: int = PAGE_ROWS,
                 autoflush_rows: int = 16 * PAGE_ROWS) -> None:
        self.root = root
        self.system = system
        self.page_rows = page_rows
        #: When no checkpointer drives barriers, commit on our own every
        #: this many buffered rows so memory stays bounded anyway.
        self.autoflush_rows = autoflush_rows
        self.auto_barriers = True
        self.seq = 0
        self._buffered_rows = 0
        self._partitions: Dict[Tuple[str, int], _WriterPartition] = {}
        self._began = False

    # -- lifecycle -------------------------------------------------------

    def begin(self, resume_seq: Optional[int] = 0) -> int:
        """Open the store for writing and return the starting sequence.

        ``resume_seq=0`` starts fresh (any prior store content at this
        root is discarded).  A positive watermark resumes a checkpointed
        run: every committed page whose rows all precede the watermark
        survives, everything else is truncated away, and the watermark
        becomes the next sequence number.  ``None`` appends after
        whatever the manifest committed (the service's journal-resume
        mode, where the manifest seq *is* the authority).
        """
        if self._began:
            raise StoreError("writer already begun")
        os.makedirs(self.root, exist_ok=True)
        manifest = self._load_manifest()
        if resume_seq == 0 or manifest is None:
            if resume_seq not in (0, None) and manifest is None:
                raise StoreError(
                    f"resume watermark {resume_seq} but no store manifest "
                    f"at {self.root!r}"
                )
            self._wipe()
            self.seq = 0
        else:
            watermark = manifest["seq"] if resume_seq is None else resume_seq
            if watermark > manifest["seq"]:
                # The checkpoint is ahead of the manifest: a commit
                # must precede its checkpoint save, so this store does
                # not belong to that checkpoint's run.
                raise StoreError(
                    f"resume watermark {watermark} exceeds committed "
                    f"store seq {manifest['seq']}"
                )
            self._adopt(manifest, watermark)
            self.seq = watermark
        self._began = True
        return self.seq

    def _load_manifest(self) -> Optional[Dict[str, Any]]:
        path = os.path.join(self.root, MANIFEST_NAME)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        try:
            fields = _decode_blob(data)
        except wire.WireError as exc:
            raise StoreError(f"corrupt store manifest at {path!r}: {exc}")
        if fields.get("store_format") != STORE_FORMAT:
            raise StoreError(
                f"unsupported store format {fields.get('store_format')!r}"
            )
        if fields.get("system") != self.system:
            raise StoreError(
                f"store at {self.root!r} holds system "
                f"{fields.get('system')!r}, not {self.system!r}"
            )
        return fields

    def _wipe(self) -> None:
        """Remove any previous store content under the root."""
        for name in (MANIFEST_NAME, SUMMARY_NAME):
            try:
                os.remove(os.path.join(self.root, name))
            except FileNotFoundError:
                pass
        parts = os.path.join(self.root, PARTS_DIR)
        if os.path.isdir(parts):
            for dirpath, _dirnames, filenames in os.walk(parts, topdown=False):
                for filename in filenames:
                    os.remove(os.path.join(dirpath, filename))
                try:
                    os.rmdir(dirpath)
                except OSError:
                    pass
        self._partitions = {}

    def _adopt(self, manifest: Dict[str, Any], watermark: int) -> None:
        """Resume from a committed manifest, truncating rows >= watermark."""
        for name in (SUMMARY_NAME,):
            # A resumed run is no longer complete; drop any stale summary.
            try:
                os.remove(os.path.join(self.root, name))
            except FileNotFoundError:
                pass
        for fields in manifest["partitions"]:
            meta = PartitionMeta.from_fields(fields)
            path = os.path.join(self.root, meta.path)
            try:
                with open(path, "rb") as handle:
                    data = handle.read(meta.bytes)
            except FileNotFoundError:
                raise StoreError(f"manifest names missing partition {meta.path!r}")
            wire.check_header(data, COLUMN_MAGIC)
            payloads, clean_end, error = wire.scan_frames(data)
            if error is not None:
                raise StoreError(
                    f"committed bytes of partition {meta.path!r} are "
                    f"corrupt: {error}"
                )
            keep_end = wire.HEADER_SIZE
            rows = kept = 0
            ts_min = np.inf
            ts_max = -np.inf
            k_min = np.inf
            k_max = -np.inf
            for payload in payloads:
                page = decode_page(payload)
                if page.first_seq >= watermark:
                    break
                if page.last_seq >= watermark:
                    # Cannot happen for stores written by this class
                    # (pages seal at barriers); refuse rather than lose
                    # rows the resumed run will not re-emit.
                    raise StoreError(
                        f"checkpoint watermark {watermark} splits a "
                        f"committed page in {meta.path!r}"
                    )
                keep_end += wire.FRAME_HEADER_SIZE + len(payload)
                rows += len(page)
                kept += int(page.kept.sum())
                ts_min = min(ts_min, float(page.timestamps.min()))
                ts_max = max(ts_max, float(page.timestamps.max()))
                kept_mask = page.kept.astype(bool)
                if kept_mask.any():
                    k_min = min(k_min, float(page.timestamps[kept_mask].min()))
                    k_max = max(k_max, float(page.timestamps[kept_mask].max()))
            if rows == 0:
                os.remove(path)
                continue
            if keep_end < os.path.getsize(path):
                with open(path, "r+b") as handle:
                    handle.truncate(keep_end)
            meta.bytes = keep_end
            meta.rows = rows
            meta.kept = kept
            meta.ts_min = float(ts_min)
            meta.ts_max = float(ts_max)
            meta.kept_ts_min = None if kept == 0 else float(k_min)
            meta.kept_ts_max = None if kept == 0 else float(k_max)
            self._partitions[(meta.category, meta.hour)] = _WriterPartition(meta)
        # Drop column files the (possibly older) manifest never committed.
        committed = {os.path.join(self.root, p.meta.path)
                     for p in self._partitions.values()}
        parts = os.path.join(self.root, PARTS_DIR)
        if os.path.isdir(parts):
            for dirpath, _dirnames, filenames in os.walk(parts, topdown=False):
                for filename in filenames:
                    full = os.path.join(dirpath, filename)
                    if full not in committed:
                        os.remove(full)
                try:
                    os.rmdir(dirpath)
                except OSError:
                    pass
        self._write_manifest(complete=False)

    # -- ingest ----------------------------------------------------------

    def append(self, alert: Alert, kept: bool) -> None:
        """Buffer one alert in emit order; durable at the next commit."""
        key = (alert.category, partition_hour(alert.timestamp))
        part = self._partitions.get(key)
        if part is None:
            meta = PartitionMeta(
                category=alert.category,
                hour=key[1],
                path=partition_relpath(alert.category, key[1]),
                bytes=0,
                rows=0,
                kept=0,
                alert_type=alert.alert_type.value,
                ts_min=np.inf,
                ts_max=-np.inf,
                kept_ts_min=None,
                kept_ts_max=None,
            )
            part = self._partitions[key] = _WriterPartition(meta)
        part.buffer.add(
            self.seq, alert.timestamp, alert.source,
            alert.record.severity, kept,
        )
        self.seq += 1
        self._buffered_rows += 1
        if len(part.buffer) >= self.page_rows:
            part.pending.append(part.buffer.seal())
            part.buffer = _PageBuffer()
        if self.auto_barriers and self._buffered_rows >= self.autoflush_rows:
            self.commit()

    def append_batch(self, pairs: Iterable[Tuple[Alert, bool]]) -> None:
        for alert, kept in pairs:
            self.append(alert, kept)

    # -- durability ------------------------------------------------------

    def commit(self) -> int:
        """Seal open pages, append them to partition files, atomically
        replace the manifest.  Returns the committed sequence watermark
        (every row with seq < return value is now durable)."""
        for part in self._partitions.values():
            if len(part.buffer):
                part.pending.append(part.buffer.seal())
                part.buffer = _PageBuffer()
            if not part.pending:
                continue
            path = os.path.join(self.root, part.meta.path)
            if part.meta.bytes == 0:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "wb") as handle:
                    handle.write(wire.file_header(COLUMN_MAGIC))
                part.meta.bytes = wire.HEADER_SIZE
            with open(path, "r+b") as handle:
                # Clip any torn tail from a crash between commits before
                # appending, so committed bytes stay contiguous.
                handle.truncate(part.meta.bytes)
                handle.seek(part.meta.bytes)
                for payload in part.pending:
                    frame = wire.encode_frame(payload)
                    handle.write(frame)
                    part.meta.bytes += len(frame)
                    page = decode_page(payload)
                    part.meta.rows += len(page)
                    part.meta.kept += int(page.kept.sum())
                    part.meta.ts_min = min(part.meta.ts_min,
                                           float(page.timestamps.min()))
                    part.meta.ts_max = max(part.meta.ts_max,
                                           float(page.timestamps.max()))
                    kept_mask = page.kept.astype(bool)
                    if kept_mask.any():
                        lo = float(page.timestamps[kept_mask].min())
                        hi = float(page.timestamps[kept_mask].max())
                        if part.meta.kept_ts_min is None:
                            part.meta.kept_ts_min = lo
                            part.meta.kept_ts_max = hi
                        else:
                            part.meta.kept_ts_min = min(part.meta.kept_ts_min, lo)
                            part.meta.kept_ts_max = max(part.meta.kept_ts_max, hi)
            part.pending = []
        self._buffered_rows = 0
        self._write_manifest(complete=False)
        return self.seq

    def _write_manifest(self, *, complete: bool) -> None:
        fields = {
            "store_format": STORE_FORMAT,
            "system": self.system,
            "seq": self.seq,
            "complete": complete,
            "partitions": [
                part.meta.to_fields()
                for _key, part in sorted(self._partitions.items())
                if part.meta.rows > 0
            ],
        }
        _write_atomic(os.path.join(self.root, MANIFEST_NAME), _encode_blob(fields))

    def finalize(self, summary: Optional[Dict[str, Any]] = None) -> None:
        """Commit outstanding rows, persist the run summary (the
        non-alert halves of a ``PipelineResult``), and mark the manifest
        complete so ``repro report`` accepts the store."""
        self.commit()
        if summary is not None:
            fields = dict(summary)
            fields.setdefault("system", self.system)
            fields["store_format"] = STORE_FORMAT
            _write_atomic(os.path.join(self.root, SUMMARY_NAME),
                          _encode_blob(fields))
        self._write_manifest(complete=True)

    def reader(self) -> "ColumnarStore":
        """A reader over this store's committed state."""
        return ColumnarStore(self.root)


# -- reader ------------------------------------------------------------------


class Partition:
    """Reader-side view of one committed partition."""

    __slots__ = ("store", "meta")

    def __init__(self, store: "ColumnarStore", meta: PartitionMeta) -> None:
        self.store = store
        self.meta = meta

    def pages(self) -> Iterator[PageColumns]:
        """Decode committed pages one at a time (bounded memory)."""
        path = os.path.join(self.store.root, self.meta.path)
        try:
            with open(path, "rb") as handle:
                data = handle.read(self.meta.bytes)
        except FileNotFoundError:
            self.store.degraded.append(f"missing partition file {self.meta.path}")
            return
        try:
            wire.check_header(data, COLUMN_MAGIC)
        except wire.WireError as exc:
            self.store.degraded.append(f"{self.meta.path}: {exc}")
            return
        payloads, _clean_end, error = wire.scan_frames(data)
        if error is not None:
            self.store.degraded.append(f"{self.meta.path}: {error}")
        for payload in payloads:
            try:
                yield decode_page(payload)
            except StoreFormatError as exc:
                self.store.degraded.append(f"{self.meta.path}: {exc}")
                return

    def rows(self, kept_only: bool = False) -> Iterator[Tuple[int, float, str,
                                                              Optional[str], bool]]:
        """Yield ``(seq, timestamp, source, severity, kept)`` in seq order."""
        for page in self.pages():
            seqs = page.seqs
            timestamps = page.timestamps
            kept = page.kept
            for i in range(len(page)):
                is_kept = bool(kept[i])
                if kept_only and not is_kept:
                    continue
                yield (int(seqs[i]), float(timestamps[i]), page.source_at(i),
                       page.severity_at(i), is_kept)


class ColumnarStore:
    """Read access to a committed columnar store.

    Corruption degrades instead of crashing: unreadable frames, torn
    tails, and missing files drop the affected rows and record a reason
    in :attr:`degraded`; everything the CRCs vouch for stays queryable.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.degraded: List[str] = []
        path = os.path.join(root, MANIFEST_NAME)
        try:
            with open(path, "rb") as handle:
                fields = _decode_blob(handle.read())
        except FileNotFoundError:
            raise StoreError(f"no columnar store at {root!r} (missing MANIFEST)")
        except wire.WireError as exc:
            raise StoreError(f"corrupt store manifest at {path!r}: {exc}")
        if fields.get("store_format") != STORE_FORMAT:
            raise StoreError(
                f"unsupported store format {fields.get('store_format')!r}"
            )
        self.system: str = fields["system"]
        self.committed_seq: int = fields["seq"]
        self.complete: bool = bool(fields.get("complete"))
        self.partitions: List[Partition] = [
            Partition(self, PartitionMeta.from_fields(f))
            for f in fields["partitions"]
        ]

    # -- pushdown aggregates (no scan) -----------------------------------

    def _selected(self, categories=None) -> List[Partition]:
        if categories is None:
            return self.partitions
        wanted = set(categories)
        return [p for p in self.partitions if p.meta.category in wanted]

    def count(self, kept: Optional[bool] = None, categories=None) -> int:
        total = 0
        for part in self._selected(categories):
            if kept is None:
                total += part.meta.rows
            elif kept:
                total += part.meta.kept
            else:
                total += part.meta.rows - part.meta.kept
        return total

    def count_by_category(self, categories=None) -> Dict[str, Tuple[int, int]]:
        counts: Dict[str, Tuple[int, int]] = {}
        for part in self._selected(categories):
            raw, kept = counts.get(part.meta.category, (0, 0))
            counts[part.meta.category] = (raw + part.meta.rows,
                                          kept + part.meta.kept)
        return counts

    def count_by_type(self) -> Dict[AlertType, Tuple[int, int]]:
        counts: Dict[AlertType, Tuple[int, int]] = {}
        for part in self.partitions:
            alert_type = AlertType.from_code(part.meta.alert_type)
            raw, kept = counts.get(alert_type, (0, 0))
            counts[alert_type] = (raw + part.meta.rows, kept + part.meta.kept)
        return counts

    def categories(self, kept: Optional[bool] = None) -> set:
        out = set()
        for part in self.partitions:
            if kept is None or not kept:
                if part.meta.rows > 0:
                    out.add(part.meta.category)
            elif part.meta.kept > 0:
                out.add(part.meta.category)
        return out

    def time_bounds(self, kept: Optional[bool] = None,
                    categories=None) -> Optional[Tuple[float, float]]:
        lo = np.inf
        hi = -np.inf
        for part in self._selected(categories):
            if kept:
                if part.meta.kept_ts_min is None:
                    continue
                lo = min(lo, part.meta.kept_ts_min)
                hi = max(hi, part.meta.kept_ts_max)
            else:
                if part.meta.rows == 0:
                    continue
                lo = min(lo, part.meta.ts_min)
                hi = max(hi, part.meta.ts_max)
        if lo > hi:
            return None
        return float(lo), float(hi)

    def category_alert_type(self, category: str) -> Optional[AlertType]:
        for part in self.partitions:
            if part.meta.category == category:
                return AlertType.from_code(part.meta.alert_type)
        return None

    # -- scans -----------------------------------------------------------

    def iter_rows(self, kept: Optional[bool] = None, categories=None
                  ) -> Iterator[Tuple[int, float, str, Optional[str], bool,
                                      str, str]]:
        """Global-order scan: k-way merge of partition scans on seq.

        Yields ``(seq, timestamp, source, severity, kept, category,
        alert_type_code)``.  Holds one decoded page per selected
        partition — bounded memory however large the store is.
        """
        def stream(part: Partition):
            meta = part.meta
            for row in part.rows(kept_only=bool(kept)):
                yield row + (meta.category, meta.alert_type)

        merged = heapq.merge(
            *(stream(part) for part in self._selected(categories)),
            key=lambda row: row[0],
        )
        if kept is None or kept:
            yield from merged
        else:
            for row in merged:
                if not row[4]:
                    yield row

    def iter_alerts(self, kept: Optional[bool] = None,
                    categories=None) -> Iterator[Alert]:
        """Scan reconstructed :class:`Alert` objects in emit order.

        The attached :class:`LogRecord` is minimal — timestamp, source,
        system, severity — which is every record field the analytics
        layer reads (``Alert`` equality excludes the record entirely).
        """
        system = self.system
        for (seq, timestamp, source, severity, is_kept, category,
             type_code) in self.iter_rows(kept=kept, categories=categories):
            yield Alert(
                timestamp=timestamp,
                source=source,
                category=category,
                alert_type=AlertType.from_code(type_code),
                record=LogRecord(
                    timestamp=timestamp,
                    source=source,
                    facility="",
                    body="",
                    system=system,
                    severity=severity,
                ),
            )

    def category_timestamps(self, category: str,
                            kept: Optional[bool] = None) -> "np.ndarray":
        """All timestamps of one category in emit order (float64)."""
        chunks = []
        for (_seq, timestamp, *_rest) in self.iter_rows(
                kept=kept, categories=(category,)):
            chunks.append(timestamp)
        return np.asarray(chunks, dtype=np.float64)

    def timestamps(self, kept: Optional[bool] = None) -> "np.ndarray":
        """All selected timestamps in emit order (float64)."""
        return np.asarray(
            [row[1] for row in self.iter_rows(kept=kept)], dtype=np.float64
        )

    # -- run summary -----------------------------------------------------

    def load_summary(self) -> Dict[str, Any]:
        """The finalized run summary (stats, filter report, severity
        cross-tab...).  Raises :class:`StoreError` when the run never
        finalized — an incomplete store can be scanned but not replayed
        as a full ``PipelineResult``."""
        path = os.path.join(self.root, SUMMARY_NAME)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise StoreError(
                f"store at {self.root!r} has no run summary "
                "(run did not finalize)"
            )
        try:
            return _decode_blob(data)
        except wire.WireError as exc:
            raise StoreError(f"corrupt run summary at {path!r}: {exc}")


def is_store_dir(path: str) -> bool:
    """Whether ``path`` looks like a single-system columnar store."""
    return os.path.isfile(os.path.join(path, MANIFEST_NAME))

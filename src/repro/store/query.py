"""``AlertQuery`` — the single access path from analytics to alerts.

A query is a lightweight, re-iterable view over a store backend (the
spilled :class:`~repro.store.columnar.ColumnarStore` or the in-memory
:class:`~repro.store.memory.MemoryAlertStore`) narrowed by two pushdown
predicates: the kept/raw axis and a category set — exactly the
partition keys of the on-disk layout, so a narrowed query over a
spilled store opens only the matching column files.

Three tiers of access, cheapest first:

* **aggregates** (``count``, ``count_by_category``, ``count_by_type``,
  ``time_bounds``, ``categories``) answer from the partition manifest
  without touching a column file;
* **column scans** (``timestamps``, ``category_timestamps``,
  ``chunks``) decode pages straight into numpy arrays — 8 bytes per
  alert, never a Python object per row;
* **object scans** (iteration) reconstruct :class:`Alert` values in
  exact emit order for the analyses that need full rows, one decoded
  page per partition in memory at a time.

Queries are plain iterables of alerts, so every single-pass analysis
function accepts one unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.categories import Alert, AlertType


@dataclass
class AlertChunk:
    """One chunk of a chunked column scan: parallel columns, no
    per-alert Python objects."""

    timestamps: "np.ndarray"  # float64
    categories: List[str]
    sources: List[str]

    def __len__(self) -> int:
        return len(self.timestamps)


class AlertQuery:
    """A narrowable, re-iterable view over an alert store."""

    def __init__(self, store, kept: Optional[bool] = None,
                 categories: Optional[Tuple[str, ...]] = None) -> None:
        self.store = store
        self.kept = kept
        self.category_filter = categories

    # -- narrowing -------------------------------------------------------

    def raw(self) -> "AlertQuery":
        """All tagged alerts (pre-filter)."""
        return AlertQuery(self.store, kept=None,
                          categories=self.category_filter)

    def filtered(self) -> "AlertQuery":
        """Alerts the filtering stage kept."""
        return AlertQuery(self.store, kept=True,
                          categories=self.category_filter)

    def where(self, *categories: str) -> "AlertQuery":
        """Narrow to the given categories (partition-key pushdown)."""
        return AlertQuery(self.store, kept=self.kept,
                          categories=tuple(categories))

    # -- aggregates (manifest pushdown, no scan) -------------------------

    def count(self) -> int:
        return self.store.count(kept=self.kept,
                                categories=self.category_filter)

    def count_by_category(self) -> Dict[str, Tuple[int, int]]:
        """``{category: (raw, kept)}`` over the selected partitions."""
        return self.store.count_by_category(categories=self.category_filter)

    def count_by_type(self) -> Dict[AlertType, Tuple[int, int]]:
        """``{alert_type: (raw, kept)}`` — each category has exactly one
        type, so this reads partition metadata only."""
        if self.category_filter is None:
            return self.store.count_by_type()
        counts: Dict[AlertType, Tuple[int, int]] = {}
        for category, (raw, kept) in self.count_by_category().items():
            alert_type = self.store.category_alert_type(category)
            if alert_type is None:
                continue
            prev_raw, prev_kept = counts.get(alert_type, (0, 0))
            counts[alert_type] = (prev_raw + raw, prev_kept + kept)
        return counts

    def categories(self) -> set:
        found = self.store.categories(kept=self.kept)
        if self.category_filter is not None:
            found &= set(self.category_filter)
        return found

    def time_bounds(self) -> Optional[Tuple[float, float]]:
        """``(min, max)`` timestamp over the selection, or ``None``."""
        return self.store.time_bounds(kept=self.kept,
                                      categories=self.category_filter)

    # -- column scans ----------------------------------------------------

    def timestamps(self) -> "np.ndarray":
        """Selected timestamps in emit order, as float64."""
        if self.category_filter is None:
            return self.store.timestamps(kept=self.kept)
        return np.asarray([a.timestamp for a in self], dtype=np.float64)

    def category_timestamps(self, category: str) -> "np.ndarray":
        """One category's timestamps in emit order (single-partition
        column scan on a spilled store)."""
        return self.store.category_timestamps(category, kept=self.kept)

    def chunks(self, size: int = 4096) -> Iterator[AlertChunk]:
        """Chunked column scan: bounded batches of parallel columns."""
        timestamps: List[float] = []
        categories: List[str] = []
        sources: List[str] = []
        for alert in self:
            timestamps.append(alert.timestamp)
            categories.append(alert.category)
            sources.append(alert.source)
            if len(timestamps) >= size:
                yield AlertChunk(np.asarray(timestamps, dtype=np.float64),
                                 categories, sources)
                timestamps, categories, sources = [], [], []
        if timestamps:
            yield AlertChunk(np.asarray(timestamps, dtype=np.float64),
                             categories, sources)

    # -- object scan -----------------------------------------------------

    def __iter__(self) -> Iterator[Alert]:
        return self.store.iter_alerts(kept=self.kept,
                                      categories=self.category_filter)

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return self.count() > 0

    def __repr__(self) -> str:
        axis = {None: "raw+dropped", True: "kept", False: "dropped"}[self.kept]
        cats = "*" if self.category_filter is None \
            else ",".join(self.category_filter)
        return (f"AlertQuery({type(self.store).__name__}, {axis}, "
                f"categories={cats})")


class StoredAlertSequence(Sequence):
    """A read-only ``Sequence[Alert]`` over a store selection.

    This is what keeps ``PipelineResult.raw_alerts`` /
    ``.filtered_alerts`` working when the run spilled to disk: length
    is a manifest pushdown, iteration is a bounded-memory scan, and
    equality against plain lists is elementwise — so existing callers
    and tests cannot tell it from the list it replaces, except that
    random indexing is O(n) (it is a scan, not an array).
    """

    def __init__(self, store, kept: Optional[bool] = None) -> None:
        self._store = store
        self._kept = kept
        self._len: Optional[int] = None

    @property
    def query(self) -> AlertQuery:
        return AlertQuery(self._store, kept=self._kept)

    def __len__(self) -> int:
        if self._len is None:
            self._len = self._store.count(kept=self._kept)
        return self._len

    def __iter__(self) -> Iterator[Alert]:
        return self._store.iter_alerts(kept=self._kept)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        if index < 0:
            index += len(self)
        if index < 0:
            raise IndexError(index)
        for alert in islice(self, index, index + 1):
            return alert
        raise IndexError(index)

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, StoredAlertSequence)):
            if len(other) != len(self):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        axis = "kept" if self._kept else "raw"
        return f"StoredAlertSequence({axis}, n={len(self)})"

"""The engine-facing prediction stage.

:class:`PredictionStage` observes every ruled-on alert at the sink seam
(:class:`repro.engine.stages.ObservingSink` tees the alert flow into
it), reorders within the filter's tolerance, and forwards *finalized*
alerts — those no later arrival can precede — to the correlation miner
and the online ensemble.

Ordering contract: the spatio-temporal filter clamps backwards
timestamps to at most ``reorder_tolerance`` behind the running maximum
(anything worse raises), so every observed alert satisfies
``t >= max_seen - tolerance``.  The stage therefore finalizes pending
alerts strictly below ``max_seen - tolerance``, sorted by
``(timestamp, arrival index)``.  That sequence is a pure function of
the alert stream — not of batch sizes, drain cadence, or driver — which
is the invariant behind the cross-driver golden equivalence tests.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .miner import CorrelationGraph, StreamingCorrelationMiner
from .online import (
    MemberRow,
    OnlineEnsemble,
    OnlineWarning,
    PredictionConfig,
)

#: Matches repro.engine.path.DEFAULT_REORDER_TOLERANCE (not imported to
#: keep this package independent of the engine; the path passes its own
#: value explicitly when it builds the stage).
DEFAULT_REORDER_TOLERANCE = 1.0

#: Observers defer draining until this many alerts are pending; the
#: finalized sequence is drain-cadence-invariant, so this only bounds
#: buffering cost (and amortizes the miner's per-slice work), never
#: changes output.
_DRAIN_BATCH = 2048


@dataclass(frozen=True)
class PredictionReport:
    """What a run's prediction stage produced, attached to PipelineResult."""

    warnings: Tuple[OnlineWarning, ...]
    warnings_emitted: int
    members: Tuple[MemberRow, ...]
    refits: int
    observed: int
    graph: CorrelationGraph

    def summary_lines(self) -> List[str]:
        lines = [
            "warnings=%d refits=%d members=%d observed_alerts=%d"
            % (self.warnings_emitted, self.refits, len(self.members), self.observed)
        ]
        for row in self.members:
            lines.append(
                "  %s <- %s (val P=%.2f R=%.2f F1=%.2f)"
                % (row.target, row.kind, row.precision, row.recall, row.f1)
            )
        lines.extend(self.graph.summary_lines())
        return lines


class PredictionStage:
    """Streaming correlation mining + online prediction over raw alerts.

    The stage consumes *raw* (pre-spatio-temporal-filter) alerts: burst
    and dispersion-frame signatures live in exactly the repetitions the
    filter is designed to drop.
    """

    def __init__(
        self,
        config: Optional[PredictionConfig] = None,
        reorder_tolerance: float = DEFAULT_REORDER_TOLERANCE,
    ) -> None:
        self.config = config or PredictionConfig()
        cfg = self.config
        self.reorder_tolerance = float(reorder_tolerance)
        self.miner = StreamingCorrelationMiner(
            pair_window=cfg.pair_window,
            spatial_window=cfg.spatial_window,
            decay_half_life=cfg.decay_half_life,
            max_edges=cfg.max_edges,
            max_source_edges=cfg.max_source_edges,
            prune_interval=cfg.prune_interval,
        )
        self.ensemble = OnlineEnsemble(cfg)
        # (timestamp, arrival seq, (t, category, source, severity));
        # plain tuples, not SlimAlerts — see the SlimAlert docstring.
        self._pending: List[Tuple[float, int, Tuple[Any, ...]]] = []
        self._seq = 0
        self._max_seen = -math.inf
        self._finished = False
        self.observed = 0

    # -- observer protocol (driven by ObservingSink) -------------------

    def observe(self, alert: Any, kept: bool) -> None:
        t = alert.timestamp
        self._pending.append(
            (t, self._seq, (t, alert.category, alert.source, alert.record.severity))
        )
        self._seq += 1
        self.observed += 1
        if t > self._max_seen:
            self._max_seen = t
        if len(self._pending) >= _DRAIN_BATCH:
            self._drain(self._max_seen - self.reorder_tolerance)

    def observe_batch(self, pairs: Iterable[Tuple[Any, bool]]) -> None:
        pending = self._pending
        seq = self._seq
        max_seen = self._max_seen
        for alert, _kept in pairs:
            t = alert.timestamp
            pending.append(
                (t, seq, (t, alert.category, alert.source, alert.record.severity))
            )
            seq += 1
            if t > max_seen:
                max_seen = t
        self.observed += seq - self._seq
        self._seq = seq
        self._max_seen = max_seen
        if len(pending) >= _DRAIN_BATCH:
            self._drain(max_seen - self.reorder_tolerance)

    def _drain(self, watermark: float) -> None:
        pending = self._pending
        if not pending:
            if watermark != -math.inf:
                self.miner.advance(watermark)
            return
        pending.sort()
        # (watermark,) sorts before every (t, seq, alert) with t ==
        # watermark, so the split keeps t < watermark strictly.
        cut = bisect_left(pending, (watermark,))
        if cut:
            ready = pending[:cut]
            del pending[:cut]
            self.ensemble.advance([entry[2] for entry in ready])
            self.miner.extend_columns(
                [entry[0] for entry in ready],
                [entry[2][1] for entry in ready],
                [entry[2][2] for entry in ready],
            )
        self.miner.advance(watermark)

    def finish(self) -> None:
        """Flush: the stream ended, so every pending alert is final."""
        if self._finished:
            return
        self._drain(math.inf)
        self._finished = True

    # -- reporting -----------------------------------------------------

    def report(self) -> PredictionReport:
        return PredictionReport(
            warnings=tuple(self.ensemble.warnings),
            warnings_emitted=self.ensemble.warnings_emitted,
            members=tuple(self.ensemble.member_rows()),
            refits=self.ensemble.refits,
            observed=self.observed,
            graph=self.miner.graph(),
        )

    # -- durability ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.key(),
            "reorder_tolerance": self.reorder_tolerance,
            "miner": self.miner.state_dict(),
            "ensemble": self.ensemble.state_dict(),
            "pending": [
                (t, seq, tuple(slim)) for t, seq, slim in sorted(self._pending)
            ],
            "seq": self._seq,
            "max_seen": self._max_seen,
            "observed": self.observed,
            "finished": self._finished,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        if tuple(state["config"]) != self.config.key():
            raise ValueError(
                "prediction stage configuration mismatch: checkpoint %r vs %r"
                % (tuple(state["config"]), self.config.key())
            )
        self.miner.load_state_dict(state["miner"])
        self.ensemble.load_state_dict(state["ensemble"])
        self._pending = [
            (t, int(seq), tuple(slim)) for t, seq, slim in state["pending"]
        ]
        self._seq = int(state["seq"])
        self._max_seen = state["max_seen"]
        self.observed = int(state["observed"])
        self._finished = bool(state["finished"])

"""Online predictor ensemble over the live alert stream.

The offline :class:`~repro.prediction.ensemble.PredictorEnsemble` trains
on one span and warns over another, both known up front.  Online, the
stream is unbounded, so the ensemble is *refit on a doubling schedule*:
after ``first_refit`` finalized alerts, then at 2x, 4x, 8x, ... that
count.  Count-based (rather than wall-clock) scheduling makes the refit
points a deterministic function of the alert sequence — independent of
batch sizes, drivers, and stream density — which is what lets the golden
suite demand byte-identical warning streams from serial and sharded
runs, and keeps the number of fits logarithmic in stream length.

Each refit runs the offline ensemble on the retained history (a training
span and a validation span split ``validation_fraction`` from the end)
and *translates* the selected members into cheap per-alert runtimes:

* ``burst``   — trailing-window count against the trained threshold;
* ``severity``— high-severity label match;
* ``precursor``— learned precursor-category trigger;
* ``dft``     — per-source dispersion-frame rules
  (:func:`repro.prediction.dft._rules_fire` on the last six arrivals).

Runtime state that must survive a refit (refractory clocks, per-source
DFT histories) is carried over whenever a category keeps the same
specialist kind.  Warnings are lead-time-stamped: ``valid_from`` /
``valid_until`` bound when the predicted failure is expected, mirroring
the scoring window of :func:`repro.prediction.base.evaluate`.
"""

from __future__ import annotations

import copy
import math
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field, fields
from typing import (
    Any,
    Deque,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..prediction.base import Warning_
from ..prediction.dft import DftPredictor, _rules_fire
from ..prediction.ensemble import PredictorEnsemble
from ..prediction.features import AlertHistory
from ..prediction.predictors import (
    BurstPredictor,
    PrecursorPredictor,
    SeverityPredictor,
)


class SlimAlert(NamedTuple):
    """The prediction-relevant projection of an engine alert.

    Structurally compatible with what :class:`AlertHistory` and the
    offline predictors read (``timestamp``/``category``/``source`` plus
    ``record.severity`` — ``record`` returns ``self``), while staying a
    tiny picklable tuple for checkpoint state and refit history.

    The hot path trades the named view away: the stage and the
    ensemble's per-alert loops carry plain ``(timestamp, category,
    source, severity)`` tuples (namedtuple construction is a python-
    level call per alert) and wrap them as :class:`SlimAlert` only at
    refit time, when the offline predictors need attribute access.
    Plain tuples and ``SlimAlert`` compare equal field-for-field, so
    either form may be fed to :meth:`OnlineEnsemble.advance`.
    """

    timestamp: float
    category: str
    source: str
    severity: Optional[str]

    @property
    def record(self) -> "SlimAlert":
        return self


@dataclass(frozen=True)
class OnlineWarning(Warning_):
    """A :class:`Warning_` with provenance and its actionable window."""

    kind: str = ""
    valid_from: float = 0.0
    valid_until: float = 0.0


@dataclass(frozen=True)
class PredictionConfig:
    """Knobs for the streaming miner + online ensemble."""

    # correlation miner
    pair_window: float = 300.0
    spatial_window: float = 60.0
    decay_half_life: float = 3600.0
    max_edges: int = 512
    max_source_edges: int = 4096
    prune_interval: float = 600.0
    # ensemble refit schedule
    kinds: Tuple[str, ...] = ("burst", "severity", "precursor", "dft")
    first_refit: int = 512
    refit_growth: float = 2.0
    # Refit cost is O(refits x fit window); 4096 recent alerts hold
    # several validation failures for every calibrated scenario while
    # keeping the doubling-schedule refits cheap on dense streams.
    fit_max_alerts: int = 4096
    validation_fraction: float = 1.0 / 3.0
    # selection thresholds (see PredictorEnsemble)
    min_f1: float = 0.2
    min_precision: float = 0.25
    min_failures: int = 4
    lead_min: float = 10.0
    lead_max: float = 3600.0
    burst_window: float = 600.0
    # bounded retention of emitted warnings (full count still reported)
    max_warnings: int = 20000

    def key(self) -> Tuple[Any, ...]:
        return tuple(getattr(self, f.name) for f in fields(self))


@dataclass
class MemberRow:
    """Reporting row for one installed specialist."""

    target: str
    kind: str
    precision: float
    recall: float
    f1: float


class OnlineEnsemble:
    """Per-category specialists refit on a doubling schedule.

    Feed time-ordered finalized alerts through :meth:`advance`; read
    emitted warnings from :attr:`warnings`.
    """

    def __init__(self, config: Optional[PredictionConfig] = None) -> None:
        self.config = config or PredictionConfig()
        cfg = self.config
        self._history: Deque[SlimAlert] = deque(maxlen=cfg.fit_max_alerts)
        self._processed = 0
        self._next_refit = int(cfg.first_refit)
        self.refits = 0
        self.members: Dict[str, Dict[str, Any]] = {}
        self.warnings: Deque[OnlineWarning] = deque(maxlen=cfg.max_warnings)
        self.warnings_emitted = 0
        # trailing-window buffer for burst counting: ascending times with
        # a consumed-prefix pointer (compacted periodically)
        self._burst_buf: List[float] = []
        self._burst_start = 0
        # derived runtime indexes (rebuilt by _reindex)
        self._burst_members: List[Dict[str, Any]] = []
        self._min_burst_threshold = math.inf
        self._sev_members: List[Dict[str, Any]] = []
        self._precursor_trigger: Dict[str, List[Tuple[Dict[str, Any], float]]] = {}
        self._dft_members: Dict[str, Dict[str, Any]] = {}

    # -- the per-alert hot path --------------------------------------

    def advance(self, alerts: Sequence[SlimAlert]) -> None:
        """Process finalized alerts (ascending timestamps).

        Segmented: spans with no installed members and no refit boundary
        take a bulk path (list extends; no per-alert work), which keeps
        the no-signature case — most streams, and the throughput
        benchmark — nearly free without changing a single emission:
        the slow path recomputes its burst-window pointer from any
        lower bound, so bulk and per-alert processing are equivalent.
        """
        if not isinstance(alerts, list):
            alerts = list(alerts)
        i, n = 0, len(alerts)
        while i < n:
            if self._processed >= self._next_refit:
                self._refit(alerts[i][0])
            until_refit = self._next_refit - self._processed
            stop = n if until_refit > n - i else i + until_refit
            if self.members:
                self._advance_slow(alerts[i:stop] if (i, stop) != (0, n) else alerts)
            else:
                chunk = alerts[i:stop] if (i, stop) != (0, n) else alerts
                buf = self._burst_buf
                buf.extend(a[0] for a in chunk)
                self._history.extend(chunk)
                self._processed += stop - i
                # Keep the trailing-window pointer and compaction
                # current so a later member install starts from a
                # tight, bounded buffer.
                start = bisect_left(
                    buf, buf[-1] - self.config.burst_window, self._burst_start
                )
                self._burst_start = start
                if start > 8192:
                    del buf[:start]
                    self._burst_start = 0
            i = stop

    def _advance_slow(self, alerts: Sequence[SlimAlert]) -> None:
        """Per-alert member gating (some specialist is installed)."""
        if not self._burst_members:
            self._advance_no_burst(alerts)
            return
        buf = self._burst_buf
        window = self.config.burst_window
        burst_members = self._burst_members
        min_burst = self._min_burst_threshold
        sev_members = self._sev_members
        precursor_trigger = self._precursor_trigger
        dft_members = self._dft_members
        buf_append = buf.append
        history_append = self._history.append
        for alert in alerts:
            t = alert[0]
            if burst_members:
                # Trailing-window alert count over (t - window, ..., t);
                # equals AlertHistory.count_between(t - window, t) plus
                # this alert once appended — the burst runtime matches
                # the offline predictor's "count at arrival" convention.
                start = self._burst_start
                lo = t - window
                while start < len(buf) and buf[start] < lo:
                    start += 1
                self._burst_start = start
                count = bisect_left(buf, t, start) - start
                if count >= min_burst:
                    for member in burst_members:
                        if count >= member["threshold"]:
                            self._try_emit(member, t, float(count))
                if start > 8192:
                    del buf[:start]
                    self._burst_start = 0
            if sev_members and alert[3] is not None:
                for member in sev_members:
                    if alert[3] in member["labels"]:
                        self._try_emit(member, t, 1.0)
            if precursor_trigger:
                triggers = precursor_trigger.get(alert[1])
                if triggers is not None:
                    for member, lift in triggers:
                        self._try_emit(member, t, lift)
            dft = dft_members.get(alert[1]) if dft_members else None
            if dft is not None:
                times = dft["sources"].get(alert[2])
                if times is None:
                    times = dft["sources"][alert[2]] = []
                times.append(t)
                if len(times) > 6:
                    del times[0]
                if len(times) >= dft["min_history"]:
                    fired = dft["last_fired"].get(alert[2])
                    if fired is None or t - fired >= dft["refractory"]:
                        if _rules_fire(times) is not None:
                            dft["last_fired"][alert[2]] = t
                            self._emit(dft, t, 1.0)
            buf_append(t)
            history_append(alert)
        self._processed += len(alerts)

    def _advance_no_burst(self, alerts: Sequence[SlimAlert]) -> None:
        """Members installed, but none of them burst-rate: no per-alert
        trailing-window upkeep is needed, so the stream bulk-appends and
        member logic runs only over the alerts that could trigger one
        (matching severity label or a watched category).  None of the
        remaining member kinds reads the burst buffer or the history, so
        skipping the others emits exactly what the per-alert loop would,
        in the same stream order."""
        buf = self._burst_buf
        buf.extend(a[0] for a in alerts)
        self._history.extend(alerts)
        self._processed += len(alerts)
        sev_members = self._sev_members
        precursor_trigger = self._precursor_trigger
        dft_members = self._dft_members
        hot = set(precursor_trigger)
        hot.update(dft_members)
        if sev_members:
            sel: Sequence[SlimAlert] = [
                a for a in alerts if a[3] is not None or a[1] in hot
            ]
        elif hot:
            sel = [a for a in alerts if a[1] in hot]
        else:
            sel = ()
        for alert in sel:
            t = alert[0]
            if sev_members and alert[3] is not None:
                for member in sev_members:
                    if alert[3] in member["labels"]:
                        self._try_emit(member, t, 1.0)
            if precursor_trigger:
                triggers = precursor_trigger.get(alert[1])
                if triggers is not None:
                    for member, lift in triggers:
                        self._try_emit(member, t, lift)
            dft = dft_members.get(alert[1]) if dft_members else None
            if dft is not None:
                times = dft["sources"].get(alert[2])
                if times is None:
                    times = dft["sources"][alert[2]] = []
                times.append(t)
                if len(times) > 6:
                    del times[0]
                if len(times) >= dft["min_history"]:
                    fired = dft["last_fired"].get(alert[2])
                    if fired is None or t - fired >= dft["refractory"]:
                        if _rules_fire(times) is not None:
                            dft["last_fired"][alert[2]] = t
                            self._emit(dft, t, 1.0)
        start = bisect_left(
            buf, buf[-1] - self.config.burst_window, self._burst_start
        )
        self._burst_start = start
        if start > 8192:
            del buf[:start]
            self._burst_start = 0

    def _try_emit(self, member: Dict[str, Any], t: float, score: float) -> None:
        last = member["last_warn"]
        if last is None or t - last >= member["refractory"]:
            self._emit(member, t, score)

    def _emit(self, member: Dict[str, Any], t: float, score: float) -> None:
        member["last_warn"] = t
        cfg = self.config
        self.warnings.append(
            OnlineWarning(
                t=t,
                category=member["target"],
                score=score,
                kind=member["kind"],
                valid_from=t + cfg.lead_min,
                valid_until=t + cfg.lead_max,
            )
        )
        self.warnings_emitted += 1

    # -- refitting ----------------------------------------------------

    def _factories(self) -> Dict[str, Any]:
        cfg = self.config
        makers = {
            "burst": lambda target: BurstPredictor(target, window=cfg.burst_window),
            "severity": lambda target: SeverityPredictor(target),
            "precursor": lambda target: PrecursorPredictor(target),
            "dft": lambda target: DftPredictor(target),
        }
        out = {}
        for kind in cfg.kinds:
            if kind not in makers:
                raise ValueError("unknown predictor kind: %r" % (kind,))
            out[kind] = makers[kind]
        return out

    def _refit(self, now: float) -> None:
        cfg = self.config
        self._next_refit = max(
            int(math.ceil(self._processed * cfg.refit_growth)),
            self._processed + 1,
        )
        # Wrap the plain-tuple history rows for the offline
        # predictors, which read named attributes.
        alerts = [SlimAlert(*a) for a in self._history]
        if len(alerts) < 2 * cfg.min_failures:
            return
        t0 = alerts[0].timestamp
        span = now - t0
        if span <= 0:
            return
        cut = now - span * cfg.validation_fraction
        if cut <= t0:
            return
        ensemble = PredictorEnsemble(
            factories=self._factories(),
            min_f1=cfg.min_f1,
            min_precision=cfg.min_precision,
            min_failures=cfg.min_failures,
            lead_min=cfg.lead_min,
            lead_max=cfg.lead_max,
        )
        ensemble.fit(AlertHistory(alerts), (t0, cut), (cut, now))
        self.refits += 1
        self._install(ensemble)

    def _install(self, ensemble: PredictorEnsemble) -> None:
        old = self.members
        members: Dict[str, Dict[str, Any]] = {}
        for target in sorted(ensemble.members):
            chosen = ensemble.members[target]
            prev = old.get(target)
            carry = prev if prev is not None and prev["kind"] == chosen.kind else None
            row: Dict[str, Any] = {
                "target": target,
                "kind": chosen.kind,
                "precision": chosen.validation.precision,
                "recall": chosen.validation.recall,
                "f1": chosen.validation.f1,
                "last_warn": carry["last_warn"] if carry else None,
            }
            predictor = chosen.predictor
            if chosen.kind == "burst":
                row["threshold"] = max(
                    3.0, predictor._expected_per_window * predictor.sigma
                )
                row["refractory"] = predictor.refractory
            elif chosen.kind == "severity":
                row["labels"] = sorted(predictor.alert_labels)
                row["refractory"] = predictor.refractory
            elif chosen.kind == "precursor":
                row["precursors"] = dict(predictor.precursors)
                row["refractory"] = predictor.refractory
            elif chosen.kind == "dft":
                row["refractory"] = predictor.refractory
                row["min_history"] = 2
                row["sources"] = carry["sources"] if carry else {}
                row["last_fired"] = carry["last_fired"] if carry else {}
            members[target] = row
        self.members = members
        self._reindex()

    def _reindex(self) -> None:
        self._burst_members = []
        self._sev_members = []
        self._precursor_trigger = {}
        self._dft_members = {}
        for target in sorted(self.members):
            member = self.members[target]
            kind = member["kind"]
            if kind == "burst":
                self._burst_members.append(member)
            elif kind == "severity":
                self._sev_members.append(member)
            elif kind == "precursor":
                for category, lift in sorted(member["precursors"].items()):
                    self._precursor_trigger.setdefault(category, []).append(
                        (member, lift)
                    )
            elif kind == "dft":
                self._dft_members[target] = member
        self._min_burst_threshold = min(
            (m["threshold"] for m in self._burst_members), default=math.inf
        )

    # -- reporting ----------------------------------------------------

    def member_rows(self) -> List[MemberRow]:
        return [
            MemberRow(
                target=m["target"],
                kind=m["kind"],
                precision=m["precision"],
                recall=m["recall"],
                f1=m["f1"],
            )
            for m in self.members.values()
        ]

    # -- durability ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "params": self.config.key(),
            "processed": self._processed,
            "next_refit": self._next_refit,
            "refits": self.refits,
            "history": [tuple(a) for a in self._history],
            "burst_buf": list(self._burst_buf[self._burst_start :]),
            "members": copy.deepcopy(self.members),
            "warnings": [
                (w.t, w.category, w.score, w.kind, w.valid_from, w.valid_until)
                for w in self.warnings
            ],
            "warnings_emitted": self.warnings_emitted,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        params = tuple(state["params"])
        if params != self.config.key():
            raise ValueError(
                "prediction configuration mismatch: checkpoint %r vs current %r"
                % (params, self.config.key())
            )
        cfg = self.config
        self._processed = int(state["processed"])
        self._next_refit = int(state["next_refit"])
        self.refits = int(state["refits"])
        self._history = deque(
            (tuple(row) for row in state["history"]),
            maxlen=cfg.fit_max_alerts,
        )
        self._burst_buf = list(state["burst_buf"])
        self._burst_start = 0
        self.members = copy.deepcopy(state["members"])
        self.warnings = deque(
            (
                OnlineWarning(
                    t=row[0],
                    category=row[1],
                    score=row[2],
                    kind=row[3],
                    valid_from=row[4],
                    valid_until=row[5],
                )
                for row in state["warnings"]
            ),
            maxlen=cfg.max_warnings,
        )
        self.warnings_emitted = int(state["warnings_emitted"])
        self._reindex()

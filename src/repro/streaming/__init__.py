"""Streaming correlation mining and online failure prediction.

The offline analyses of Section 4/5 — spatial and inter-tag correlation
(:mod:`repro.analysis.correlation`) and the per-category predictor
ensemble (:mod:`repro.prediction.ensemble`) — promoted into the engine
as a composable stage:

* :class:`StreamingCorrelationMiner` — a windowed co-occurrence graph
  over (category, category) and (category, source) pairs, maintained
  incrementally with exponential decay, bounded memory (top-k edge
  retention, watermark-driven window eviction), and snapshot/restore
  through the durable checkpoint wire;
* :class:`OnlineEnsemble` — the Section 5 ensemble refit on a doubling
  schedule over the live alert stream, emitting lead-time-stamped
  warnings as alerts arrive;
* :class:`PredictionStage` — the engine-facing stage tying both to the
  watermark of the alert stream, attached to any driver's sink seam via
  ``api.run_stream(..., predict=True)``.

The differential suites in ``tests/prediction/`` pin the miner to the
offline :func:`~repro.analysis.correlation.tag_correlation` /
:func:`~repro.analysis.correlation.spatial_correlation` baselines for
any batch partition of the stream, including batch size 1 and
out-of-order arrival within the reorder tolerance.
"""

from .miner import (
    CorrelationEdge,
    CorrelationGraph,
    SourceEdge,
    StreamingCorrelationMiner,
)
from .online import OnlineEnsemble, OnlineWarning, SlimAlert
from .stage import PredictionConfig, PredictionReport, PredictionStage

__all__ = [
    "CorrelationEdge",
    "CorrelationGraph",
    "OnlineEnsemble",
    "OnlineWarning",
    "PredictionConfig",
    "PredictionReport",
    "PredictionStage",
    "SlimAlert",
    "SourceEdge",
    "StreamingCorrelationMiner",
]

"""Windowed co-occurrence correlation miner with exponential decay.

The offline analyses (:func:`repro.analysis.correlation.tag_correlation`
and :func:`~repro.analysis.correlation.spatial_correlation`) walk a
complete, sorted alert list after the run.  The miner maintains the
same statistics *incrementally* over the live stream so a correlation
graph is available at any point of a run, survives checkpoint/resume,
and costs a bounded amount of memory regardless of stream length:

* **Watermark-driven finalization.**  An alert at time ``t`` only
  participates in pair mining once the watermark passes
  ``t + pair_window`` — every partner it could pair with has then been
  seen, so the per-alert nearest-neighbour decision is final and equals
  the offline computation on the full stream.
* **Window eviction.**  Per-category time indexes only retain alerts
  that can still be the nearest partner of a pending alert
  (``>= oldest pending - pair_window``); everything older is dropped.
* **Decay + top-k retention.**  Each (category, category) and
  (category, source) edge carries an exponentially decayed weight
  (half-life ``decay_half_life``); when the edge tables exceed their
  caps the lightest edges are dropped at fixed stream-time boundaries
  so pruning is independent of how the stream was batched.

Exactness contract (pinned by ``tests/prediction/test_online_differential.py``):

* coincidence counts, per-category counts, and spatial burst statistics
  are integer-exact matches of the offline code for any batching;
* per-edge lag sums are accumulated on a fixed ``2**-20`` second grid —
  each addend is an exact float, so the sum is order-independent and
  ``mean_lag`` agrees with the offline value to < 1e-6 s;
* decayed weights use a closed form whose batch-to-batch variance is a
  few ulps; snapshots round them to ``WEIGHT_DIGITS`` decimals (and
  order edges by the rounded value) so exported graphs are stable.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.correlation import SpatialCorrelation, TagCorrelation

#: Pair lags are quantized to this grid before summing.  Each quantized
#: lag is an exact binary float and ``|lag| <= pair_window``, so sums
#: stay integer-valued in grid units (exact up to 2**53) and are
#: independent of addition order — the property the differential suite
#: relies on across batch partitions.
LAG_GRID = 2.0**-20
_INV_GRID = 2.0**20

#: Decimal digits kept when weights are exported (graph snapshots,
#: golden fixtures); coarse enough to absorb ulp-level batching variance
#: in the decayed accumulators even for large weights, so snapshot edge
#: ordering (sorted on the rounded weight) is batch-invariant too.
WEIGHT_DIGITS = 6


def _decay(weight: float, from_t: float, to_t: float, half_life: float) -> float:
    if weight == 0.0:
        return 0.0
    return weight * 2.0 ** (-(to_t - from_t) / half_life)


class _PairEdge:
    """Two-sided accumulator for one unordered (category, category) pair.

    ``lo``/``hi`` refer to the two category codes in sorted order; side
    0 accumulates coincidences found when finalizing an alert of the
    ``lo`` category against the ``hi`` index, side 1 the reverse.  At
    snapshot time the side whose category is rarer becomes the offline
    "base" side, matching ``tag_correlation``'s choice.
    """

    __slots__ = ("co", "lag_units", "weight", "weight_t")

    def __init__(self) -> None:
        self.co = [0, 0]
        self.lag_units = [0.0, 0.0]  # integer-valued floats, grid units
        self.weight = 0.0
        self.weight_t = 0.0

    def add(self, side: int, count: int, lag_units: float) -> None:
        self.co[side] += count
        self.lag_units[side] += lag_units

    def bump_weight(self, times: Sequence[float], half_life: float) -> None:
        # Scalar loop: groups are small, so python pow beats the numpy
        # call overhead; the common singleton-at-t_ref case adds exactly
        # 1.0 either way.
        t_ref = times[-1]
        if t_ref < self.weight_t:
            t_ref = self.weight_t
        add = 0.0
        for t in times:
            add += 2.0 ** ((t - t_ref) / half_life)
        self.weight = _decay(self.weight, self.weight_t, t_ref, half_life) + add
        self.weight_t = t_ref

    def state(self) -> Tuple[int, int, float, float, float, float]:
        return (
            self.co[0],
            self.co[1],
            self.lag_units[0],
            self.lag_units[1],
            self.weight,
            self.weight_t,
        )

    @classmethod
    def from_state(cls, state: Sequence[float]) -> "_PairEdge":
        edge = cls()
        edge.co = [int(state[0]), int(state[1])]
        edge.lag_units = [float(state[2]), float(state[3])]
        edge.weight = float(state[4])
        edge.weight_t = float(state[5])
        return edge


class _SourceEdge:
    __slots__ = ("count", "weight", "weight_t")

    def __init__(self) -> None:
        self.count = 0
        self.weight = 0.0
        self.weight_t = 0.0

    def bump(self, times: Sequence[float], half_life: float) -> None:
        self.count += len(times)
        t_ref = times[-1]
        if t_ref < self.weight_t:
            t_ref = self.weight_t
        add = 0.0
        for t in times:
            add += 2.0 ** ((t - t_ref) / half_life)
        self.weight = _decay(self.weight, self.weight_t, t_ref, half_life) + add
        self.weight_t = t_ref

    def state(self) -> Tuple[int, float, float]:
        return (self.count, self.weight, self.weight_t)

    @classmethod
    def from_state(cls, state: Sequence[float]) -> "_SourceEdge":
        edge = cls()
        edge.count = int(state[0])
        edge.weight = float(state[1])
        edge.weight_t = float(state[2])
        return edge


@dataclass(frozen=True)
class CorrelationEdge:
    """One (category, category) edge of the mined graph."""

    category_a: str
    category_b: str
    count_a: int
    count_b: int
    coincidences: int
    coincidence_rate: float
    mean_lag: float
    weight: float

    @property
    def is_correlated(self) -> bool:
        return self.coincidences >= 3 and self.coincidence_rate >= 0.5


@dataclass(frozen=True)
class SourceEdge:
    """One (category, source) edge of the mined graph."""

    category: str
    source: str
    count: int
    weight: float


@dataclass(frozen=True)
class CorrelationGraph:
    """Point-in-time snapshot of the mined correlation structure."""

    edges: Tuple[CorrelationEdge, ...]
    source_edges: Tuple[SourceEdge, ...]
    spatial: Tuple[SpatialCorrelation, ...]
    finalized_alerts: int

    def edge(self, a: str, b: str) -> Optional[CorrelationEdge]:
        lo, hi = sorted((a, b))
        for e in self.edges:
            if e.category_a == lo and e.category_b == hi:
                return e
        return None

    def summary_lines(self, top: int = 5) -> List[str]:
        lines = [
            "edges=%d source_edges=%d spatial=%d finalized=%d"
            % (
                len(self.edges),
                len(self.source_edges),
                len(self.spatial),
                self.finalized_alerts,
            )
        ]
        for e in self.edges[:top]:
            lines.append(
                "  %s ~ %s co=%d rate=%.3f lag=%+.2fs w=%.3f"
                % (
                    e.category_a,
                    e.category_b,
                    e.coincidences,
                    e.coincidence_rate,
                    e.mean_lag,
                    e.weight,
                )
            )
        return lines


class StreamingCorrelationMiner:
    """Incremental tag/spatial correlation over an alert stream.

    Feed finalized-ordered alerts with :meth:`extend` and advance the
    completeness frontier with :meth:`advance`; both are driven by
    :class:`~repro.streaming.stage.PredictionStage`, which only hands
    the miner alerts whose order can no longer change.
    """

    def __init__(
        self,
        pair_window: float = 300.0,
        spatial_window: float = 60.0,
        decay_half_life: float = 3600.0,
        max_edges: int = 512,
        max_source_edges: int = 4096,
        prune_interval: float = 600.0,
    ) -> None:
        if pair_window <= 0 or spatial_window <= 0:
            raise ValueError("correlation windows must be positive")
        if decay_half_life <= 0 or prune_interval <= 0:
            raise ValueError("decay half-life and prune interval must be positive")
        self.pair_window = float(pair_window)
        self.spatial_window = float(spatial_window)
        self.decay_half_life = float(decay_half_life)
        self.max_edges = int(max_edges)
        self.max_source_edges = int(max_source_edges)
        self.prune_interval = float(prune_interval)

        self._vocab: Dict[str, int] = {}
        self._cats: List[str] = []
        self._counts: List[int] = []
        # Per-category ascending times retained for nearest-partner
        # lookups; the paired ndarray cache is invalidated on append.
        self._recent: List[List[float]] = []
        self._recent_np: List[Optional[np.ndarray]] = []
        # [closed_bursts, distinct_source_sum, multi_source_bursts,
        #  last_time (or None), open_burst_sources]
        self._spatial: List[List[Any]] = []
        self._edges: Dict[Tuple[int, int], _PairEdge] = {}
        self._src_edges: Dict[Tuple[int, str], _SourceEdge] = {}
        # Finalization queue, columnar (times / category codes / sources
        # in ascending time order) with a consumed-prefix pointer:
        # parallel lists keep ingest at list.extend speed and let
        # finalization slice straight into numpy without per-event
        # tuple unpacking.
        self._qt: List[float] = []
        self._qc: List[int] = []
        self._qs: List[str] = []
        self._queue_start = 0
        self._next_prune: Optional[float] = None
        self.finalized = 0
        self.pruned_edges = 0
        self.pruned_source_edges = 0

    # -- ingestion ---------------------------------------------------

    def _code(self, category: str) -> int:
        code = self._vocab.get(category)
        if code is None:
            code = len(self._cats)
            self._vocab[category] = code
            self._cats.append(category)
            self._counts.append(0)
            self._recent.append([])
            self._recent_np.append(None)
            self._spatial.append([0, 0, 0, None, set()])
        return code

    def extend(self, events: Iterable[Tuple[float, str, str]]) -> None:
        """Ingest ``(time, category, source)`` events in ascending time order."""
        events = list(events)
        if not events:
            return
        self.extend_columns(
            [e[0] for e in events],
            [e[1] for e in events],
            [e[2] for e in events],
        )

    def extend_columns(
        self,
        times: List[float],
        categories: List[str],
        sources: List[str],
    ) -> None:
        """Columnar :meth:`extend` — the hot ingest path.  Three parallel
        lists let the queue append, the order check, and the per-category
        index updates all run as bulk operations instead of a per-event
        python loop."""
        n = len(times)
        if n == 0:
            return
        if len(categories) != n or len(sources) != n:
            raise ValueError("miner columns must have equal lengths")
        qt = self._qt
        t_arr = np.asarray(times, dtype=np.float64)
        if len(qt) > self._queue_start and times[0] < qt[-1]:
            raise ValueError(
                "miner events must be time-ordered: %r after %r"
                % (times[0], qt[-1])
            )
        if n > 1:
            backwards = t_arr[1:] < t_arr[:-1]
            if backwards.any():
                bad = int(np.nonzero(backwards)[0][0])
                raise ValueError(
                    "miner events must be time-ordered: %r after %r"
                    % (times[bad + 1], times[bad])
                )
        vocab = self._vocab
        codes = [vocab.get(c) for c in categories]
        if None in codes:
            new_code = self._code
            for i, code in enumerate(codes):
                if code is None:
                    codes[i] = new_code(categories[i])
        qt.extend(times)
        self._qc.extend(codes)
        self._qs.extend(sources)
        recent = self._recent
        recent_np = self._recent_np
        if len(set(codes)) == 1:
            code = codes[0]
            recent[code].extend(times)
            recent_np[code] = None
        else:
            c_arr = np.asarray(codes, dtype=np.intp)
            order = np.argsort(c_arr, kind="stable")
            sorted_codes = c_arr[order]
            sorted_times = t_arr[order]
            bounds = np.nonzero(np.diff(sorted_codes))[0] + 1
            starts = [0] + bounds.tolist()
            stops = bounds.tolist() + [n]
            for s, e in zip(starts, stops):
                code = int(sorted_codes[s])
                recent[code].extend(sorted_times[s:e].tolist())
                recent_np[code] = None

    # -- finalization ------------------------------------------------

    def advance(self, watermark: float) -> int:
        """Finalize every ingested alert with ``t + pair_window < watermark``.

        Returns the number of alerts finalized by this call.
        """
        qt = self._qt
        start = self._queue_start
        cutoff = watermark - self.pair_window
        end = bisect_left(qt, cutoff, start)
        done = end - start
        if done > 0:
            self._finalize(
                qt[start:end], self._qc[start:end], self._qs[start:end]
            )
            self._queue_start = end
            if end > 4096 and end * 2 > len(qt):
                del qt[:end]
                del self._qc[:end]
                del self._qs[:end]
                self._queue_start = 0
        self._evict(watermark)
        return done

    def _evict(self, watermark: float) -> None:
        if self._queue_start < len(self._qt):
            oldest_pending = self._qt[self._queue_start]
        else:
            oldest_pending = watermark
        if not math.isfinite(oldest_pending):
            # Flush: nothing can pair any more; drop all indexes.
            for code, lst in enumerate(self._recent):
                if lst:
                    self._recent[code] = []
                    self._recent_np[code] = None
            return
        horizon = oldest_pending - self.pair_window
        for code, lst in enumerate(self._recent):
            k = bisect_left(lst, horizon)
            if k:
                del lst[:k]
                self._recent_np[code] = None

    def _finalize(
        self, times: List[float], codes: List[int], sources: List[str]
    ) -> None:
        n = len(times)
        t_arr = np.asarray(times, dtype=np.float64)
        c_arr = np.asarray(codes, dtype=np.intp)
        ncat = len(self._cats)
        if (
            len(self._edges) + (ncat * (ncat - 1)) // 2 <= self.max_edges
            and len(self._src_edges) + n <= self.max_source_edges
        ):
            # Worst case, this chunk cannot push either table past its
            # cap, so every prune boundary it crosses is an identity —
            # mine it as one slice (fewer, larger vectorized passes) and
            # replay only the boundary bookkeeping.  The _next_prune
            # anchor walk below repeats the crossing loop's arithmetic
            # step for step, so the values stay bit-identical to the
            # slow path no matter how the stream was batched.
            self._finalize_slice(0, n, times, codes, sources, t_arr, c_arr)
            interval = self.prune_interval
            if self._next_prune is None:
                self._next_prune = (
                    math.floor(times[0] / interval) + 1.0
                ) * interval
            lo = 0
            while True:
                boundary = self._next_prune
                lo = bisect_left(times, boundary, lo)
                if lo >= n:
                    return
                skip = math.floor((times[lo] - boundary) / interval)
                self._next_prune = boundary + (skip + 1.0) * interval
        lo = 0
        while lo < n:
            if self._next_prune is None:
                self._next_prune = (
                    math.floor(times[lo] / self.prune_interval) + 1.0
                ) * self.prune_interval
            if times[n - 1] < self._next_prune:
                hi = n
            else:
                hi = bisect_left(times, self._next_prune, lo)
            if hi > lo:
                self._finalize_slice(lo, hi, times, codes, sources, t_arr, c_arr)
                lo = hi
            if lo < n:
                # times[lo] crossed the boundary: prune there, then jump
                # past any empty boundaries in one step.  Pruning twice
                # with no data in between only shifts every weight by the
                # same decay factor (ranking unchanged), so one prune per
                # crossing run equals pruning at each boundary — which
                # keeps the result independent of how advance() calls
                # were batched.
                boundary = self._next_prune
                self._prune(boundary)
                skip = math.floor((times[lo] - boundary) / self.prune_interval)
                self._next_prune = boundary + (skip + 1.0) * self.prune_interval

    def _finalize_slice(
        self,
        lo: int,
        hi: int,
        times: List[float],
        codes: List[int],
        sources: List[str],
        t_arr: np.ndarray,
        c_arr: np.ndarray,
    ) -> None:
        self.finalized += hi - lo
        t_view = t_arr[lo:hi]
        c_view = c_arr[lo:hi]
        ncat = len(self._cats)
        for code, inc in enumerate(np.bincount(c_view, minlength=ncat)):
            if inc:
                self._counts[code] += int(inc)
        self._mine_pairs(t_view, c_view, ncat)
        self._update_spatial_and_sources(
            times[lo:hi], codes[lo:hi], sources[lo:hi], t_view, c_view
        )

    def _recent_array(self, code: int) -> np.ndarray:
        arr = self._recent_np[code]
        if arr is None:
            arr = np.asarray(self._recent[code], dtype=np.float64)
            self._recent_np[code] = arr
        return arr

    def _mine_pairs(self, t_arr: np.ndarray, codes: np.ndarray, ncat: int) -> None:
        """Nearest-partner search of the finalizing slice against every
        other category's retained index, vectorized per partner category."""
        window = self.pair_window
        half_life = self.decay_half_life
        for dcode in range(ncat):
            if not self._recent[dcode]:
                continue
            arr = self._recent_array(dcode)
            idx = np.searchsorted(arr, t_arr)
            left_ok = idx > 0
            right_ok = idx < arr.size
            left_lag = np.where(left_ok, arr[np.maximum(idx - 1, 0)] - t_arr, -np.inf)
            right_lag = np.where(
                right_ok, arr[np.minimum(idx, arr.size - 1)] - t_arr, np.inf
            )
            # left_lag <= 0 <= right_lag by construction; offline code
            # prefers the past partner on an exact |lag| tie (strict <).
            take_right = right_lag < -left_lag
            best = np.where(take_right, right_lag, left_lag)
            mask = (np.abs(best) <= window) & (codes != dcode)
            if not mask.any():
                continue
            mcodes = codes[mask]
            lag_units = np.rint(best[mask] * _INV_GRID)
            mtimes = t_arr[mask]
            order = np.argsort(mcodes, kind="stable")
            sorted_codes = mcodes[order]
            sorted_times = mtimes[order].tolist()
            sorted_units = lag_units[order].tolist()
            bounds = np.nonzero(np.diff(sorted_codes))[0] + 1
            starts = [0] + bounds.tolist()
            stops = bounds.tolist() + [sorted_codes.size]
            for s, e in zip(starts, stops):
                acode = int(sorted_codes[s])
                lo, hi = (acode, dcode) if acode < dcode else (dcode, acode)
                edge = self._edges.get((lo, hi))
                if edge is None:
                    edge = self._edges[(lo, hi)] = _PairEdge()
                side = 0 if acode == lo else 1
                # lag units are integer-valued floats: sum() is exact
                # and order-independent regardless of list vs ndarray.
                edge.add(side, int(e - s), float(sum(sorted_units[s:e])))
                edge.bump_weight(sorted_times[s:e], half_life)

    def _update_spatial_and_sources(
        self,
        times: List[float],
        codes: List[int],
        sources: List[str],
        t_arr: np.ndarray,
        c_view: np.ndarray,
    ) -> None:
        window = self.spatial_window
        half_life = self.decay_half_life
        by_src: Dict[Tuple[int, str], List[float]] = {}
        for code, source, t in zip(codes, sources, times):
            key = (code, source)
            lst = by_src.get(key)
            if lst is None:
                by_src[key] = [t]
            else:
                lst.append(t)
        src_edges = self._src_edges
        for key, src_times in by_src.items():
            edge = src_edges.get(key)
            if edge is None:
                edge = src_edges[key] = _SourceEdge()
            edge.bump(src_times, half_life)

        for code in np.unique(c_view):
            sel = np.nonzero(c_view == code)[0]
            seg_t = t_arr[sel]
            sel_list = sel.tolist()
            state = self._spatial[int(code)]
            if state[3] is not None and seg_t[0] - state[3] > window:
                self._close_burst(state)
            if seg_t.size > 1:
                breaks = (np.nonzero(np.diff(seg_t) > window)[0] + 1).tolist()
            else:
                breaks = []
            starts = [0] + breaks
            for i, s in enumerate(starts):
                e = starts[i + 1] if i + 1 < len(starts) else seg_t.size
                if i > 0:
                    self._close_burst(state)
                state[4].update(sources[j] for j in sel_list[s:e])
            state[3] = float(seg_t[-1])

    @staticmethod
    def _close_burst(state: List[Any]) -> None:
        sources = state[4]
        if not sources:
            return
        state[0] += 1
        distinct = len(sources)
        state[1] += distinct
        if distinct > 1:
            state[2] += 1
        state[4] = set()

    # -- bounded memory ----------------------------------------------

    def _prune(self, now: float) -> None:
        half_life = self.decay_half_life
        if len(self._edges) > self.max_edges:
            keep = max(1, (self.max_edges * 3) // 4)
            ranked = sorted(
                self._edges.items(),
                key=lambda kv: (-_decay(kv[1].weight, kv[1].weight_t, now, half_life), kv[0]),
            )
            dropped = ranked[keep:]
            self.pruned_edges += len(dropped)
            for key, _ in dropped:
                del self._edges[key]
        if len(self._src_edges) > self.max_source_edges:
            keep = max(1, (self.max_source_edges * 3) // 4)
            ranked = sorted(
                self._src_edges.items(),
                key=lambda kv: (-_decay(kv[1].weight, kv[1].weight_t, now, half_life), kv[0]),
            )
            dropped = ranked[keep:]
            self.pruned_source_edges += len(dropped)
            for key, _ in dropped:
                del self._src_edges[key]

    # -- snapshots ---------------------------------------------------

    def flushed(self) -> "StreamingCorrelationMiner":
        """A copy with every pending alert finalized (the live miner is
        untouched, so streaming can continue afterwards)."""
        clone = StreamingCorrelationMiner(
            pair_window=self.pair_window,
            spatial_window=self.spatial_window,
            decay_half_life=self.decay_half_life,
            max_edges=self.max_edges,
            max_source_edges=self.max_source_edges,
            prune_interval=self.prune_interval,
        )
        clone.load_state_dict(self.state_dict())
        clone.advance(math.inf)
        return clone

    def _flushed_or_self(self) -> "StreamingCorrelationMiner":
        if self._queue_start < len(self._qt):
            return self.flushed()
        return self

    def tag_correlation(self, a: str, b: str) -> Optional[TagCorrelation]:
        """The finalized streaming counterpart of
        :func:`repro.analysis.correlation.tag_correlation`."""
        snap = self._flushed_or_self()
        code_a = snap._vocab.get(a)
        code_b = snap._vocab.get(b)
        if code_a is None or code_b is None:
            return None
        lo, hi = (code_a, code_b) if code_a < code_b else (code_b, code_a)
        edge = snap._edges.get((lo, hi))
        count_a = snap._counts[code_a]
        count_b = snap._counts[code_b]
        if count_a == 0 or count_b == 0:
            return None
        # Offline picks the rarer tag as the base (ties: the first
        # argument); replicate with the final counts.
        if count_a <= count_b:
            base_code, base_count, other_count = code_a, count_a, count_b
        else:
            base_code, base_count, other_count = code_b, count_b, count_a
        if edge is None:
            co, lag_units = 0, 0.0
        else:
            side = 0 if base_code == lo else 1
            co = edge.co[side]
            lag_units = edge.lag_units[side]
        mean_lag = (lag_units * LAG_GRID) / co if co else 0.0
        return TagCorrelation(
            category_a=a,
            category_b=b,
            count_a=count_a,
            count_b=count_b,
            coincidences=co,
            coincidence_rate=co / min(count_a, count_b),
            mean_lag=mean_lag,
        )

    def spatial(self) -> Dict[str, SpatialCorrelation]:
        """The finalized streaming counterpart of
        :func:`repro.analysis.correlation.spatial_correlation`."""
        snap = self._flushed_or_self()
        out: Dict[str, SpatialCorrelation] = {}
        for code, category in enumerate(snap._cats):
            closed, dsum, multi, last_t, open_sources = snap._spatial[code]
            bursts = closed + (1 if open_sources else 0)
            if bursts == 0:
                continue
            distinct_sum = dsum + len(open_sources)
            multi_total = multi + (1 if len(open_sources) > 1 else 0)
            out[category] = SpatialCorrelation(
                category=category,
                incidents=bursts,
                mean_distinct_sources=distinct_sum / bursts,
                multi_source_fraction=multi_total / bursts,
            )
        return out

    def graph(self, max_edges: int = 64, max_source_edges: int = 64) -> CorrelationGraph:
        """Snapshot the decayed graph (finalized view), strongest first."""
        snap = self._flushed_or_self()
        rows: List[CorrelationEdge] = []
        for (lo, hi), edge in snap._edges.items():
            count_a = snap._counts[lo]
            count_b = snap._counts[hi]
            if count_a <= count_b:
                side, base, other = 0, count_a, count_b
            else:
                side, base, other = 1, count_b, count_a
            co = edge.co[side]
            if co == 0:
                continue
            rows.append(
                CorrelationEdge(
                    category_a=snap._cats[lo],
                    category_b=snap._cats[hi],
                    count_a=count_a,
                    count_b=count_b,
                    coincidences=co,
                    coincidence_rate=co / min(count_a, count_b),
                    mean_lag=round((edge.lag_units[side] * LAG_GRID) / co, 9),
                    weight=round(edge.weight, WEIGHT_DIGITS),
                )
            )
        rows.sort(key=lambda e: (-e.weight, e.category_a, e.category_b))
        src_rows = [
            SourceEdge(
                category=snap._cats[code],
                source=source,
                count=edge.count,
                weight=round(edge.weight, WEIGHT_DIGITS),
            )
            for (code, source), edge in snap._src_edges.items()
        ]
        src_rows.sort(key=lambda e: (-e.weight, e.category, e.source))
        spatial = tuple(
            sorted(snap.spatial().values(), key=lambda s: s.category)
        )
        return CorrelationGraph(
            edges=tuple(rows[:max_edges]),
            source_edges=tuple(src_rows[:max_source_edges]),
            spatial=spatial,
            finalized_alerts=snap.finalized,
        )

    # -- durability --------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "params": (
                self.pair_window,
                self.spatial_window,
                self.decay_half_life,
                self.max_edges,
                self.max_source_edges,
                self.prune_interval,
            ),
            "cats": list(self._cats),
            "counts": list(self._counts),
            "recent": [list(lst) for lst in self._recent],
            "spatial": [
                [row[0], row[1], row[2], row[3], sorted(row[4])]
                for row in self._spatial
            ],
            "edges": {key: edge.state() for key, edge in self._edges.items()},
            "src_edges": {
                key: edge.state() for key, edge in self._src_edges.items()
            },
            "queue": [
                list(self._qt[self._queue_start :]),
                list(self._qc[self._queue_start :]),
                list(self._qs[self._queue_start :]),
            ],
            "next_prune": self._next_prune,
            "finalized": self.finalized,
            "pruned_edges": self.pruned_edges,
            "pruned_source_edges": self.pruned_source_edges,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        params = tuple(state["params"])
        ours = (
            self.pair_window,
            self.spatial_window,
            self.decay_half_life,
            self.max_edges,
            self.max_source_edges,
            self.prune_interval,
        )
        if params != ours:
            raise ValueError(
                "miner configuration mismatch: checkpoint %r vs current %r"
                % (params, ours)
            )
        self._cats = list(state["cats"])
        self._vocab = {cat: code for code, cat in enumerate(self._cats)}
        self._counts = [int(c) for c in state["counts"]]
        self._recent = [list(lst) for lst in state["recent"]]
        self._recent_np = [None] * len(self._recent)
        self._spatial = [
            [int(row[0]), int(row[1]), int(row[2]), row[3], set(row[4])]
            for row in state["spatial"]
        ]
        self._edges = {
            tuple(key): _PairEdge.from_state(val)
            for key, val in state["edges"].items()
        }
        self._src_edges = {
            tuple(key): _SourceEdge.from_state(val)
            for key, val in state["src_edges"].items()
        }
        qt, qc, qs = state["queue"]
        self._qt = [float(t) for t in qt]
        self._qc = [int(c) for c in qc]
        self._qs = list(qs)
        self._queue_start = 0
        self._next_prune = state["next_prune"]
        self.finalized = int(state["finalized"])
        self.pruned_edges = int(state["pruned_edges"])
        self.pruned_source_edges = int(state["pruned_source_edges"])

"""Log-volume statistics: the size/rate/compression columns of Table 2.

One pass over a record stream accumulates everything Table 2 reports per
log: message count, raw byte size (as rendered in the native format),
gzip-compressed size, observation span, and bytes/second.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional, Sequence

from ..logmodel.record import LogRecord
from .writer import renderer_for


@dataclass
class LogStats:
    """Accumulated volume statistics for one log."""

    system: str
    messages: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0
    first_timestamp: Optional[float] = None
    last_timestamp: Optional[float] = None

    @property
    def span_seconds(self) -> float:
        if self.first_timestamp is None or self.last_timestamp is None:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    @property
    def days(self) -> float:
        return self.span_seconds / 86400.0

    @property
    def rate_bytes_per_second(self) -> float:
        span = self.span_seconds
        return self.raw_bytes / span if span > 0 else 0.0

    @property
    def size_gb(self) -> float:
        return self.raw_bytes / 1e9

    @property
    def compressed_gb(self) -> float:
        return self.compressed_bytes / 1e9

    @property
    def compression_ratio(self) -> float:
        return self.compressed_bytes / self.raw_bytes if self.raw_bytes else 1.0


@dataclass(frozen=True)
class StatsSnapshot:
    """Resumable mid-stream state of a :class:`StatsCollector`.

    The zlib compressor object is captured via ``compressobj.copy()`` so a
    resumed collector produces byte-identical compressed sizes to an
    uninterrupted run.  The stored compressor is never mutated: every
    restore copies it again, so one snapshot supports many resumes.

    A live compressor cannot be pickled, so the *durable* form of a
    snapshot (``repro.resilience.wire``) stores ``compressor=None`` and
    relies on ``fed_bytes`` — the exact count of bytes the compressor had
    been fed — to rebuild equivalent state: deflate's cumulative output
    depends only on the byte sequence fed, not its chunking (the engine
    equivalence tests pin this), so replaying the resumed stream's
    observed prefix through a fresh compressor via :meth:`StatsCollector.
    replay_record` lands on byte-identical compressed sizes.
    """

    stats: LogStats
    compressor: Optional["zlib._Compress"]
    flushed: bool
    #: Total bytes fed to the compressor when the snapshot was taken.
    fed_bytes: int = 0


class StatsCollector:
    """Streaming Table 2 accumulator.

    Wrap a record stream with :meth:`observe`; statistics are live on
    :attr:`stats` as the stream is consumed.  Compression is measured with
    a true incremental zlib stream (gzip's codec) rather than per-line
    compression, so the ratio matches what ``gzip`` on the whole file
    achieves.
    """

    def __init__(self, system: str, compression_level: int = 6):
        self.stats = LogStats(system=system)
        self._render = renderer_for(system)
        self._compressor = zlib.compressobj(compression_level)
        self._flushed = False
        #: Bytes fed to the compressor so far (the durable-resume
        #: watermark), and how many of them a durable resume still owes
        #: the rebuilt compressor via :meth:`replay_record`.
        self._fed = 0
        self._replay_pending = 0
        #: Latched when a durable resume's replayed prefix did not line
        #: up with the watermark (a stream that shed or coarsened cannot
        #: be re-fed exactly); counts/sizes/span stay exact, only
        #: ``compressed_bytes`` for the remainder is best-effort.
        self.replay_mismatch = False
        #: Coarse mode (overload degradation): skip the compressed-size
        #: measurement, the expensive part of the per-record work.  The
        #: count/size/span columns stay exact; ``compressed_bytes`` covers
        #: only the records observed before coarsening.
        self.coarse = False

    def observe_record(self, record: LogRecord) -> None:
        """Accumulate one record (the per-record form of :meth:`observe`)."""
        line = self._render(record) + "\n"
        data = line.encode("utf-8", "replace")
        self.stats.messages += 1
        self.stats.raw_bytes += len(data)
        if not self.coarse:
            self.stats.compressed_bytes += len(self._compressor.compress(data))
            self._fed += len(data)
        if self.stats.first_timestamp is None:
            self.stats.first_timestamp = record.timestamp
        if (
            self.stats.last_timestamp is None
            or record.timestamp > self.stats.last_timestamp
        ):
            self.stats.last_timestamp = record.timestamp

    def observe_batch(self, records: Sequence[LogRecord]) -> None:
        """Accumulate a whole batch with one join/encode/compress.

        Byte-identical to calling :meth:`observe_record` per record:
        UTF-8 is stateless, so encoding the concatenated lines equals
        concatenating per-line encodings, and a streaming zlib
        compressor fed the same bytes in different chunkings produces
        the same cumulative output *and* the same resumable state
        (``tests/engine`` pins both).  The batch form exists because the
        per-record form pays a render + encode + compress call per line
        — the largest single slice of the serial hot path.
        """
        if not records:
            return
        render = self._render
        lines = [render(record) for record in records]
        lines.append("")  # trailing separator = final newline
        data = "\n".join(lines).encode("utf-8", "replace")
        stats = self.stats
        stats.messages += len(records)
        stats.raw_bytes += len(data)
        if not self.coarse:
            stats.compressed_bytes += len(self._compressor.compress(data))
            self._fed += len(data)
        if stats.first_timestamp is None:
            stats.first_timestamp = records[0].timestamp
        last = stats.last_timestamp
        peak = max(record.timestamp for record in records)
        if last is None or peak > last:
            stats.last_timestamp = peak

    def observe(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        for record in records:
            self.observe_record(record)
            yield record
        self.finish()

    def finish(self) -> LogStats:
        """Flush the compressor and return the final statistics."""
        if not self._flushed:
            self.stats.compressed_bytes += len(self._compressor.flush())
            self._flushed = True
        return self.stats

    def snapshot(self) -> StatsSnapshot:
        """Capture resumable mid-stream state (see :class:`StatsSnapshot`)."""
        return StatsSnapshot(
            stats=replace(self.stats),
            compressor=self._compressor.copy(),
            flushed=self._flushed,
            fed_bytes=self._fed,
        )

    @classmethod
    def from_snapshot(cls, snapshot: StatsSnapshot) -> "StatsCollector":
        """A live collector continuing exactly from ``snapshot``.

        When the snapshot crossed a process boundary its compressor is
        gone (``None``); the collector starts a fresh one and owes it the
        ``fed_bytes`` watermark of replayed prefix bytes — the resuming
        driver pays that debt by calling :meth:`replay_record` for each
        observed record of the skipped prefix before feeding new ones.
        """
        collector = cls(snapshot.stats.system)
        collector.stats = replace(snapshot.stats)
        collector._flushed = snapshot.flushed
        collector._fed = snapshot.fed_bytes
        if snapshot.compressor is not None:
            collector._compressor = snapshot.compressor.copy()
        else:
            collector._replay_pending = snapshot.fed_bytes
        return collector

    @property
    def pending_replay_bytes(self) -> int:
        """Prefix bytes a durable resume still owes :meth:`replay_record`."""
        return self._replay_pending

    def replay_record(self, record: LogRecord) -> None:
        """Re-feed one skipped-prefix record into the rebuilt compressor.

        The compressed output these bytes produce was already counted
        when the record was first observed, so only the compressor state
        advances — ``stats`` does not move.  Overshooting the watermark
        (a prefix that cannot be reconstructed exactly, e.g. a run that
        shed records) latches :attr:`replay_mismatch` instead of
        corrupting the count.
        """
        if self._replay_pending <= 0:
            return
        line = self._render(record) + "\n"
        data = line.encode("utf-8", "replace")
        if len(data) > self._replay_pending:
            self.replay_mismatch = True
            self._replay_pending = 0
            return
        self._compressor.compress(data)
        self._replay_pending -= len(data)


def measure_stream(records: Iterable[LogRecord], system: str) -> LogStats:
    """Eagerly consume a stream and return its volume statistics."""
    collector = StatsCollector(system)
    for _ in collector.observe(records):
        pass
    return collector.finish()

"""Streaming log I/O in each machine's native on-disk format."""

from .reader import count_lines, read_log
from .stats import LogStats, StatsCollector, measure_stream
from .writer import (
    compressed_ratio,
    log_bytes,
    render_lines,
    renderer_for,
    write_log,
)

__all__ = [
    "count_lines",
    "read_log",
    "LogStats",
    "StatsCollector",
    "measure_stream",
    "compressed_ratio",
    "log_bytes",
    "render_lines",
    "renderer_for",
    "write_log",
]

"""Streaming log writers: records to native on-disk formats.

Each machine's log is written the way its collector stored it
(Section 3.1): BSD syslog lines for Thunderbird/Spirit/Liberty,
severity-bearing syslog and RAS event lines for Red Storm, RAS-database
export lines for BG/L.  Writers are streaming — a record in, a line out —
so full-scale generation never holds a log in memory.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Callable, Iterable, Union

from ..logmodel.bgl import render_bgl_line
from ..logmodel.record import LogRecord
from ..logmodel.redstorm import render_redstorm_line
from ..logmodel.syslog import render_syslog_line

PathLike = Union[str, Path]


def renderer_for(system: str) -> Callable[[LogRecord], str]:
    """The line renderer for a system's native format."""
    if system == "bgl":
        return render_bgl_line
    if system == "redstorm":
        return render_redstorm_line
    return render_syslog_line


def write_log(
    records: Iterable[LogRecord],
    path: PathLike,
    system: str,
    compress: bool = False,
) -> int:
    """Write records to ``path`` in the system's native format.

    Returns the number of lines written.  With ``compress=True`` the file
    is gzip-compressed (the paper's Table 2 reports both raw and
    gzip-compressed sizes).
    """
    render = renderer_for(system)
    path = Path(path)
    opener = gzip.open if compress else open
    count = 0
    with opener(path, "wt", encoding="utf-8", errors="replace") as handle:
        for record in records:
            handle.write(render(record))
            handle.write("\n")
            count += 1
    return count


def render_lines(records: Iterable[LogRecord], system: str) -> Iterable[str]:
    """Lazily render records to native-format lines (no newlines)."""
    render = renderer_for(system)
    for record in records:
        yield render(record)


def log_bytes(records: Iterable[LogRecord], system: str) -> int:
    """Total byte size of the rendered log without touching disk."""
    render = renderer_for(system)
    return sum(len(render(record).encode("utf-8", "replace")) + 1 for record in records)


def compressed_ratio(sample_lines: Iterable[str]) -> float:
    """gzip compression ratio (compressed / raw) of a line sample.

    Table 2 shows logs compress 5-25x; a ratio from a sample extrapolates
    the compressed-size column without writing the full log.
    """
    raw = "\n".join(sample_lines).encode("utf-8", "replace")
    if not raw:
        return 1.0
    buffer = io.BytesIO()
    with gzip.GzipFile(fileobj=buffer, mode="wb") as handle:
        handle.write(raw)
    return len(buffer.getvalue()) / len(raw)

"""Streaming log readers: native on-disk formats back to records.

The inverse of :mod:`repro.logio.writer`: opens a (possibly gzipped) log
file and lazily parses each line with the system's format parser in
tolerant mode, so a damaged file reads completely with corrupted records
flagged rather than raising mid-stream.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, Union

from ..logmodel.bgl import parse_bgl_line
from ..logmodel.record import LogRecord
from ..logmodel.redstorm import parse_redstorm_line
from ..logmodel.syslog import parse_syslog_stream

PathLike = Union[str, Path]


def _open_text(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return open(path, "rt", encoding="utf-8", errors="replace")


def read_log(path: PathLike, system: str, year: int = 2005) -> Iterator[LogRecord]:
    """Lazily parse a native-format log file into records.

    ``year`` seeds the syslog timestamp parser (BSD syslog carries no
    year; the stream parser handles rollover when a log spans New Year).
    BG/L lines carry full dates and ignore it.
    """
    path = Path(path)
    with _open_text(path) as handle:
        if system == "bgl":
            for line in handle:
                if line.strip():
                    yield parse_bgl_line(line.rstrip("\n"))
        elif system == "redstorm":
            previous = None
            current_year = year
            for line in handle:
                if not line.strip():
                    continue
                record = parse_redstorm_line(line.rstrip("\n"), current_year)
                # BSD-syslog lines carry no year: detect rollover the way
                # syslog daemons do (a >half-year backwards jump).
                if (
                    previous is not None
                    and not record.corrupted
                    and previous - record.timestamp > 182 * 86400.0
                ):
                    current_year += 1
                    record = parse_redstorm_line(line.rstrip("\n"), current_year)
                if not record.corrupted:
                    previous = record.timestamp
                yield record
        else:
            yield from parse_syslog_stream(handle, year, system=system)


def count_lines(path: PathLike) -> int:
    """Number of non-blank lines in a (possibly gzipped) log file."""
    path = Path(path)
    count = 0
    with _open_text(path) as handle:
        for line in handle:
            if line.strip():
                count += 1
    return count

"""Streaming log readers: native on-disk formats back to records.

The inverse of :mod:`repro.logio.writer`: opens a (possibly gzipped) log
file and lazily parses each line with the system's format parser in
tolerant mode, so a damaged file reads completely with corrupted records
flagged rather than raising mid-stream.

:func:`read_log` returns a :class:`LogReader`, a closeable iterator: the
file handle is released deterministically when the stream is exhausted,
when :meth:`LogReader.close` is called, or when the reader is used as a
context manager — not at whatever later point the garbage collector gets
around to a generator abandoned by an early ``break``.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, Optional, Union

from ..logmodel.bgl import parse_bgl_line
from ..logmodel.record import LogRecord
from ..logmodel.redstorm import parse_redstorm_line
from ..logmodel.syslog import parse_syslog_stream

PathLike = Union[str, Path]


def _open_text(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return open(path, "rt", encoding="utf-8", errors="replace")


def _parse_records(handle, system: str, year: int) -> Iterator[LogRecord]:
    if system == "bgl":
        for line in handle:
            if line.strip():
                yield parse_bgl_line(line.rstrip("\n"))
    elif system == "redstorm":
        previous = None
        current_year = year
        for line in handle:
            if not line.strip():
                continue
            record = parse_redstorm_line(line.rstrip("\n"), current_year)
            # BSD-syslog lines carry no year: detect rollover the way
            # syslog daemons do (a >half-year backwards jump).
            if (
                previous is not None
                and not record.corrupted
                and previous - record.timestamp > 182 * 86400.0
            ):
                current_year += 1
                record = parse_redstorm_line(line.rstrip("\n"), current_year)
            if not record.corrupted:
                previous = record.timestamp
            yield record
    else:
        yield from parse_syslog_stream(handle, year, system=system)


class LogReader:
    """Closeable record iterator over one native-format log file.

    Iterating yields :class:`~repro.logmodel.record.LogRecord` objects.
    The underlying file handle is closed as soon as the last record is
    yielded; a consumer that stops early (``break``, an exception, an
    ``islice``) should call :meth:`close` or use the reader as a context
    manager — ``__del__`` is only the backstop.

    Parameters
    ----------
    read_ahead:
        When positive, records are staged through a bounded buffer of at
        most this many parsed records (chunked refills at the low
        watermark), decoupling parse bursts from consumer pace while
        keeping memory bounded.  Zero (default) parses strictly on
        demand.
    """

    def __init__(
        self,
        path: PathLike,
        system: str,
        year: int = 2005,
        read_ahead: int = 0,
    ):
        if read_ahead < 0:
            raise ValueError("read_ahead must be non-negative")
        self.path = Path(path)
        self.system = system
        self._handle = _open_text(self.path)
        self._records: Optional[Iterator[LogRecord]] = _parse_records(
            self._handle, system, year
        )
        if read_ahead:
            # Local import: logio is a lower layer than resilience for
            # checkpointing purposes; a module-level import would cycle.
            from ..resilience.backpressure import BoundedQueue, bounded_buffer

            self._records = bounded_buffer(
                self._records,
                BoundedQueue(f"{self.path.name}-readahead", read_ahead),
                chunk=min(64, read_ahead),
            )

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __iter__(self) -> "LogReader":
        return self

    def __next__(self) -> LogRecord:
        if self._records is None:
            raise StopIteration
        try:
            return next(self._records)
        except StopIteration:
            self.close()
            raise

    def close(self) -> None:
        """Release the parse generator and the file handle; idempotent."""
        records, self._records = self._records, None
        if records is not None and hasattr(records, "close"):
            records.close()
        self._handle.close()

    def __enter__(self) -> "LogReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def read_log(
    path: PathLike, system: str, year: int = 2005, read_ahead: int = 0
) -> LogReader:
    """Lazily parse a native-format log file into records.

    ``year`` seeds the syslog timestamp parser (BSD syslog carries no
    year; the stream parser handles rollover when a log spans New Year).
    BG/L lines carry full dates and ignore it.

    Returns a :class:`LogReader`; see there for handle-lifetime and
    ``read_ahead`` semantics.
    """
    return LogReader(path, system, year=year, read_ahead=read_ahead)


def count_lines(path: PathLike) -> int:
    """Number of non-blank lines in a (possibly gzipped) log file."""
    path = Path(path)
    count = 0
    with _open_text(path) as handle:
        for line in handle:
            if line.strip():
                count += 1
    return count

"""Static characteristics of the five supercomputers.

This module encodes the paper's Table 1 (system characteristics at the time
of collection) and Table 2 (log characteristics), which together define the
machines the simulation substrate models and the reference values the
benchmarks compare against.

Table 2 numbers are *reference targets* from the paper, not measurements of
this library: the simulator is calibrated so the relative shape (which
system logs most, which categories dominate, raw-to-filtered reduction
ratios) matches, while absolute counts scale with the ``scale`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class SystemSpec:
    """One row of the paper's Table 1, plus simulation topology hints.

    Attributes mirror Table 1; ``nodes`` and node-naming data drive the
    cluster model (processors per node varies by machine: e.g. Thunderbird
    is 4512 dual-processor nodes, Spirit 514, Liberty 256 dual-processor
    compute+service nodes, BG/L 65536 dual-core compute chips).
    """

    name: str
    external_name: str
    owner: str
    vendor: str
    top500_rank: int
    processors: int
    memory_gb: int
    interconnect: str
    nodes: int
    node_prefix: str
    admin_nodes: Tuple[str, ...]
    log_server: str


@dataclass(frozen=True)
class LogSpec:
    """One row of the paper's Table 2 (reference values from the paper)."""

    name: str
    start_date: str
    days: int
    size_gb: float
    compressed_gb: float
    rate_bytes_per_sec: float
    messages: int
    alerts: int
    categories: int


BGL = SystemSpec(
    name="bgl",
    external_name="Blue Gene/L",
    owner="LLNL",
    vendor="IBM",
    top500_rank=1,
    processors=131072,
    memory_gb=32768,
    interconnect="Custom",
    nodes=65536,
    node_prefix="R",
    admin_nodes=("bglmaster",),
    log_server="mmcs-db2",
)

THUNDERBIRD = SystemSpec(
    name="thunderbird",
    external_name="Thunderbird",
    owner="SNL",
    vendor="Dell",
    top500_rank=6,
    processors=9024,
    memory_gb=27072,
    interconnect="Infiniband",
    nodes=4512,
    node_prefix="tn",
    admin_nodes=("tbird-admin1", "tbird-admin2"),
    log_server="tbird-admin1",
)

RED_STORM = SystemSpec(
    name="redstorm",
    external_name="Red Storm",
    owner="SNL",
    vendor="Cray",
    top500_rank=9,
    processors=10880,
    memory_gb=32640,
    interconnect="Custom",
    nodes=10368,
    node_prefix="c",
    admin_nodes=("smw",),
    log_server="smw",
)

SPIRIT = SystemSpec(
    name="spirit",
    external_name="Spirit (ICC2)",
    owner="SNL",
    vendor="HP",
    top500_rank=202,
    processors=1028,
    memory_gb=1024,
    interconnect="GigEthernet",
    nodes=514,
    node_prefix="sn",
    admin_nodes=("sadmin1", "sadmin2"),
    log_server="sadmin2",
)

LIBERTY = SystemSpec(
    name="liberty",
    external_name="Liberty",
    owner="SNL",
    vendor="HP",
    top500_rank=445,
    processors=512,
    memory_gb=944,
    interconnect="Myrinet",
    nodes=256,
    node_prefix="ln",
    admin_nodes=("ladmin1", "ladmin2"),
    log_server="ladmin2",
)

SYSTEMS: Dict[str, SystemSpec] = {
    spec.name: spec for spec in (BGL, THUNDERBIRD, RED_STORM, SPIRIT, LIBERTY)
}

#: Paper Table 2, keyed by system short name.
LOG_SPECS: Dict[str, LogSpec] = {
    "bgl": LogSpec("bgl", "2005-06-03", 215, 1.207, 0.118, 64.976,
                   4_747_963, 348_460, 41),
    "thunderbird": LogSpec("thunderbird", "2005-11-09", 244, 27.367, 5.721,
                           1298.146, 211_212_192, 3_248_239, 10),
    "redstorm": LogSpec("redstorm", "2006-03-19", 104, 29.990, 1.215,
                        3337.562, 219_096_168, 1_665_744, 12),
    "spirit": LogSpec("spirit", "2005-01-01", 558, 30.289, 1.678, 628.257,
                      272_298_969, 172_816_564, 8),
    "liberty": LogSpec("liberty", "2004-12-12", 315, 22.820, 0.622, 835.824,
                       265_569_231, 2_452, 6),
}

#: Total alerts across all five logs reported by the paper (Section 1).
PAPER_TOTAL_ALERTS = 178_081_459

#: Total alert categories across all five logs (Section 1 / Table 2).
PAPER_TOTAL_CATEGORIES = 77


def get_system(name: str) -> SystemSpec:
    """Look up a system spec by short name; raises ``KeyError`` with the
    list of valid names on a miss."""
    try:
        return SYSTEMS[name]
    except KeyError:
        valid = ", ".join(sorted(SYSTEMS))
        raise KeyError(f"unknown system {name!r}; valid names: {valid}") from None


def get_log_spec(name: str) -> LogSpec:
    """Look up the paper's Table 2 row for a system short name."""
    try:
        return LOG_SPECS[name]
    except KeyError:
        valid = ", ".join(sorted(LOG_SPECS))
        raise KeyError(f"unknown system {name!r}; valid names: {valid}") from None

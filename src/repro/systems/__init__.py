"""Static descriptions of the five supercomputers (paper Tables 1 and 2)."""

from .specs import (
    BGL,
    LIBERTY,
    LOG_SPECS,
    PAPER_TOTAL_ALERTS,
    PAPER_TOTAL_CATEGORIES,
    RED_STORM,
    SPIRIT,
    SYSTEMS,
    THUNDERBIRD,
    LogSpec,
    SystemSpec,
    get_log_spec,
    get_system,
)

__all__ = [
    "BGL",
    "LIBERTY",
    "LOG_SPECS",
    "PAPER_TOTAL_ALERTS",
    "PAPER_TOTAL_CATEGORIES",
    "RED_STORM",
    "SPIRIT",
    "SYSTEMS",
    "THUNDERBIRD",
    "LogSpec",
    "SystemSpec",
    "get_log_spec",
    "get_system",
]

"""One tenant's isolated pipeline: queue, policy, path, supervision.

A :class:`Tenant` is everything one source stream owns and nothing it
shares: its own :class:`~repro.engine.path.AlertPath` (filter clocks,
stats, severity tab), its own :class:`BoundedQueue` with watermarks, its
own :class:`ShedPolicy` and :class:`DeadLetterQueue`, its own circuit
breaker and restart budget, and its own asyncio worker task.  Isolation
falls out of that ownership plus cooperative scheduling: a worker serves
at most ``service_batch`` records per wakeup and then yields the event
loop, so a tenant under a 10x burst or a crash-loop cannot starve the
other tenants' workers or the listeners.

Crash handling follows the supervisor contract (PR 1) adapted to a
stream that cannot be replayed: the poison record is dead-lettered
(``worker-crash``, classified so tagged-alert conservation stays exact),
path state is rebuilt from the last drained-queue checkpoint — journaled
alert counts live *outside* the path and are never rolled back — and
after ``restart_budget`` crashes the tenant is quarantined: a final
dead-letter accounting snapshot is captured first (the same fix the
batch supervisor got), then every subsequent arrival is dead-lettered
under ``tenant-quarantined`` so even a dead tenant loses nothing
silently.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional, Sequence, Tuple

from ..core.categories import Alert
from ..core.filtering import FilterReport
from ..engine.path import AlertPath
from ..engine.stages import ObservingSink
from ..logmodel.record import LogRecord
from ..resilience.backpressure import (
    SHED,
    SPILL,
    BoundedQueue,
    PressureLevel,
    Watermarks,
)
from ..resilience.checkpoint import PipelineCheckpoint
from ..resilience.deadletter import (
    DeadLetterQueue,
    DeadLetterSnapshot,
    REASON_CIRCUIT_OPEN,
    REASON_SHED_OVERLOAD,
    REASON_TENANT_QUARANTINED,
    REASON_WORKER_CRASH,
)
from ..resilience.retry import BreakerState, CircuitBreaker
from ..resilience.shedding import (
    CLASS_ALERT,
    CLASS_DUPLICATE,
    get_shed_policy,
)
from .accounting import TenantCounters
from .config import ServiceConfig

#: Shed classes that represent records an expert rule would tag.
TAGGED_CLASSES = frozenset({CLASS_ALERT, CLASS_DUPLICATE})


class TenantQuarantined(RuntimeError):
    """Raised by :meth:`Tenant.ensure_live` when the tenant is dead."""


class ServiceAlertSink:
    """Bounded-retention alert sink with monotonic journal counts.

    The batch pipeline keeps every alert in memory because a run ends; a
    service must not.  This sink keeps the newest ``tail`` alerts for the
    live ``alerts`` endpoint and counts *every* emit in the tenant's
    :class:`TenantCounters` — the counts are the conservation authority
    and survive crash-restores of path state (a restart can never
    un-report an alert).  ``raw_alerts``/``filtered_alerts`` satisfy the
    sink shape :meth:`AlertPath.snapshot` expects.
    """

    def __init__(
        self,
        report: FilterReport,
        counters: TenantCounters,
        tail: int,
        raw_seed: Tuple[Alert, ...] = (),
        filtered_seed: Tuple[Alert, ...] = (),
        journal: Optional[Callable[[str, Any], Any]] = None,
    ):
        self.report = report
        self.counters = counters
        self.raw_alerts: Deque[Alert] = deque(raw_seed, maxlen=tail)
        self.filtered_alerts: Deque[Alert] = deque(filtered_seed, maxlen=tail)
        #: Optional write-ahead journal hook (``journal(kind, obj)``):
        #: with a ``--state-dir``, every emit is journaled before it is
        #: counted so a crash can never un-report an alert.
        self.journal = journal

    def emit(self, alert: Alert, kept: bool) -> None:
        if self.journal is not None:
            self.journal("alert", (alert, kept))
        self.counters.alerts_raw += 1
        self.raw_alerts.append(alert)
        self.report.record(alert, kept)
        if kept:
            self.counters.alerts_filtered += 1
            self.filtered_alerts.append(alert)

    def emit_batch(self, pairs: Sequence[Tuple[Alert, bool]]) -> None:
        """Batch form of :meth:`emit` (same counts, same retention)."""
        counters = self.counters
        raw_append = self.raw_alerts.append
        kept_append = self.filtered_alerts.append
        record = self.report.record
        journal = self.journal
        counters.alerts_raw += len(pairs)
        for alert, kept in pairs:
            if journal is not None:
                journal("alert", (alert, kept))
            raw_append(alert)
            record(alert, kept)
            if kept:
                counters.alerts_filtered += 1
                kept_append(alert)


@dataclass
class ParkedTenant:
    """An evicted tenant's resumable state (the checkpoint handoff)."""

    tenant_id: str
    system: str
    checkpoint: PipelineCheckpoint
    counters: TenantCounters
    dead_letters: DeadLetterSnapshot
    parked_at: float


class Tenant:
    """One tenant stream's state, worker, and supervision."""

    def __init__(
        self,
        tenant_id: str,
        system: str,
        config: ServiceConfig,
        governor=None,
        parked: Optional[ParkedTenant] = None,
        persistence=None,
    ):
        self.tenant_id = tenant_id
        self.system = system
        self.config = config
        self.governor = governor
        #: Optional durable backend (:class:`~repro.service.persistence.
        #: TenantPersistence` or anything with ``journal``/``sync``/
        #: ``save_parked``/``dead_letter_queue``).  Duck-typed so this
        #: module never imports the persistence layer.
        self._persist = persistence

        self.dead_letters = (
            persistence.dead_letter_queue(config.dead_letter_capacity)
            if persistence is not None
            else DeadLetterQueue(capacity=config.dead_letter_capacity)
        )
        checkpoint = parked.checkpoint if parked is not None else None
        self.counters = parked.counters if parked is not None else (
            TenantCounters()
        )
        #: Per-tenant columnar alert store (``config.store_dir``): the
        #: alert flow is teed into it and committed at the same barriers
        #: as tenant checkpoints.  ``begin(None)`` is journal-resume
        #: mode — a resurrected or unparked tenant appends after
        #: whatever its manifest committed.
        self._store_writer = None
        if config.store_dir:
            from ..store import ColumnarStoreWriter
            from .persistence import tenant_dirname

            self._store_writer = ColumnarStoreWriter(
                os.path.join(config.store_dir, tenant_dirname(tenant_id)),
                system,
            )
            self._store_writer.begin(None)
        # AlertPath(resume_from=...) restores the dead-letter queue from
        # the checkpoint; for a parked tenant that snapshot *is* the live
        # state (taken at park time with the queue drained), so this is
        # the handoff, not a rollback.
        self.path = AlertPath(
            system,
            threshold=config.threshold,
            dead_letters=self.dead_letters,
            resume_from=checkpoint,
            prediction=self._prediction_stage(),
        )
        self._install_sink(
            raw_seed=tuple(self.path.sink.raw_alerts),
            filtered_seed=tuple(self.path.sink.filtered_alerts),
        )

        window = (
            config.threshold if config.dedup_window is None
            else config.dedup_window
        )
        self.policy = get_shed_policy(
            config.shed_policy, dedup_window=window
        ).bind(self.path.tagger)
        if checkpoint is not None and checkpoint.shed_state is not None:
            self.policy.load_state_dict(checkpoint.shed_state)
        if parked is not None:
            self.counters.resumes += 1

        self.queue = BoundedQueue(
            f"ingest:{tenant_id}",
            config.max_buffer,
            Watermarks.for_capacity(
                config.max_buffer, config.high_fraction, config.low_fraction
            ),
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            reset_timeout=config.breaker_reset,
        )
        self.checkpoint = checkpoint
        # A resurrection cannot refund a spent restart budget: the crash
        # count rides in the (journaled) counters, so a tenant that was
        # quarantined when the process died comes back quarantined.
        self.quarantined = self.counters.crashes > config.restart_budget
        self.final_dead_letters: Optional[DeadLetterSnapshot] = None
        if self.quarantined:
            self.final_dead_letters = self.dead_letters.snapshot()
        self.draining = False
        self.last_activity = time.monotonic()
        self._since_checkpoint = 0
        self._wakeup = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        #: (monotonic time, processed count) samples for throughput.
        self.samples: Deque[Tuple[float, int]] = deque(maxlen=16)

    # -- wiring ------------------------------------------------------------

    def _prediction_stage(self):
        """A fresh per-tenant prediction stage when ``config.predict``
        asks for one (``True`` = defaults, a PredictionConfig = custom),
        else ``None``.  Lazy import so predict-less services never pay
        for the streaming package.  Checkpoint restore happens inside
        AlertPath — a rebuilt path's fresh stage is loaded from the
        checkpoint's ``prediction_state``, so the miner/ensemble roll
        back with the filter clocks, never ahead of them."""
        predict = self.config.predict
        if not predict:
            return None
        from ..streaming import PredictionConfig, PredictionStage

        stage_config = predict if isinstance(predict, PredictionConfig) else None
        return PredictionStage(config=stage_config)

    def _install_sink(self, raw_seed=(), filtered_seed=()) -> None:
        self._sink = ServiceAlertSink(
            self.path.report,
            self.counters,
            self.config.alert_tail,
            raw_seed=raw_seed,
            filtered_seed=filtered_seed,
            journal=(
                self._persist.journal if self._persist is not None else None
            ),
        )
        self.path.sink = self._sink
        if self.path.prediction is not None:
            # Re-tee the alert flow into the prediction stage: replacing
            # path.sink above dropped the ObservingSink wrapper AlertPath
            # installed.  The service sink stays the counting authority.
            self.path.sink = ObservingSink(self._sink, self.path.prediction)
        if self._store_writer is not None:
            from ..store import StoreTeeSink

            # Outermost so every emit the service counts also lands a
            # column row; path rebuilds never roll the store back (it is
            # append-only, like the journaled counts).
            self.path.sink = StoreTeeSink(self.path.sink, self._store_writer)

    def start(self) -> None:
        """Spawn the worker task on the running loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._work(), name=f"tenant:{self.tenant_id}"
            )

    @property
    def alert_tail(self) -> Tuple[Alert, ...]:
        return tuple(self._sink.raw_alerts)

    @property
    def breaker_state(self) -> str:
        return self.breaker.state.name.lower()

    # -- ingest (called in-loop by the router/listeners) -------------------

    def offer(self, record: LogRecord) -> None:
        """Admit, shed, or refuse one arriving record — never silently."""
        self.counters.received += 1
        self.last_activity = time.monotonic()
        if self.quarantined:
            self._refuse(record, REASON_TENANT_QUARANTINED)
            # No worker batch will sync this letter (the worker is gone);
            # land it now so a dead tenant loses nothing across restarts.
            if self._persist is not None:
                self._persist.sync()
            return
        if not self.breaker.allow(time.monotonic()):
            self._refuse(record, REASON_CIRCUIT_OPEN)
            return
        level = self.queue.pressure()
        if self.governor is not None:
            level = max(level, self.governor.level())
        decision, klass = self.policy.decide(record, level)
        if decision == SHED:
            self.counters.count_shed(klass)
            return
        if decision == SPILL or not self.queue.put(record):
            self._refuse(
                record, REASON_SHED_OVERLOAD,
                tagged=klass in TAGGED_CLASSES, detail=klass,
            )
            return
        self._wakeup.set()

    def _refuse(
        self,
        record: LogRecord,
        reason: str,
        tagged: Optional[bool] = None,
        detail: str = "",
    ) -> None:
        """Dead-letter a record the worker will never see, classified so
        tagged-alert conservation stays exact."""
        if tagged is None:
            tagged = self._would_tag(record)
        self.dead_letters.put(record, reason, detail)
        self.counters.count_refused(reason, tagged)

    def _would_tag(self, record: LogRecord) -> bool:
        """Would any expert rule tag this record?  (Classification only —
        no dedup state is touched; errors count as untagged, matching the
        ground-truth convention.)"""
        try:
            return self.path.tagger.match(record) is not None
        except Exception:
            return False

    def ensure_live(self) -> None:
        if self.quarantined:
            raise TenantQuarantined(self.tenant_id)

    # -- the worker --------------------------------------------------------

    async def _work(self) -> None:
        config = self.config
        hook = config.fault_hook
        while True:
            if not self.queue:
                if self.draining or self.quarantined:
                    break
                self._wakeup.clear()
                # Re-check after clearing: an offer between the check and
                # the clear must not be lost.
                if not self.queue:
                    await self._wakeup.wait()
                continue
            batch = self.queue.take(config.service_batch)
            clean = True
            for position, record in enumerate(batch):
                try:
                    if hook is not None:
                        hook(self.tenant_id, record)
                    if self.path.admit(record):
                        self.path.process(record)
                    self.counters.processed += 1
                    self._since_checkpoint += 1
                except Exception:
                    clean = False
                    self._on_crash(record)
                    if self.quarantined:
                        # The rest of the in-flight batch is already out
                        # of the queue; account it before exiting.
                        for rest in batch[position + 1:]:
                            self._refuse(rest, REASON_TENANT_QUARANTINED)
                        break
            if clean and batch:
                self.breaker.record_success()
            if self.quarantined:
                self._flush_quarantined()
                break
            if self._persist is not None and batch:
                # Drained-queue boundaries journal a full counters dict
                # (last one wins on replay); either way the batch's
                # alert/letter entries hit the disk before new arrivals
                # are served.
                if not self.queue:
                    self._persist.journal("counters", self.counters.as_dict())
                self._persist.sync()
            self._maybe_checkpoint()
            # Fairness: one batch per wakeup, then yield the loop so no
            # tenant can starve another (or the listeners).
            await asyncio.sleep(0)
        if self.draining and not self.quarantined:
            # Drain barrier: everything consumed, snapshot final state.
            self._take_checkpoint()

    def _on_crash(self, record: LogRecord) -> None:
        """Absorb one worker crash: dead-letter the poison record, rebuild
        path state from the last checkpoint, and quarantine once the
        restart budget is spent."""
        self.counters.crashes += 1
        self._refuse(record, REASON_WORKER_CRASH)
        self.breaker.record_failure(time.monotonic())
        if self.counters.crashes > self.config.restart_budget:
            # The same contract as the batch supervisor's exhaustion fix:
            # capture final accounting *before* anything rolls back.
            self.quarantined = True
            self.final_dead_letters = self.dead_letters.snapshot()
            return
        self._rebuild_path()

    def _rebuild_path(self) -> None:
        """Restore path state from the last drained-queue checkpoint (or
        fresh).  The live dead-letter queue and journaled alert counts are
        preserved — only internal path state (filter clocks, stats) rolls
        back, which is the documented shedding-tolerance degradation."""
        live_letters = self.dead_letters.snapshot()
        self.path = AlertPath(
            self.system,
            threshold=self.config.threshold,
            dead_letters=self.dead_letters,
            resume_from=self.checkpoint,
            prediction=self._prediction_stage(),
        )
        self.dead_letters.restore(live_letters)
        self._install_sink(
            raw_seed=tuple(self._sink.raw_alerts),
            filtered_seed=tuple(self._sink.filtered_alerts),
        )
        self.policy.bind(self.path.tagger)
        self._since_checkpoint = 0

    def _flush_quarantined(self) -> None:
        """Account every record still queued when quarantine hit; then
        refresh the final snapshot so it covers the flush."""
        while self.queue:
            record = self.queue.get()
            self._refuse(record, REASON_TENANT_QUARANTINED)
        self.final_dead_letters = self.dead_letters.snapshot()
        if self._persist is not None:
            self._persist.journal("counters", self.counters.as_dict())
            self._persist.sync()

    # -- checkpoints -------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if (
            not self.queue
            and self._since_checkpoint >= self.config.checkpoint_every
        ):
            self._take_checkpoint()

    def _take_checkpoint(self) -> None:
        if self._store_writer is not None:
            # Commit before the checkpoint lands so the store's manifest
            # seq is never behind any durable snapshot.
            self._store_writer.commit()
        self.checkpoint = self.path.snapshot(
            shed_state=self.policy.state_dict()
        )
        self._since_checkpoint = 0
        if self._persist is not None:
            self._persist.save_parked(self._bundle(self.checkpoint))

    def _bundle(self, checkpoint: PipelineCheckpoint) -> ParkedTenant:
        """The durable form of the current state (same shape as
        :meth:`park`, but the tenant stays live)."""
        return ParkedTenant(
            tenant_id=self.tenant_id,
            system=self.system,
            checkpoint=checkpoint,
            counters=self.counters,
            dead_letters=(
                checkpoint.dead_letters or self.dead_letters.snapshot()
            ),
            parked_at=time.monotonic(),
        )

    # -- lifecycle ---------------------------------------------------------

    def idle_for(self, now: float) -> float:
        return now - self.last_activity

    def evictable(self, now: float) -> bool:
        """Idle past the TTL with nothing in flight.  Quarantined tenants
        stay resident: parking one would resurrect it un-quarantined,
        forgetting the budget it already spent."""
        return (
            not self.quarantined
            and not self.draining
            and not self.queue
            and self.idle_for(now) >= self.config.idle_ttl
        )

    def park(self) -> ParkedTenant:
        """Checkpoint handoff: capture complete resumable state and stop
        the worker.  Caller must have checked :meth:`evictable`."""
        if self._store_writer is not None:
            self._store_writer.commit()
        checkpoint = self.path.snapshot(shed_state=self.policy.state_dict())
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self.counters.evictions += 1
        parked = ParkedTenant(
            tenant_id=self.tenant_id,
            system=self.system,
            checkpoint=checkpoint,
            counters=self.counters,
            dead_letters=checkpoint.dead_letters or self.dead_letters.snapshot(),
            parked_at=time.monotonic(),
        )
        if self._persist is not None:
            self._persist.save_parked(parked)
        return parked

    async def drain(self) -> None:
        """Process everything pending, take a final checkpoint, stop."""
        self.draining = True
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None
        if self._store_writer is not None:
            # Drain is terminal: land everything buffered and mark the
            # manifest complete so offline analytics trust the store.
            self._store_writer.finalize()

    def note_sample(self, now: float) -> None:
        self.samples.append((now, self.counters.processed))

    def throughput(self) -> float:
        """Records/second over the sampled window (0 when unknown)."""
        if len(self.samples) < 2:
            return 0.0
        (t0, c0), (t1, c1) = self.samples[0], self.samples[-1]
        if t1 <= t0:
            return 0.0
        return (c1 - c0) / (t1 - t0)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        """One tenant's row for the stats endpoint."""
        row = self.counters.as_dict()
        row.update({
            "tenant": self.tenant_id,
            "system": self.system,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "queue_peak": self.queue.peak_occupancy,
            "dead_letter_depth": len(self.dead_letters),
            "dead_letter_total": self.dead_letters.quarantined,
            "dead_letter_by_reason": dict(self.dead_letters.by_reason),
            "breaker": self.breaker_state,
            "breaker_times_opened": self.breaker.times_opened,
            "quarantined": self.quarantined,
            "restart_budget_left": max(
                0, self.config.restart_budget - self.counters.crashes
            ),
            "throughput": round(self.throughput(), 1),
            "conserves": self.counters.conserves(len(self.queue)),
        })
        if self._store_writer is not None:
            row["store"] = {
                "dir": self._store_writer.root,
                "seq": self._store_writer.seq,
            }
        prediction = self.path.prediction
        if prediction is not None:
            row["prediction"] = {
                "observed_alerts": prediction.observed,
                "warnings": prediction.ensemble.warnings_emitted,
                "refits": prediction.ensemble.refits,
                "members": len(prediction.ensemble.member_rows()),
            }
        return row


#: Re-exported for the stats endpoint's breaker rendering.
__all__ = [
    "BreakerState",
    "ParkedTenant",
    "PressureLevel",
    "ServiceAlertSink",
    "TAGGED_CLASSES",
    "Tenant",
    "TenantQuarantined",
]

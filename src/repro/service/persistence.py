"""Durable tenant state: the service's twin of the durability layer.

A long-lived ``repro serve`` must survive what a batch run never sees —
the host dying mid-burst — without forgetting what its tenants already
reported.  This module persists each tenant's resumable state under
``state_dir/tenants/<quoted-id>/`` using the two primitives from
:mod:`repro.resilience.durability`:

* a generational :class:`~repro.resilience.durability.CheckpointStore`
  holding the tenant's :class:`~repro.service.tenant.ParkedTenant`
  bundle (the same object ``park()`` hands the router), written at
  every drained-queue checkpoint and at eviction; and
* a per-tenant :class:`~repro.resilience.durability.SegmentedWal`
  journaling what happened *since* that checkpoint: every alert emitted
  (``("alert", (alert, kept))``), every dead-lettered record
  (``("letter", (record, reason, detail))``), and a full counters dict
  at each drained-queue batch boundary (``("counters", {...})``, last
  one wins).  A ``("checkpoint", generation)`` marker is appended after
  each durable checkpoint lands so replay knows where the journal's
  coverage begins even if the post-checkpoint reset was interrupted.

Recovery composes the two: load the newest verifiable bundle, then
replay the journal's tail on top of it.  Alert and letter entries
re-enter the alert tails and the dead-letter snapshot; entries *after*
the last counters entry additionally top up the counters (an alert
entry implies one received+processed record, a refusal-reason letter
one received+refused record), so the restored tenant still satisfies
``received == shed + refused + processed`` with an empty queue.
Records that were in flight — queued or still in the socket — when the
process died have no durable trace and are honestly absent from
``received``; path-internal state (filter clocks, statistics, and —
when the tenant runs with prediction — the correlation miner/ensemble,
whose state rides ``PipelineCheckpoint.prediction_state``) rolls
back to the checkpoint.  That is exactly the service's documented
shedding-tolerance equivalence class; the quiesce-then-kill case
(drained queues, checkpoint taken) restores byte-identically.

Storage failures never take a tenant down: every store and journal in
one service shares a single :class:`DurabilityStatus`, so ENOSPC/EIO
latch degraded mode with an exact count of unpersisted state while the
in-memory service keeps serving.
"""

from __future__ import annotations

import os
import pickle
import time
import urllib.parse
from dataclasses import replace as dc_replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.rules import get_ruleset
from ..core.tagging import Tagger
from ..engine.path import AlertPath
from ..logmodel.record import LogRecord
from ..resilience import wire
from ..resilience.deadletter import (
    DeadLetterQueue,
    REASON_CIRCUIT_OPEN,
    REASON_SHED_OVERLOAD,
    REASON_TENANT_QUARANTINED,
    REASON_WORKER_CRASH,
)
from ..resilience.durability import (
    CheckpointStore,
    DurabilityStatus,
    RealFilesystem,
    SegmentedWal,
    default_filesystem,
)
from .accounting import TenantCounters
from .config import ServiceConfig
from .tenant import ParkedTenant

__all__ = [
    "JournaledDeadLetterQueue",
    "TenantPersistence",
    "TenantStateStore",
]

#: Dead-letter reasons stamped *before* a record reached the tenant's
#: path (``Tenant._refuse``).  Replay counts these as refusals; every
#: other reason is an in-path quarantine of a record the worker already
#: counted as processed.
REFUSAL_REASONS = frozenset({
    REASON_CIRCUIT_OPEN,
    REASON_SHED_OVERLOAD,
    REASON_TENANT_QUARANTINED,
    REASON_WORKER_CRASH,
})

#: The per-tenant identity file naming the stream a directory belongs to
#: (written once; lets startup reconstruct the parked map from disk
#: without guessing dialects from directory names).
IDENTITY_FILE = "TENANT"


def tenant_dirname(tenant_id: str) -> str:
    """Filesystem-safe directory name for a tenant id (quoted, so ids
    with ``/`` or ``..`` cannot escape the state directory).  A leading
    dot is escaped by hand — dots are unreserved in URL quoting, so the
    ids ``"."`` and ``".."`` would otherwise pass through verbatim and
    name the tenants root or its parent."""
    name = urllib.parse.quote(tenant_id, safe="")
    if name.startswith("."):
        name = "%2E" + name[1:]
    return name


# -- the parked-bundle codec -------------------------------------------------


def encode_parked(bundle: ParkedTenant, meta: Dict[str, Any]) -> bytes:
    """Frame a parked-tenant bundle for the checkpoint store (the live
    zlib compressor inside the pipeline checkpoint is dropped, exactly
    as :func:`repro.resilience.wire.durable_checkpoint` does)."""
    if bundle.checkpoint is not None:
        bundle = dc_replace(
            bundle, checkpoint=wire.durable_checkpoint(bundle.checkpoint)
        )
    return wire.encode_frame(pickle.dumps(
        {"meta": dict(meta), "parked": bundle},
        protocol=pickle.HIGHEST_PROTOCOL,
    ))


def decode_parked(payload: bytes) -> Tuple[ParkedTenant, Dict[str, Any]]:
    try:
        wrapper = pickle.loads(payload)
        bundle = wrapper["parked"]
        meta = wrapper["meta"]
    except Exception as exc:
        raise wire.WireError(f"undecodable parked tenant: {exc!r}") from exc
    if not isinstance(bundle, ParkedTenant):
        raise wire.WireError(
            f"parked payload holds {type(bundle).__name__}, not ParkedTenant"
        )
    return bundle, dict(meta)


# -- the journaled dead-letter queue -----------------------------------------


class JournaledDeadLetterQueue(DeadLetterQueue):
    """A dead-letter queue whose every :meth:`put` also lands in the
    tenant's write-ahead journal.  ``restore`` (crash rebuilds) does not
    journal — those letters were journaled when first quarantined."""

    def __init__(self, capacity: int, journal: Callable[[str, Any], Any]):
        super().__init__(capacity=capacity)
        self._journal = journal

    def put(self, record: LogRecord, reason: str, detail: str = "") -> None:
        self._journal("letter", (record, reason, detail))
        super().put(record, reason, detail)


# -- one tenant's durable state ----------------------------------------------


class TenantPersistence:
    """The durable backend one :class:`~repro.service.tenant.Tenant`
    journals into: a parked-bundle checkpoint store plus a WAL, sharing
    one :class:`DurabilityStatus` with the whole service."""

    def __init__(
        self,
        directory: str,
        tenant_id: str,
        system: str,
        config: ServiceConfig,
        fs: Optional[RealFilesystem] = None,
        status: Optional[DurabilityStatus] = None,
    ):
        self.directory = str(directory)
        self.tenant_id = tenant_id
        self.system = system
        self.config = config
        self.fs = fs if fs is not None else default_filesystem()
        self.status = status if status is not None else DurabilityStatus()
        token = (
            f"service:v1|tenant={tenant_id}|system={system}"
            f"|threshold={config.threshold!r}"
        )
        self.store = CheckpointStore(
            os.path.join(self.directory, "checkpoints"),
            token=token,
            fs=self.fs,
            status=self.status,
            encode=encode_parked,
            decode=decode_parked,
        )
        # sync_every=0: the worker fsyncs once per served batch, not per
        # alert — the torn tail a crash can cost is one batch's entries,
        # and replay truncates it cleanly.
        self.wal = SegmentedWal(
            os.path.join(self.directory, "wal"),
            sync_every=0,
            fs=self.fs,
            status=self.status,
        )
        self._tagger: Optional[Tagger] = None
        self._write_identity()

    def _write_identity(self) -> None:
        path = os.path.join(self.directory, IDENTITY_FILE)
        try:
            self.fs.ensure_dir(self.directory)
            if not self.fs.exists(path):
                self.fs.write_bytes(path, wire.encode_manifest(
                    {"tenant": self.tenant_id, "system": self.system}
                ))
        except OSError as exc:
            self.status.latch("tenant identity", exc)

    @staticmethod
    def read_identity(
        directory: str, fs: RealFilesystem
    ) -> Optional[Dict[str, Any]]:
        """The ``TENANT`` identity manifest, or ``None`` if unreadable."""
        path = os.path.join(directory, IDENTITY_FILE)
        try:
            if not fs.exists(path):
                return None
            fields = wire.decode_manifest(fs.read_bytes(path))
        except (OSError, wire.WireError):
            return None
        if "tenant" not in fields or "system" not in fields:
            return None
        return fields

    # -- the surface Tenant journals through ---------------------------------

    def journal(self, kind: str, obj: Any) -> bool:
        return self.wal.append(kind, obj)

    def sync(self) -> bool:
        return self.wal.sync()

    def dead_letter_queue(self, capacity: int) -> JournaledDeadLetterQueue:
        return JournaledDeadLetterQueue(capacity, self.journal)

    def save_parked(self, bundle: ParkedTenant) -> bool:
        """Persist one durable checkpoint of the tenant; on success the
        journal's contents are covered and dropped (marker first, so a
        kill between save and reset loses nothing)."""
        if not self.store.save(bundle):
            return False
        self.wal.append("checkpoint", self.store.generation)
        self.wal.sync()
        self.wal.reset()
        return True

    # -- recovery ------------------------------------------------------------

    def load_parked(self) -> Optional[ParkedTenant]:
        """The tenant's recovered state: newest verifiable bundle plus
        the journal tail replayed on top (see module docstring), or
        ``None`` when this tenant left no durable trace."""
        bundle = self.store.load()
        entries = list(self.wal.replay())
        cut = 0
        marker_generation: Optional[int] = None
        for index, (kind, obj) in enumerate(entries):
            if kind == "checkpoint":
                cut = index + 1
                marker_generation = obj if isinstance(obj, int) else None
        entries = entries[cut:]
        if bundle is None and not entries:
            return None
        if (
            bundle is not None
            and marker_generation is not None
            and marker_generation != self.store.generation
        ):
            self.status.note(
                f"tenant {self.tenant_id}: journal covers generation "
                f"{marker_generation} but generation "
                f"{self.store.generation} was recovered; the window "
                "between them is lost (shedding-tolerance)"
            )
        if bundle is None:
            self.status.note(
                f"tenant {self.tenant_id}: no checkpoint generation; "
                "rebuilding from the journal alone"
            )
            bundle = self._fresh_bundle()
        if entries:
            bundle = self._replay(bundle, entries)
        return bundle

    def _fresh_bundle(self) -> ParkedTenant:
        """An empty parked bundle (a tenant that crashed before its
        first checkpoint): a pristine path snapshot to replay onto."""
        path = AlertPath(
            self.system,
            threshold=self.config.threshold,
            dead_letters=DeadLetterQueue(
                capacity=self.config.dead_letter_capacity
            ),
        )
        checkpoint = path.snapshot()
        return ParkedTenant(
            tenant_id=self.tenant_id,
            system=self.system,
            checkpoint=checkpoint,
            counters=TenantCounters(),
            dead_letters=checkpoint.dead_letters,
            parked_at=0.0,
        )

    def _would_tag(self, record: LogRecord) -> bool:
        if self._tagger is None:
            self._tagger = Tagger(get_ruleset(self.system))
        try:
            return self._tagger.match(record) is not None
        except Exception:
            return False

    def _replay(
        self, bundle: ParkedTenant, entries: List[Tuple[str, Any]]
    ) -> ParkedTenant:
        checkpoint = bundle.checkpoint
        counters = bundle.counters
        raw = list(checkpoint.raw_alerts)
        filtered = list(checkpoint.filtered_alerts)
        letters = DeadLetterQueue(
            capacity=max(
                self.config.dead_letter_capacity,
                len(checkpoint.dead_letters.letters
                    if checkpoint.dead_letters else ()) + len(entries),
            )
        )
        letters.restore(checkpoint.dead_letters or bundle.dead_letters)

        last_counters = -1
        for index, (kind, _obj) in enumerate(entries):
            if kind == "counters":
                last_counters = index
        if last_counters >= 0:
            counters = TenantCounters.from_dict(entries[last_counters][1])

        for index, (kind, obj) in enumerate(entries):
            top_up = index > last_counters
            if kind == "alert":
                alert, kept = obj
                raw.append(alert)
                if kept:
                    filtered.append(alert)
                if top_up:
                    counters.received += 1
                    counters.processed += 1
                    counters.alerts_raw += 1
                    if kept:
                        counters.alerts_filtered += 1
            elif kind == "letter":
                record, reason, detail = obj
                letters.put(record, reason, detail)
                if top_up:
                    counters.received += 1
                    if reason in REFUSAL_REASONS:
                        counters.count_refused(
                            reason, tagged=self._would_tag(record)
                        )
                    else:
                        counters.processed += 1
            # "counters" was consumed above; unknown kinds are skipped
            # (a newer writer's entries must not break an older reader).

        tail = self.config.alert_tail
        dead_letters = letters.snapshot()
        checkpoint = dc_replace(
            checkpoint,
            raw_alerts=tuple(raw[-tail:]),
            filtered_alerts=tuple(filtered[-tail:]),
            dead_letters=dead_letters,
        )
        return dc_replace(
            bundle,
            checkpoint=checkpoint,
            counters=counters,
            dead_letters=dead_letters,
        )


# -- the service-wide store --------------------------------------------------


class TenantStateStore:
    """Every tenant's durable state under one ``--state-dir``.

    The router asks for a :class:`TenantPersistence` per materialized
    tenant and calls :meth:`load_all` once at startup to rebuild the
    parked map from disk.  One shared :class:`DurabilityStatus` makes
    service-wide degradation observable in a single place."""

    def __init__(
        self,
        state_dir: str,
        config: ServiceConfig,
        fs: Optional[RealFilesystem] = None,
    ):
        self.state_dir = str(state_dir)
        self.config = config
        self.fs = fs if fs is not None else default_filesystem()
        self.status = DurabilityStatus()

    @property
    def tenants_root(self) -> str:
        return os.path.join(self.state_dir, "tenants")

    def for_tenant(self, tenant_id: str, system: str) -> TenantPersistence:
        return TenantPersistence(
            os.path.join(self.tenants_root, tenant_dirname(tenant_id)),
            tenant_id,
            system,
            config=self.config,
            fs=self.fs,
            status=self.status,
        )

    def load_all(self) -> Dict[str, ParkedTenant]:
        """Recover every tenant that left durable state: the parked map
        ``repro serve`` starts from after a crash or a restart."""
        parked: Dict[str, ParkedTenant] = {}
        try:
            if not self.fs.exists(self.tenants_root):
                return parked
            names = self.fs.listdir(self.tenants_root)
        except OSError as exc:
            self.status.latch("state scan", exc)
            return parked
        for name in names:
            directory = os.path.join(self.tenants_root, name)
            identity = TenantPersistence.read_identity(directory, self.fs)
            if identity is None:
                self.status.note(
                    f"state dir entry {name!r} has no readable identity; "
                    "skipped"
                )
                continue
            persistence = TenantPersistence(
                directory,
                str(identity["tenant"]),
                str(identity["system"]),
                config=self.config,
                fs=self.fs,
                status=self.status,
            )
            bundle = persistence.load_parked()
            if bundle is not None:
                bundle = dc_replace(bundle, parked_at=time.monotonic())
                parked[bundle.tenant_id] = bundle
        return parked

"""Live stats/alerts endpoint: one-request JSON lines over a local socket.

The protocol is deliberately primitive — connect, send one command line,
read one JSON line, the server closes — so ``repro stats`` and shell
tools (``nc``) can poke a running service without a client library:

* ``stats`` — service overview plus one accounting row per live tenant;
* ``tenant <id>`` — one tenant's full row (live or parked);
* ``alerts <id> [n]`` — the newest ``n`` raw alerts of one tenant;
* ``health`` — tiny liveness document (state, tenants, conservation).

:func:`query_stats` is the matching synchronous client.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Optional, Tuple

from ..core.categories import Alert


def render_alert(alert: Alert) -> dict:
    return {
        "timestamp": alert.timestamp,
        "source": alert.source,
        "category": alert.category,
        "type": alert.alert_type.name,
        "body": alert.record.body[:200],
    }


class StatsServer:
    """The request handler; owns no state beyond a service reference."""

    def __init__(self, service, host: str, port: int):
        self.service = service
        self.host = host
        self.port = port
        self.requests = 0
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        self.requests += 1
        try:
            raw = await asyncio.wait_for(reader.readline(), timeout=5.0)
            command = raw.decode("utf-8", errors="replace").strip()
            response = self._answer(command)
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _answer(self, command: str) -> dict:
        parts = command.split()
        verb = parts[0] if parts else ""
        if verb == "stats":
            return self.service.stats()
        if verb == "health":
            return self.service.health()
        if verb == "tenant" and len(parts) >= 2:
            row = self.service.tenant_stats(parts[1])
            if row is None:
                return {"error": f"unknown tenant {parts[1]!r}"}
            return row
        if verb == "alerts" and len(parts) >= 2:
            limit = int(parts[2]) if len(parts) >= 3 else 20
            tail = self.service.alert_tail(parts[1])
            if tail is None:
                return {"error": f"unknown tenant {parts[1]!r}"}
            return {
                "tenant": parts[1],
                "alerts": [render_alert(a) for a in tail[-limit:]],
            }
        return {
            "error": f"unknown command {command!r}",
            "commands": ["stats", "health", "tenant <id>", "alerts <id> [n]"],
        }


def query_stats(
    host: str, port: int, command: str = "stats", timeout: float = 5.0
) -> dict:
    """Synchronous client for :class:`StatsServer` (the ``repro stats``
    CLI and the soak harness's external observer)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(command.encode("utf-8") + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    return json.loads(b"".join(chunks).decode("utf-8"))

"""Long-lived multi-tenant ingest service (the driver that never ends).

Everything before this package ran one-shot batches: a driver pulls a
finite stream through an :class:`~repro.engine.path.AlertPath` and
returns a :class:`~repro.engine.result.PipelineResult`.  The paper,
though, frames filtering and tagging as *operational* tools over live
supercomputer streams (Section 5), and LogMaster-style deployments
assume a continuously-ingesting daemon fed by thousands of sources.
This package is that daemon:

* :class:`~repro.service.service.IngestService` — asyncio UDP/TCP
  syslog listeners plus a stats endpoint, orchestrating many concurrent
  tenant streams;
* :class:`~repro.service.tenant.Tenant` — one tenant's complete,
  isolated pipeline state: its own :class:`AlertPath` (filter clocks,
  severity tab, stats), :class:`BoundedQueue` backpressure,
  :class:`ShedPolicy`, :class:`DeadLetterQueue`, circuit breaker, and
  supervised worker task with a bounded restart budget;
* :class:`~repro.service.router.TenantRouter` — envelope parsing and
  tenant lifecycle (lazy creation, idle eviction with checkpoint
  handoff, resurrection, global memory pressure);
* :mod:`~repro.service.stats` — the live stats/alerts endpoint.

The robustness contract, enforced by ``scripts/soak_service.py`` and
``tests/service/``:

1. **Fault isolation** — one tenant's storm, malformed flood, or
   crashing worker cannot stall or corrupt another tenant's alerts.
2. **Zero silent alert loss** — every record the service declines is
   either a counted shed (chatter/duplicate classes only) or a
   dead-letter with a reason; tagged alerts are never dropped without
   accounting.  Conservation is checkable per tenant:
   ``received == shed + refused + processed`` and
   ``expected tagged == reported + dead-lettered + counted shed``.
3. **Graceful degradation** — global memory pressure coarsens stats and
   sheds chatter per tenant instead of growing without bound; quarantine
   (budget exhausted) emits a final accounting snapshot first.
4. **Clean drain** — SIGTERM flushes every tenant's pending records and
   publishes final per-tenant accounting.
"""

from .config import ServiceConfig
from .accounting import TenantCounters
from .tenant import Tenant, TenantQuarantined
from .router import TenantRouter, parse_envelope
from .service import IngestService
from .stats import query_stats

__all__ = [
    "IngestService",
    "ServiceConfig",
    "Tenant",
    "TenantCounters",
    "TenantQuarantined",
    "TenantRouter",
    "parse_envelope",
    "query_stats",
]

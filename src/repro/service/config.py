"""Configuration for the multi-tenant ingest service.

One object describes everything the service needs: per-tenant bounds
(queue capacity, shed policy, restart budget), lifecycle knobs (idle
eviction, drain timeout), global memory governance, and the listener
endpoints.  Per-tenant knobs deliberately reuse the vocabulary of
:class:`~repro.resilience.backpressure.BackpressureConfig` — a tenant is
a bounded pipeline run that never ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.filtering import DEFAULT_THRESHOLD

#: ``fault_hook(tenant_id, record)`` is called before each record is
#: processed; raising simulates a tenant worker crash (the soak harness
#: and the isolation tests inject deterministic crash schedules here).
FaultHook = Callable[[str, Any], None]


@dataclass
class ServiceConfig:
    """Knobs for an :class:`~repro.service.service.IngestService`.

    Parameters mirror the bounded pipeline where they overlap; the new
    ones govern the long-lived shape: supervision, quarantine, idle
    eviction, and the global memory budget shared by all tenants.
    """

    # -- listeners --------------------------------------------------------
    host: str = "127.0.0.1"
    tcp_port: int = 0          #: 0 = ephemeral (bound port is reported)
    udp_port: int = 0          #: 0 = ephemeral; None disables via enable_udp
    stats_port: int = 0        #: 0 = ephemeral
    enable_udp: bool = True
    year: int = 2005           #: reference year for BSD-syslog timestamps

    # -- per-tenant pipeline ----------------------------------------------
    threshold: float = DEFAULT_THRESHOLD
    max_buffer: int = 1024     #: per-tenant ingest queue capacity
    high_fraction: float = 0.8
    low_fraction: float = 0.5
    service_batch: int = 64    #: records a tenant worker serves per wakeup
    shed_policy: str = "priority"
    dedup_window: Optional[float] = None
    dead_letter_capacity: int = 1000
    alert_tail: int = 256      #: retained newest alerts per tenant (counts
                               #: are exact regardless; see ServiceAlertSink)
    #: Per-tenant online prediction: ``True`` enables the streaming
    #: correlation miner + predictor ensemble with defaults, a
    #: :class:`~repro.streaming.PredictionConfig` customizes it, and
    #: falsy (the default) keeps prediction off — tenants then never
    #: import the streaming package (or numpy).
    predict: Any = None

    # -- supervision / quarantine ----------------------------------------
    restart_budget: int = 3    #: worker crashes tolerated before quarantine
    breaker_threshold: int = 5     #: consecutive crashes that open the breaker
    breaker_reset: float = 2.0     #: seconds before a half-open probe
    checkpoint_every: int = 2000   #: records between tenant snapshots

    # -- durability -------------------------------------------------------
    #: Directory for crash-durable tenant state (``None`` = in-memory
    #: only).  With a state dir, every tenant checkpoint and parked
    #: bundle is persisted atomically and alerts/dead-letters are
    #: write-ahead journaled, so a SIGKILLed service resumes its tenants
    #: on restart (see :mod:`repro.service.persistence`).
    state_dir: Optional[str] = None
    #: Directory for per-tenant columnar alert stores (``None`` = off).
    #: Every tenant tees its alert flow into
    #: ``<store_dir>/<tenant_dirname(id)>`` — the same spill-to-disk
    #: column format ``repro study --store-dir`` writes — committed at
    #: checkpoint/park/drain barriers, so tenant analytics can run
    #: out-of-core over weeks of alerts the ``alert_tail`` ring long
    #: since dropped.
    store_dir: Optional[str] = None

    # -- lifecycle --------------------------------------------------------
    idle_ttl: float = 300.0    #: seconds of quiet before eviction
    housekeeping_interval: float = 0.25
    drain_timeout: float = 30.0

    # -- global memory governance ----------------------------------------
    #: Total queued records across every tenant before global pressure
    #: engages (ELEVATED at high_fraction, CRITICAL at the budget).
    global_queue_budget: int = 65536
    #: Consecutive overloaded housekeeping samples before the service
    #: enters degraded mode (coarse stats on every tenant).
    sustain: int = 8

    # -- test instrumentation --------------------------------------------
    fault_hook: Optional[FaultHook] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for name in ("max_buffer", "service_batch", "dead_letter_capacity",
                     "alert_tail", "checkpoint_every", "global_queue_budget",
                     "sustain", "breaker_threshold"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        if self.restart_budget < 0:
            raise ValueError("restart_budget must be non-negative")
        if not 0.0 < self.low_fraction < self.high_fraction <= 1.0:
            raise ValueError(
                "need 0 < low_fraction < high_fraction <= 1, got "
                f"{self.low_fraction}/{self.high_fraction}"
            )
        for name in ("idle_ttl", "housekeeping_interval", "drain_timeout",
                     "breaker_reset"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

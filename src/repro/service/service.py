"""The long-lived ingest daemon: listeners, housekeeping, clean drain.

:class:`IngestService` composes the pieces this package defines — a
:class:`TenantRouter` fed by TCP/UDP listeners, watched by a periodic
housekeeping task, observable through a :class:`StatsServer` — into one
single-event-loop daemon.  The loop owns all tenant state, so routing
and accounting need no cross-task locking; fairness comes from each
tenant worker yielding after one ``service_batch``.

Housekeeping (every ``housekeeping_interval`` seconds) is where global
behavior lives: the memory governor samples total queued records and
flips degraded mode (coarse stats on every tenant) under sustained
overload, idle tenants are parked as checkpoints, and throughput samples
are taken for the stats endpoint.

Shutdown is a *drain*, not an abort: listeners stop accepting, every
tenant worker finishes its queue and takes a final checkpoint, and only
then does :meth:`run` return — with per-tenant conservation intact, as
``final_report`` proves.
"""

from __future__ import annotations

import asyncio
import signal
import time
from typing import Dict, List, Optional

from .config import ServiceConfig
from .listeners import TcpIngestListener, UdpIngestListener
from .router import TenantRouter
from .stats import StatsServer


class IngestService:
    """A running multi-tenant ingest daemon (one per event loop)."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.router = TenantRouter(self.config)
        self.tcp = TcpIngestListener(
            self.router, self.config.host, self.config.tcp_port
        )
        self.udp = (
            UdpIngestListener(self.router, self.config.host,
                              self.config.udp_port)
            if self.config.enable_udp else None
        )
        self.stats_server = StatsServer(
            self, self.config.host, self.config.stats_port
        )
        self.state = "idle"
        self.started_at: Optional[float] = None
        self.events: List[str] = []
        self._housekeeping: Optional[asyncio.Task] = None
        # Created in start(): binding an Event outside the running loop
        # breaks on Python 3.9.
        self._stopped: Optional[asyncio.Event] = None

    # -- addresses (valid after start) ------------------------------------

    @property
    def tcp_port(self) -> int:
        return self.tcp.port

    @property
    def udp_port(self) -> Optional[int]:
        return self.udp.port if self.udp is not None else None

    @property
    def stats_port(self) -> int:
        return self.stats_server.port

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind every listener and begin housekeeping."""
        if self.state != "idle":
            raise RuntimeError(f"cannot start from state {self.state!r}")
        self._stopped = asyncio.Event()
        await self.tcp.start()
        if self.udp is not None:
            await self.udp.start()
        await self.stats_server.start()
        self.state = "running"
        self.started_at = time.monotonic()
        self._housekeeping = asyncio.get_running_loop().create_task(
            self._housekeep(), name="service:housekeeping"
        )
        self._note(
            f"listening tcp={self.tcp.port} "
            f"udp={self.udp.port if self.udp else '-'} "
            f"stats={self.stats_server.port}"
        )

    async def drain(self) -> None:
        """Stop accepting, flush every tenant, publish final accounting."""
        if self.state in ("draining", "stopped"):
            return
        self.state = "draining"
        self._note("drain: listeners closing")
        await self.tcp.stop()
        if self.udp is not None:
            await self.udp.stop()
        try:
            await asyncio.wait_for(
                self.router.drain(), timeout=self.config.drain_timeout
            )
            self._note("drain: all tenants flushed")
        except asyncio.TimeoutError:  # pragma: no cover - pathological
            self._note(
                f"drain: timeout after {self.config.drain_timeout}s; "
                f"{self.router.total_queued()} records still queued"
            )
        if self._housekeeping is not None:
            self._housekeeping.cancel()
            self._housekeeping = None
        await self.stats_server.stop()
        self.state = "stopped"
        if self._stopped is not None:
            self._stopped.set()

    async def run(self, install_signals: bool = True) -> Dict[str, dict]:
        """Start, serve until SIGTERM/SIGINT (or :meth:`drain`), return
        the final per-tenant accounting report."""
        await self.start()
        await self.run_until_stopped(install_signals)
        return self.final_report()

    async def run_until_stopped(self, install_signals: bool = True) -> None:
        """Serve (already started) until SIGTERM/SIGINT triggers a drain
        or :meth:`drain` is called directly."""
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(self.drain())
                    )
                except (NotImplementedError, RuntimeError):
                    break  # non-unix or nested loop: rely on drain()
        await self._stopped.wait()

    def _note(self, event: str) -> None:
        self.events.append(event)
        if len(self.events) > 256:
            del self.events[:128]

    # -- housekeeping ------------------------------------------------------

    async def _housekeep(self) -> None:
        governor = self.router.governor
        interval = self.config.housekeeping_interval
        while True:
            await asyncio.sleep(interval)
            was_degraded = governor.degraded
            governor.sample(self.router.total_queued())
            if governor.degraded != was_degraded:
                self.router.set_coarse_stats(governor.degraded)
                self._note(
                    "degraded mode entered: coarse statistics"
                    if governor.degraded else
                    "degraded mode cleared: fine statistics restored"
                )
            now = time.monotonic()
            for tenant in self.router.tenants.values():
                tenant.note_sample(now)
            for tenant_id in self.router.evict_idle(now):
                self._note(f"evicted idle tenant {tenant_id} (checkpointed)")

    # -- observation (consumed by StatsServer and tests) -------------------

    def stats(self) -> dict:
        uptime = (
            time.monotonic() - self.started_at
            if self.started_at is not None else 0.0
        )
        return {
            "state": self.state,
            "uptime": round(uptime, 3),
            "router": self.router.stats(),
            "tcp_connections": self.tcp.connections,
            "udp_datagrams": (
                self.udp.protocol.datagrams
                if self.udp is not None and self.udp.protocol is not None
                else 0
            ),
            "events": list(self.events[-16:]),
            "tenants": {
                tid: t.stats() for tid, t in self.router.tenants.items()
            },
        }

    def health(self) -> dict:
        return {
            "state": self.state,
            "tenants_live": len(self.router.tenants),
            "tenants_parked": len(self.router.parked),
            "degraded": self.router.governor.degraded,
            "conserving": all(
                t.counters.conserves(len(t.queue))
                for t in self.router.tenants.values()
            ),
        }

    def tenant_stats(self, tenant_id: str) -> Optional[dict]:
        tenant = self.router.tenants.get(tenant_id)
        if tenant is not None:
            return tenant.stats()
        parked = self.router.parked.get(tenant_id)
        if parked is not None:
            row = parked.counters.as_dict()
            row.update({
                "tenant": tenant_id,
                "system": parked.system,
                "parked": True,
                "conserves": parked.counters.conserves(0),
            })
            return row
        return None

    def alert_tail(self, tenant_id: str):
        tenant = self.router.tenants.get(tenant_id)
        if tenant is not None:
            return tenant.alert_tail
        parked = self.router.parked.get(tenant_id)
        if parked is not None:
            return parked.checkpoint.raw_alerts
        return None

    def final_report(self) -> Dict[str, dict]:
        """Per-tenant accounting after drain: every live and parked
        tenant's counters plus the service-level unroutable count."""
        report: Dict[str, dict] = {}
        for tenant_id, tenant in self.router.tenants.items():
            report[tenant_id] = tenant.stats()
        for tenant_id, parked in self.router.parked.items():
            if tenant_id not in report:
                report[tenant_id] = self.tenant_stats(tenant_id)
        report["_service"] = self.router.stats()
        return report

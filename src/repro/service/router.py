"""Envelope parsing, tenant lifecycle, and global memory governance.

The wire protocol is one envelope per line (or datagram)::

    @<tenant>:<system> <native log line>

``tenant`` names the stream; ``system`` names the dialect (one of the
five paper systems) so the router knows which parser and tagger ruleset
the tenant's :class:`AlertPath` needs.  The native remainder is parsed
in tolerant mode — a corrupted line becomes a flagged record the
tenant's own path accounts for, never an exception in the listener.

Lines the router cannot attribute to a tenant at all (no envelope, an
unknown dialect, or a dialect clash with an existing tenant) go to a
*service-level* dead-letter queue under ``unroutable`` — the zero-silent-
loss contract extends to garbage.

:class:`MemoryGovernor` turns the sum of all tenants' queue depths into
a global :class:`PressureLevel` that each tenant's shed policy sees
alongside its own queue pressure, and latches *degraded mode* (coarse
statistics everywhere) after sustained overload — graceful degradation
instead of unbounded growth.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..logmodel.bgl import parse_bgl_line
from ..logmodel.record import LogRecord
from ..logmodel.redstorm import parse_redstorm_line
from ..logmodel.syslog import parse_syslog_line
from ..resilience.backpressure import PressureLevel
from ..resilience.deadletter import DeadLetterQueue, REASON_UNROUTABLE
from ..systems.specs import SYSTEMS
from .config import ServiceConfig
from .persistence import TenantStateStore
from .tenant import ParkedTenant, Tenant


def parse_envelope(line: str) -> Optional[Tuple[str, str, str]]:
    """Split ``@tenant:system rest`` into its parts; ``None`` if the
    line carries no well-formed envelope."""
    if not line.startswith("@"):
        return None
    head, sep, rest = line.partition(" ")
    if not sep:
        return None
    tenant, colon, system = head[1:].partition(":")
    if not colon or not tenant or not system:
        return None
    return tenant, system, rest


def format_envelope(tenant: str, system: str, line: str) -> str:
    """The sender side of :func:`parse_envelope` (used by tests and the
    soak harness)."""
    return f"@{tenant}:{system} {line}"


def parse_native_line(line: str, system: str, year: int) -> LogRecord:
    """Parse one native-format line in tolerant mode (never raises)."""
    if system == "bgl":
        return parse_bgl_line(line)
    if system == "redstorm":
        return parse_redstorm_line(line, year)
    return parse_syslog_line(line, year, system=system)


class MemoryGovernor:
    """Global queue-budget pressure with sustained-overload latching.

    Each tenant's queue is individually bounded, but 100 tenants at 80%
    of their individual bounds is still a global memory problem.  The
    governor maps total queued records against ``global_queue_budget``
    (ELEVATED at ``high_fraction``, CRITICAL at the budget, with
    hysteresis at ``low_fraction``) — tenants shed against
    ``max(own pressure, global pressure)``, so global overload sheds
    chatter *everywhere* while tagged alerts still spill to dead-letter
    queues rather than vanish.  ``sustain`` consecutive overloaded
    samples latch degraded mode (coarse stats); the same count of calm
    samples clears it.
    """

    def __init__(self, config: ServiceConfig):
        self.budget = config.global_queue_budget
        self.high = max(1, int(self.budget * config.high_fraction))
        self.low = int(self.budget * config.low_fraction)
        self.sustain = config.sustain
        self.degraded = False
        self.degraded_entered = 0
        self._level = PressureLevel.NORMAL
        self._elevated = False
        self._hot_streak = 0
        self._calm_streak = 0

    def level(self) -> PressureLevel:
        return self._level

    def sample(self, total_queued: int) -> PressureLevel:
        """Fold one housekeeping observation into the global level."""
        if total_queued >= self.high:
            self._elevated = True
        elif total_queued <= self.low:
            self._elevated = False
        if total_queued >= self.budget:
            self._level = PressureLevel.CRITICAL
        elif self._elevated:
            self._level = PressureLevel.ELEVATED
        else:
            self._level = PressureLevel.NORMAL
        if self._level >= PressureLevel.ELEVATED:
            self._hot_streak += 1
            self._calm_streak = 0
            if not self.degraded and self._hot_streak >= self.sustain:
                self.degraded = True
                self.degraded_entered += 1
        else:
            self._calm_streak += 1
            self._hot_streak = 0
            if self.degraded and self._calm_streak >= self.sustain:
                self.degraded = False
        return self._level

    def stats(self) -> dict:
        return {
            "budget": self.budget,
            "level": self._level.name,
            "degraded": self.degraded,
            "degraded_entered": self.degraded_entered,
        }


class TenantRouter:
    """Owns the tenant map: creation, routing, eviction, resurrection.

    All methods run on the event loop (no cross-thread access); the
    underlying shed/dead-letter primitives are additionally lock-safe so
    sharing them with helper threads (the stats server, tests) is sound.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.governor = MemoryGovernor(config)
        self.tenants: Dict[str, Tenant] = {}
        #: Durable backend (``--state-dir``); ``None`` = in-memory only.
        self.state_store = (
            TenantStateStore(config.state_dir, config)
            if config.state_dir is not None else None
        )
        #: The parked map seeds from disk: every tenant that left durable
        #: state in a previous process resurrects on its first line.
        self.parked: Dict[str, ParkedTenant] = (
            self.state_store.load_all()
            if self.state_store is not None else {}
        )
        #: Service-level quarantine for lines owned by no tenant.
        self.unroutable = DeadLetterQueue(capacity=config.dead_letter_capacity)
        self.lines_seen = 0
        self.tenants_created = 0

    # -- routing -----------------------------------------------------------

    def ingest_line(self, line: str) -> None:
        """Route one wire line to its tenant (creating or resurrecting it
        on first sight) or to the unroutable dead-letter queue."""
        self.lines_seen += 1
        envelope = parse_envelope(line)
        if envelope is None:
            self._unroutable(line, "no envelope")
            return
        tenant_id, system, rest = envelope
        if system not in SYSTEMS:
            self._unroutable(line, f"unknown system {system!r}")
            return
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            tenant = self._materialize(tenant_id, system)
        elif tenant.system != system:
            self._unroutable(
                line,
                f"dialect clash: tenant {tenant_id!r} is "
                f"{tenant.system}, line says {system}",
            )
            return
        record = parse_native_line(rest, system, self.config.year)
        tenant.offer(record)

    def _unroutable(self, line: str, detail: str) -> None:
        # Wrap the raw line in a minimal corrupted record so the letter
        # round-trips through the standard dead-letter machinery.
        record = LogRecord(
            timestamp=0.0, source="", facility="", body=line[:512],
            corrupted=True, raw=line[:512],
        )
        self.unroutable.put(record, REASON_UNROUTABLE, detail)

    def _materialize(self, tenant_id: str, system: str) -> Tenant:
        parked = self.parked.pop(tenant_id, None)
        if parked is not None and parked.system != system:
            # A parked tenant resurrected under a different dialect is a
            # new stream; the old checkpoint cannot seed it.
            self.parked[tenant_id] = parked
            parked = None
        tenant = Tenant(
            tenant_id, system, self.config,
            governor=self.governor, parked=parked,
            persistence=(
                self.state_store.for_tenant(tenant_id, system)
                if self.state_store is not None else None
            ),
        )
        if parked is None:
            self.tenants_created += 1
        tenant.start()
        self.tenants[tenant_id] = tenant
        return tenant

    # -- lifecycle (called from the service's housekeeping task) -----------

    def total_queued(self) -> int:
        return sum(len(t.queue) for t in self.tenants.values())

    def evict_idle(self, now: Optional[float] = None) -> List[str]:
        """Park every evictable tenant; returns the evicted ids."""
        now = time.monotonic() if now is None else now
        evicted = []
        for tenant_id in list(self.tenants):
            tenant = self.tenants[tenant_id]
            if tenant.evictable(now):
                self.parked[tenant_id] = tenant.park()
                del self.tenants[tenant_id]
                evicted.append(tenant_id)
        return evicted

    def set_coarse_stats(self, coarse: bool) -> None:
        for tenant in self.tenants.values():
            tenant.path.stats_collector.coarse = coarse

    async def drain(self) -> None:
        """Flush every live tenant's pending records."""
        for tenant in list(self.tenants.values()):
            await tenant.drain()

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        durability = (
            self.state_store.status.as_dict()
            if self.state_store is not None else None
        )
        return {
            "durability": durability,
            "lines_seen": self.lines_seen,
            "tenants_live": len(self.tenants),
            "tenants_parked": len(self.parked),
            "tenants_created": self.tenants_created,
            "tenants_quarantined": sum(
                1 for t in self.tenants.values() if t.quarantined
            ),
            "total_queued": self.total_queued(),
            "unroutable": self.unroutable.quarantined,
            "governor": self.governor.stats(),
        }

"""Per-tenant conservation accounting: nothing leaves without a count.

The soak harness's headline invariant — *every generated tagged alert is
reported, dead-lettered, or attributed to a counted shed* — is only
checkable if the service maintains a complete partition of everything it
received.  :class:`TenantCounters` is that partition:

``received == shed + refused + processed + queue_depth``

* **shed** — dropped at the queue door by the shed policy, counted per
  class (chatter first, duplicates under CRITICAL; tagged alerts never);
* **refused** — dead-lettered *before* reaching the tenant's
  :class:`AlertPath`: spills under pressure, circuit-breaker rejections,
  quarantined-tenant arrivals, and the poison record of a worker crash.
  Refusals of records any rule would tag are additionally counted in
  ``refused_tagged`` so tagged-alert conservation stays exact;
* **processed** — consumed by the path, which internally accounts every
  record (alert reported, chatter observed, or dead-lettered with an
  in-path reason: invalid / tagger-error / out-of-order).

Alert-side counters (``alerts_raw`` / ``alerts_filtered``) are
monotonic journal counts incremented at emit time by the service sink —
they survive crash-restores of path state, so a restart can never
un-report an alert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TenantCounters:
    """Monotonic per-tenant counters; the authority for conservation."""

    received: int = 0          #: lines routed to this tenant
    shed: int = 0              #: dropped at the door (counted per class)
    refused: int = 0           #: dead-lettered before the path
    refused_tagged: int = 0    #: ... of which any rule would have tagged
    processed: int = 0         #: records consumed by the AlertPath
    alerts_raw: int = 0        #: alerts emitted (pre-filter), journaled
    alerts_filtered: int = 0   #: alerts the filter kept
    crashes: int = 0           #: worker crashes absorbed
    evictions: int = 0         #: idle evictions (checkpoint handoffs)
    resumes: int = 0           #: resurrections from a parked checkpoint
    shed_by_class: Dict[str, int] = field(default_factory=dict)
    refused_by_reason: Dict[str, int] = field(default_factory=dict)

    def count_shed(self, klass: str) -> None:
        self.shed += 1
        self.shed_by_class[klass] = self.shed_by_class.get(klass, 0) + 1

    def count_refused(self, reason: str, tagged: bool) -> None:
        self.refused += 1
        if tagged:
            self.refused_tagged += 1
        self.refused_by_reason[reason] = (
            self.refused_by_reason.get(reason, 0) + 1
        )

    def accounted(self, queue_depth: int = 0) -> int:
        """Everything with a known fate; equals ``received`` when the
        tenant is conserving (the invariant tests assert exactly this)."""
        return self.shed + self.refused + self.processed + queue_depth

    def conserves(self, queue_depth: int = 0) -> bool:
        return self.accounted(queue_depth) == self.received

    @classmethod
    def from_dict(cls, fields: Dict[str, object]) -> "TenantCounters":
        """Rebuild counters from an :meth:`as_dict` journal entry (the
        durable form the service's write-ahead journal replays)."""
        counters = cls()
        for name in ("received", "shed", "refused", "refused_tagged",
                     "processed", "alerts_raw", "alerts_filtered",
                     "crashes", "evictions", "resumes"):
            setattr(counters, name, int(fields.get(name, 0)))
        counters.shed_by_class = dict(fields.get("shed_by_class", {}))
        counters.refused_by_reason = dict(fields.get("refused_by_reason", {}))
        return counters

    def as_dict(self) -> Dict[str, object]:
        return {
            "received": self.received,
            "shed": self.shed,
            "shed_by_class": dict(self.shed_by_class),
            "refused": self.refused,
            "refused_tagged": self.refused_tagged,
            "refused_by_reason": dict(self.refused_by_reason),
            "processed": self.processed,
            "alerts_raw": self.alerts_raw,
            "alerts_filtered": self.alerts_filtered,
            "crashes": self.crashes,
            "evictions": self.evictions,
            "resumes": self.resumes,
        }

"""Syslog wire listeners: newline-framed TCP and datagram UDP.

Both transports feed :meth:`TenantRouter.ingest_line` on the event loop.
TCP carries one envelope per line with explicit framing (partial lines
are buffered per connection, bounded so one unframed flood cannot grow
memory); UDP carries one envelope per datagram, matching classic syslog.
Decoding is tolerant (``errors="replace"``) — a garbled payload becomes
an unroutable or corrupted-record dead letter downstream, never a
listener exception.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

#: A TCP connection buffering more than this many bytes without a
#: newline is framed wrong; the buffer is flushed as one (unroutable)
#: line rather than growing without bound.
MAX_LINE_BYTES = 64 * 1024


class TcpIngestListener:
    """Newline-framed envelope stream over TCP."""

    def __init__(self, router, host: str, port: int):
        self.router = router
        self.host = host
        self.port = port
        self.connections = 0
        self.connections_open = 0
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve, self.host, self.port,
            limit=MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        self.connections_open += 1
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Over-long unframed junk: drain what we can reach
                    # and account it as one line.
                    raw = await reader.read(MAX_LINE_BYTES)
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
                if line:
                    self.router.ingest_line(line)
        except (ConnectionResetError, BrokenPipeError):
            pass  # abrupt churn is normal; everything framed was ingested
        finally:
            self.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class UdpIngestProtocol(asyncio.DatagramProtocol):
    """One envelope per datagram (multi-line datagrams are split)."""

    def __init__(self, router):
        self.router = router
        self.datagrams = 0

    def datagram_received(self, data: bytes, addr) -> None:
        self.datagrams += 1
        text = data.decode("utf-8", errors="replace")
        for line in text.splitlines():
            if line:
                self.router.ingest_line(line)

    def error_received(self, exc) -> None:  # pragma: no cover - OS-dependent
        pass


class UdpIngestListener:
    """Datagram envelope listener (the lossy classic-syslog path)."""

    def __init__(self, router, host: str, port: int):
        self.router = router
        self.host = host
        self.port = port
        self.protocol: Optional[UdpIngestProtocol] = None
        self._transport = None

    async def start(self) -> Tuple[str, int]:
        loop = asyncio.get_running_loop()
        self._transport, self.protocol = await loop.create_datagram_endpoint(
            lambda: UdpIngestProtocol(self.router),
            local_addr=(self.host, self.port),
        )
        sock = self._transport.get_extra_info("socket")
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

"""End-to-end pipeline: generate -> measure -> tag -> filter -> analyze.

This is the library's front door, wiring the substrate and the paper's
contribution together the way Sections 3 and 4 do:

1. generate (or read) a machine's log stream;
2. accumulate Table 2 volume statistics while streaming;
3. tag alerts with the machine's expert ruleset (Section 3.2);
4. filter with the simultaneous spatio-temporal algorithm (Section 3.3);
5. keep everything an analysis needs (raw alerts, filtered alerts, cross
   tabs, ground truth) on one result object.

The pipeline is built to survive the collection-path pathologies the
paper documents (Sections 3.1-3.2): attach a
:class:`~repro.resilience.deadletter.DeadLetterQueue` and records the
stages cannot process are quarantined instead of crashing the run; attach
a :class:`~repro.resilience.checkpoint.CheckpointManager` and the run can
be resumed after a crash via ``resume_from`` without reprocessing — or
pass ``faults=``/``supervised=True`` to :func:`run_system`/:func:`run_all`
and the :class:`~repro.resilience.supervisor.PipelineSupervisor` does all
of that wiring, restarts crashed runs, and degrades gracefully when its
restart budget runs out.

Example::

    from repro import pipeline
    result = pipeline.run_system("spirit", scale=1e-4, seed=42)
    print(result.summary())
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, List, Optional

from .core.categories import Alert
from .core.filtering import (
    DEFAULT_THRESHOLD,
    FilterReport,
    OutOfOrderError,
    SpatioTemporalFilter,
)
from .core.rules import get_ruleset
from .core.tagging import Tagger
from .analysis.severity_eval import SeverityCrossTab
from .logio.stats import LogStats, StatsCollector
from .logmodel.record import LogRecord
from .resilience.backpressure import (
    SHED,
    SPILL,
    BackpressureConfig,
    BoundedQueue,
    CreditGate,
    OverloadMonitor,
    OverloadReport,
)
from .resilience.checkpoint import (
    CheckpointManager,
    PipelineCheckpoint,
    copy_report,
    copy_severity,
)
from .resilience.deadletter import (
    DeadLetterQueue,
    REASON_INVALID_RECORD,
    REASON_OUT_OF_ORDER,
    REASON_SHED_OVERLOAD,
    REASON_TAGGER_ERROR,
)
from .resilience.shedding import ShedAccounting, get_shed_policy
from .parallel.config import ParallelConfig
from .parallel.sharded import ShardStats, ShardedTagger, TaggerErrorReplay, chunked
from .simulation.generator import GeneratedLog, LogGenerator

#: How far back an alert timestamp may run (collector fan-in jitter,
#: syslog's one-second granularity) before it is quarantined rather than
#: filtered.  Matches the strict-monotonicity contract of Algorithm 3.1.
DEFAULT_REORDER_TOLERANCE = 1.0


@dataclass
class PipelineResult:
    """Everything one machine's pipeline run produced."""

    system: str
    stats: LogStats
    raw_alerts: List[Alert]
    filtered_alerts: List[Alert]
    filter_report: FilterReport
    severity_tab: SeverityCrossTab
    corrupted_messages: int
    generated: Optional[GeneratedLog] = None
    threshold: float = DEFAULT_THRESHOLD
    dead_letters: Optional[DeadLetterQueue] = None
    degraded: bool = False
    restarts: int = 0
    failure_log: List[str] = field(default_factory=list)
    overload: Optional[OverloadReport] = None
    shard_stats: Optional[ShardStats] = None

    @property
    def message_count(self) -> int:
        return self.stats.messages

    @property
    def raw_alert_count(self) -> int:
        return len(self.raw_alerts)

    @property
    def filtered_alert_count(self) -> int:
        return len(self.filtered_alerts)

    @property
    def observed_categories(self) -> int:
        return len({alert.category for alert in self.raw_alerts})

    @property
    def dead_letter_count(self) -> int:
        return self.dead_letters.quarantined if self.dead_letters else 0

    def category_counts(self) -> Dict[str, List[int]]:
        """Per-category [raw, filtered] counts (the Table 4 columns)."""
        return dict(self.filter_report.by_category)

    def summary(self) -> str:
        """A Table 2-style one-machine summary."""
        lines = [
            f"system:            {self.system}",
            f"messages:          {self.message_count:,}",
            f"log size:          {self.stats.raw_bytes:,} bytes "
            f"({self.stats.compressed_bytes:,} gzipped)",
            f"span:              {self.stats.days:.1f} days "
            f"({self.stats.rate_bytes_per_second:.1f} bytes/sec)",
            f"alerts (raw):      {self.raw_alert_count:,}",
            f"alerts (filtered): {self.filtered_alert_count:,} "
            f"(T={self.threshold:g}s)",
            f"categories:        {self.observed_categories}",
            f"corrupted:         {self.corrupted_messages:,}",
        ]
        if self.dead_letters is not None and self.dead_letters.quarantined:
            lines.append(f"dead letters:      {self.dead_letters.summary()}")
        if self.overload is not None:
            lines.extend(self.overload.summary_lines())
        if self.shard_stats is not None:
            lines.append(self.shard_stats.summary_line())
        if self.restarts:
            lines.append(f"restarts:          {self.restarts}")
        if self.degraded:
            lines.append(
                "degraded:          yes (restart budget exhausted; "
                "counts cover the stream up to the last checkpoint)"
            )
        return "\n".join(lines)


def _valid_record(record: LogRecord) -> bool:
    """Structural admission check: can downstream stages process this?"""
    try:
        if not math.isfinite(record.timestamp):
            return False
    except TypeError:
        return False
    return isinstance(record.body, str) and isinstance(record.source, str)


def _restore_or_init(
    system: str,
    threshold: float,
    resume_from: Optional[PipelineCheckpoint],
    dead_letters: Optional[DeadLetterQueue],
    reorder_tolerance: float,
):
    """Fresh streaming state, or state restored from a checkpoint."""
    if resume_from is not None:
        if resume_from.system != system:
            raise ValueError(
                f"checkpoint is for {resume_from.system!r}, not {system!r}"
            )
        if resume_from.threshold != threshold:
            raise ValueError("checkpoint was taken with a different threshold")
        stats_collector = resume_from.restore_stats()
        stf = resume_from.restore_filter()
        report = resume_from.restore_report()
        severity_tab = resume_from.restore_severity()
        raw_alerts: List[Alert] = list(resume_from.raw_alerts)
        filtered_alerts: List[Alert] = list(resume_from.filtered_alerts)
        corrupted = resume_from.corrupted_messages
        consumed = resume_from.records_consumed
        if dead_letters is not None:
            dead_letters.restore(resume_from.dead_letters)
    else:
        stats_collector = StatsCollector(system)
        stf = SpatioTemporalFilter(threshold, reorder_tolerance=reorder_tolerance)
        report = FilterReport(threshold=threshold)
        severity_tab = SeverityCrossTab()
        raw_alerts = []
        filtered_alerts = []
        corrupted = 0
        consumed = 0
    return (stats_collector, stf, report, severity_tab, raw_alerts,
            filtered_alerts, corrupted, consumed)


def run_stream(
    records: Iterable[LogRecord],
    system: str,
    threshold: float = DEFAULT_THRESHOLD,
    generated: Optional[GeneratedLog] = None,
    dead_letters: Optional[DeadLetterQueue] = None,
    checkpointer: Optional[CheckpointManager] = None,
    resume_from: Optional[PipelineCheckpoint] = None,
    reorder_tolerance: float = DEFAULT_REORDER_TOLERANCE,
    backpressure: Optional[BackpressureConfig] = None,
    parallel: Optional[ParallelConfig] = None,
) -> PipelineResult:
    """Run the measurement/tag/filter pipeline over any record stream.

    Single pass: volume statistics, severity cross-tab, tagging, and
    filtering all happen as the stream flows through, so an arbitrarily
    large log needs constant memory beyond the alert lists.

    With ``dead_letters`` attached the pipeline quarantines what it cannot
    process — malformed records, records that crash the tagger, alerts
    whose timestamps run backwards beyond ``reorder_tolerance`` — instead
    of raising.  Without a queue the historical strict behavior holds.

    With a ``checkpointer``, resumable snapshots are taken every
    ``checkpointer.every`` input records; pass the last snapshot back as
    ``resume_from`` (with the *same* deterministic stream) after a crash
    and the run continues without reprocessing, landing byte-identical to
    an uninterrupted run.

    With ``backpressure`` (a :class:`BackpressureConfig`), the stages run
    behind bounded queues with credit-based flow control and
    priority-aware load shedding — see :func:`_run_bounded` — and the
    result carries an :class:`OverloadReport`.

    With ``parallel`` (a :class:`ParallelConfig`), tagging fans out to
    worker processes — see :func:`_run_parallel` — while stats, severity,
    and the spatio-temporal filter stay the single sequential consumer of
    the order-preserved merge, so the result is identical to a serial
    run (the differential suite in ``tests/parallel/`` enforces this).
    ``parallel`` does not compose with ``backpressure`` or with
    checkpoint/resume: sharded runs have their own worker-crash retry
    path, and bounded ticks assume an in-process tag stage.
    """
    if parallel is not None:
        if backpressure is not None:
            raise ValueError(
                "parallel does not compose with backpressure: bounded "
                "ticks drive an in-process tag stage"
            )
        if checkpointer is not None or resume_from is not None:
            raise ValueError(
                "parallel does not compose with checkpoint/resume; "
                "crashed workers are retried by the shard supervisor "
                "instead"
            )
        return _run_parallel(
            records, system, threshold=threshold, generated=generated,
            dead_letters=dead_letters, reorder_tolerance=reorder_tolerance,
            config=parallel,
        )
    if backpressure is not None:
        return _run_bounded(
            records, system, threshold=threshold, generated=generated,
            dead_letters=dead_letters, checkpointer=checkpointer,
            resume_from=resume_from, reorder_tolerance=reorder_tolerance,
            config=backpressure,
        )
    tagger = Tagger(get_ruleset(system))
    source = iter(records)

    (stats_collector, stf, report, severity_tab, raw_alerts,
     filtered_alerts, corrupted, consumed) = _restore_or_init(
        system, threshold, resume_from, dead_letters, reorder_tolerance
    )
    if resume_from is not None:
        source = islice(source, consumed, None)

    if checkpointer is not None:
        checkpointer.prime(resume_from)

    def admitted(stream: Iterable[LogRecord]):
        """Count every input record; quarantine the structurally invalid
        before they can crash the renderer or the filter."""
        nonlocal consumed
        for record in stream:
            consumed += 1
            if dead_letters is not None and not _valid_record(record):
                dead_letters.put(record, REASON_INVALID_RECORD)
                continue
            yield record

    def snapshot() -> PipelineCheckpoint:
        return PipelineCheckpoint(
            system=system,
            threshold=threshold,
            records_consumed=consumed,
            stats=stats_collector.snapshot(),
            filter_state=stf.state_dict(),
            report=copy_report(report),
            severity=copy_severity(severity_tab),
            raw_alerts=tuple(raw_alerts),
            filtered_alerts=tuple(filtered_alerts),
            corrupted_messages=corrupted,
            dead_letters=dead_letters.snapshot() if dead_letters else None,
        )

    for record in stats_collector.observe(admitted(source)):
        if record.corrupted:
            corrupted += 1
        try:
            alert = tagger.tag(record)
        except Exception as exc:
            if dead_letters is None:
                raise
            dead_letters.put(record, REASON_TAGGER_ERROR, repr(exc))
            continue
        severity_tab.add(record, alert is not None)
        if alert is not None:
            try:
                kept: Optional[bool] = stf.offer(alert)
            except OutOfOrderError as exc:
                if dead_letters is None:
                    raise
                dead_letters.put(record, REASON_OUT_OF_ORDER, str(exc))
                kept = None
            if kept is not None:
                raw_alerts.append(alert)
                report.record(alert, kept)
                if kept:
                    filtered_alerts.append(alert)
        if checkpointer is not None:
            checkpointer.maybe(consumed, snapshot)

    return PipelineResult(
        system=system,
        stats=stats_collector.finish(),
        raw_alerts=raw_alerts,
        filtered_alerts=filtered_alerts,
        filter_report=report,
        severity_tab=severity_tab,
        corrupted_messages=corrupted,
        generated=generated,
        threshold=threshold,
        dead_letters=dead_letters,
    )


def _run_parallel(
    records: Iterable[LogRecord],
    system: str,
    threshold: float,
    generated: Optional[GeneratedLog],
    dead_letters: Optional[DeadLetterQueue],
    reorder_tolerance: float,
    config: ParallelConfig,
) -> PipelineResult:
    """The sharded-tagging form of :func:`run_stream`.

    Only the tagger — the hot path, where almost every record matches no
    rule — runs in worker processes.  Everything whose semantics are
    order-defined stays in the parent, consuming batches in original
    stream order from the order-preserving merge: Table 2 stats, the
    severity cross-tab, and above all the spatio-temporal filter, whose
    Algorithm 3.1 clear-table state is meaningful only over the
    time-sorted sequence (sharding the *filter* is what Liang et al. do
    per node partition; sharding the *tagger* under a sequential filter
    keeps our Algorithm 3.1 semantics untouched).

    Per-record semantics mirror the serial loop exactly: structurally
    invalid records are quarantined before they are observed, records
    that crash the rules engine skip the severity tab, and out-of-order
    alerts quarantine or raise by the same rule.  Without a dead-letter
    queue, a worker-side tagger error re-raises in the parent as
    :class:`~repro.parallel.sharded.TaggerErrorReplay` (the original
    exception object cannot cross the process boundary).
    """
    (stats_collector, stf, report, severity_tab, raw_alerts,
     filtered_alerts, corrupted, consumed) = _restore_or_init(
        system, threshold, None, dead_letters, reorder_tolerance
    )
    source = iter(records)

    def admitted(stream: Iterable[LogRecord]):
        nonlocal consumed
        for record in stream:
            consumed += 1
            if dead_letters is not None and not _valid_record(record):
                dead_letters.put(record, REASON_INVALID_RECORD)
                continue
            yield record

    with ShardedTagger(system, config) as sharded:
        batches = chunked(admitted(source), config.batch_size)
        for batch, outcome in sharded.tag_batches(batches):
            errors = outcome.error_map()
            hits = outcome.hit_map()
            for index, record in enumerate(batch):
                stats_collector.observe_record(record)
                if record.corrupted:
                    corrupted += 1
                if index in errors:
                    if dead_letters is None:
                        raise TaggerErrorReplay(errors[index])
                    dead_letters.put(
                        record, REASON_TAGGER_ERROR, errors[index]
                    )
                    continue
                alert = hits.get(index)
                severity_tab.add(record, alert is not None)
                if alert is None:
                    continue
                try:
                    kept: Optional[bool] = stf.offer(alert)
                except OutOfOrderError as exc:
                    if dead_letters is None:
                        raise
                    dead_letters.put(record, REASON_OUT_OF_ORDER, str(exc))
                    kept = None
                if kept is not None:
                    raw_alerts.append(alert)
                    report.record(alert, kept)
                    if kept:
                        filtered_alerts.append(alert)
        shard_stats = sharded.stats

    return PipelineResult(
        system=system,
        stats=stats_collector.finish(),
        raw_alerts=raw_alerts,
        filtered_alerts=filtered_alerts,
        filter_report=report,
        severity_tab=severity_tab,
        corrupted_messages=corrupted,
        generated=generated,
        threshold=threshold,
        dead_letters=dead_letters,
        shard_stats=shard_stats,
    )


def _run_bounded(
    records: Iterable[LogRecord],
    system: str,
    threshold: float,
    generated: Optional[GeneratedLog],
    dead_letters: Optional[DeadLetterQueue],
    checkpointer: Optional[CheckpointManager],
    resume_from: Optional[PipelineCheckpoint],
    reorder_tolerance: float,
    config: BackpressureConfig,
) -> PipelineResult:
    """The bounded-memory form of :func:`run_stream`.

    The stages run behind bounded queues — generate/collect -> ``ingest``
    -> tag -> ``filter`` -> filter/report — driven in ticks: per tick the
    source offers ``arrival_batch`` records, tagging serves
    ``service_batch``, filtering serves ``filter_batch``.  A pausable
    source is slowed by credit-based flow control (nothing lost); an
    unpausable one goes through the shed policy, which degrades in the
    paper-aware order: INFO chatter first, duplicate-category alerts
    next, tagged alerts never — those spill to the dead-letter queue with
    exact accounting.  Sustained overload (the monitor's high-watermark
    flag) optionally degrades the run — coarser stats, larger filter
    ``T`` — instead of growing without bound.

    Checkpoints are taken only at drained-queue barriers, so a resumed
    bounded run replays cleanly; unlike the unbounded path, shedding
    makes resumed results equivalent within shedding tolerance rather
    than byte-identical.
    """
    tagger = Tagger(get_ruleset(system))
    if dead_letters is None:
        # Bounded mode must never lose a tagged alert silently: the spill
        # path needs somewhere accounted to land.
        dead_letters = DeadLetterQueue()
    window = threshold if config.dedup_window is None else config.dedup_window
    policy = get_shed_policy(config.shed_policy, dedup_window=window).bind(tagger)
    accounting = (
        config.accounting if config.accounting is not None else ShedAccounting()
    )
    monitor = (
        config.monitor if config.monitor is not None
        else OverloadMonitor(sustain=config.sustain)
    )
    ingest_q = monitor.attach(BoundedQueue(
        "ingest", config.max_buffer, config.watermarks_for(config.max_buffer)
    ))
    alert_q = monitor.attach(BoundedQueue(
        "filter", config.filter_buffer, config.watermarks_for(config.filter_buffer)
    ))
    gate = CreditGate(ingest_q)

    (stats_collector, stf, report, severity_tab, raw_alerts,
     filtered_alerts, corrupted, consumed) = _restore_or_init(
        system, threshold, resume_from, dead_letters, reorder_tolerance
    )
    source = iter(records)
    if resume_from is not None:
        source = islice(source, consumed, None)
    if checkpointer is not None:
        checkpointer.prime(resume_from)

    def snapshot() -> PipelineCheckpoint:
        return PipelineCheckpoint(
            system=system,
            threshold=threshold,
            records_consumed=consumed,
            stats=stats_collector.snapshot(),
            filter_state=stf.state_dict(),
            report=copy_report(report),
            severity=copy_severity(severity_tab),
            raw_alerts=tuple(raw_alerts),
            filtered_alerts=tuple(filtered_alerts),
            corrupted_messages=corrupted,
            dead_letters=dead_letters.snapshot(),
        )

    degraded_overload = False
    exhausted = False
    while not exhausted or ingest_q or alert_q:
        # -- arrivals: the source offers a batch; credits pace it --------
        if not exhausted:
            want = config.arrival_batch
            if config.source_pausable:
                want = gate.acquire(want)
            arrived = 0
            for _ in range(want):
                try:
                    record = next(source)
                except StopIteration:
                    exhausted = True
                    break
                consumed += 1
                arrived += 1
                if not _valid_record(record):
                    dead_letters.put(record, REASON_INVALID_RECORD)
                    continue
                decision, klass = policy.decide(record, ingest_q.pressure())
                accounting.count_offered(klass)
                if decision == SHED:
                    accounting.count_shed(klass)
                    continue
                if decision == SPILL or not ingest_q.put(record):
                    accounting.count_spilled(klass)
                    dead_letters.put(record, REASON_SHED_OVERLOAD, klass)
            monitor.note_throughput("arrive", arrived)

        # -- tag/stats stage: halts when the filter queue is full, which
        #    is how downstream pressure propagates upstream ---------------
        served = 0
        while served < config.service_batch and ingest_q and not alert_q.full:
            record = ingest_q.get()
            served += 1
            stats_collector.observe_record(record)
            if record.corrupted:
                corrupted += 1
            try:
                alert = tagger.tag(record)
            except Exception as exc:
                dead_letters.put(record, REASON_TAGGER_ERROR, repr(exc))
                continue
            severity_tab.add(record, alert is not None)
            if alert is not None:
                alert_q.put(alert)
        monitor.note_throughput("tag", served)

        # -- filter stage -------------------------------------------------
        drained = 0
        while drained < config.filter_batch and alert_q:
            alert = alert_q.get()
            drained += 1
            try:
                kept = stf.offer(alert)
            except OutOfOrderError as exc:
                dead_letters.put(alert.record, REASON_OUT_OF_ORDER, str(exc))
                continue
            raw_alerts.append(alert)
            report.record(alert, kept)
            if kept:
                filtered_alerts.append(alert)
        monitor.note_throughput("filter", drained)

        # -- overload monitoring and graceful degradation ----------------
        monitor.sample()
        if config.degrade and monitor.sustained_overload and not degraded_overload:
            degraded_overload = True
            stf.threshold = threshold * config.degrade_threshold_factor
            if config.degrade_coarse_stats:
                stats_collector.coarse = True
            monitor.events.append(
                f"degraded mode entered: filter T raised to {stf.threshold:g}s"
                + (", stats coarsened" if config.degrade_coarse_stats else "")
            )
        if checkpointer is not None and not ingest_q and not alert_q:
            checkpointer.maybe(consumed, snapshot)

    return PipelineResult(
        system=system,
        stats=stats_collector.finish(),
        raw_alerts=raw_alerts,
        filtered_alerts=filtered_alerts,
        filter_report=report,
        severity_tab=severity_tab,
        corrupted_messages=corrupted,
        generated=generated,
        threshold=threshold,
        dead_letters=dead_letters,
        overload=OverloadReport.from_parts(
            monitor=monitor, accounting=accounting, gate=gate,
            degraded=degraded_overload,
        ),
    )


def run_system(
    system: str,
    scale: float = 1e-4,
    seed: int = 2007,
    threshold: float = DEFAULT_THRESHOLD,
    incident_scale: float = 1.0,
    faults=None,
    supervised: bool = False,
    restart_budget: int = 3,
    checkpoint_every: int = 2000,
    backpressure: Optional[BackpressureConfig] = None,
    parallel: Optional[ParallelConfig] = None,
    **generator_kwargs,
) -> PipelineResult:
    """Generate one machine's log and run the full pipeline over it.

    Pass ``faults`` (a :class:`~repro.resilience.faults.FaultConfig`) or
    ``supervised=True`` to run under the pipeline supervisor: injected or
    real worker failures are caught, the run restarts from the latest
    checkpoint (at most ``restart_budget`` times), and the result reports
    ``degraded``/dead-letter state instead of raising.

    Pass ``backpressure`` (a :class:`BackpressureConfig`) to run with
    bounded inter-stage queues and priority-aware load shedding; the two
    compose — a supervised run can also be bounded.

    Pass ``parallel`` (a :class:`ParallelConfig`) to shard tagging across
    worker processes with byte-identical output; it does not compose with
    supervision, backpressure, or checkpointing (sharded runs carry their
    own worker-crash retry path).
    """
    if parallel is not None and (faults is not None or supervised):
        raise ValueError(
            "parallel does not compose with the checkpoint-based "
            "supervisor; ShardedTagger retries crashed workers itself"
        )
    if faults is not None or supervised:
        from .resilience.supervisor import PipelineSupervisor

        supervisor = PipelineSupervisor(
            restart_budget=restart_budget, checkpoint_every=checkpoint_every
        )
        return supervisor.run_system(
            system, scale=scale, seed=seed, threshold=threshold,
            incident_scale=incident_scale, faults=faults,
            backpressure=backpressure, **generator_kwargs,
        )
    generator = LogGenerator(
        system, scale=scale, seed=seed, incident_scale=incident_scale,
        **generator_kwargs,
    )
    generated = generator.generate()
    return run_stream(
        generated.records, system, threshold=threshold, generated=generated,
        backpressure=backpressure, parallel=parallel,
    )


def run_all(
    scale: float = 1e-4,
    seed: int = 2007,
    threshold: float = DEFAULT_THRESHOLD,
    faults=None,
    supervised: bool = False,
    restart_budget: int = 3,
    checkpoint_every: int = 2000,
    backpressure: Optional[BackpressureConfig] = None,
    parallel: Optional[ParallelConfig] = None,
    **generator_kwargs,
) -> Dict[str, PipelineResult]:
    """Run the pipeline for all five machines (Table 2's full study).

    With ``faults``/``supervised`` the whole study runs under supervision:
    every system completes — possibly degraded, never raising — and each
    result carries its dead-letter and restart accounting.  With
    ``backpressure``, every system runs bounded; each gets its own queues
    and accounting.  With ``parallel``, every system's tagging is sharded
    across worker processes (each system gets its own pool).
    """
    from .systems.specs import SYSTEMS

    return {
        name: run_system(
            name, scale=scale, seed=seed, threshold=threshold,
            faults=faults, supervised=supervised,
            restart_budget=restart_budget, checkpoint_every=checkpoint_every,
            backpressure=backpressure, parallel=parallel, **generator_kwargs,
        )
        for name in SYSTEMS
    }

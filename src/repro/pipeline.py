"""End-to-end pipeline: generate -> measure -> tag -> filter -> analyze.

This is the library's front door, wiring the substrate and the paper's
contribution together the way Sections 3 and 4 do:

1. generate (or read) a machine's log stream;
2. accumulate Table 2 volume statistics while streaming;
3. tag alerts with the machine's expert ruleset (Section 3.2);
4. filter with the simultaneous spatio-temporal algorithm (Section 3.3);
5. keep everything an analysis needs (raw alerts, filtered alerts, cross
   tabs, ground truth) on one result object.

Example::

    from repro import pipeline
    result = pipeline.run_system("spirit", scale=1e-4, seed=42)
    print(result.summary())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .core.categories import Alert
from .core.filtering import (
    DEFAULT_THRESHOLD,
    FilterReport,
    SpatioTemporalFilter,
)
from .core.rules import get_ruleset
from .core.tagging import Tagger
from .analysis.severity_eval import SeverityCrossTab
from .logio.stats import LogStats, StatsCollector
from .logmodel.record import LogRecord
from .simulation.generator import GeneratedLog, LogGenerator


@dataclass
class PipelineResult:
    """Everything one machine's pipeline run produced."""

    system: str
    stats: LogStats
    raw_alerts: List[Alert]
    filtered_alerts: List[Alert]
    filter_report: FilterReport
    severity_tab: SeverityCrossTab
    corrupted_messages: int
    generated: Optional[GeneratedLog] = None
    threshold: float = DEFAULT_THRESHOLD

    @property
    def message_count(self) -> int:
        return self.stats.messages

    @property
    def raw_alert_count(self) -> int:
        return len(self.raw_alerts)

    @property
    def filtered_alert_count(self) -> int:
        return len(self.filtered_alerts)

    @property
    def observed_categories(self) -> int:
        return len({alert.category for alert in self.raw_alerts})

    def category_counts(self) -> Dict[str, List[int]]:
        """Per-category [raw, filtered] counts (the Table 4 columns)."""
        return dict(self.filter_report.by_category)

    def summary(self) -> str:
        """A Table 2-style one-machine summary."""
        lines = [
            f"system:            {self.system}",
            f"messages:          {self.message_count:,}",
            f"log size:          {self.stats.raw_bytes:,} bytes "
            f"({self.stats.compressed_bytes:,} gzipped)",
            f"span:              {self.stats.days:.1f} days "
            f"({self.stats.rate_bytes_per_second:.1f} bytes/sec)",
            f"alerts (raw):      {self.raw_alert_count:,}",
            f"alerts (filtered): {self.filtered_alert_count:,} "
            f"(T={self.threshold:g}s)",
            f"categories:        {self.observed_categories}",
            f"corrupted:         {self.corrupted_messages:,}",
        ]
        return "\n".join(lines)


def run_stream(
    records: Iterable[LogRecord],
    system: str,
    threshold: float = DEFAULT_THRESHOLD,
    generated: Optional[GeneratedLog] = None,
) -> PipelineResult:
    """Run the measurement/tag/filter pipeline over any record stream.

    Single pass: volume statistics, severity cross-tab, tagging, and
    filtering all happen as the stream flows through, so an arbitrarily
    large log needs constant memory beyond the alert lists.
    """
    tagger = Tagger(get_ruleset(system))
    stats_collector = StatsCollector(system)
    stf = SpatioTemporalFilter(threshold)
    report = FilterReport(threshold=threshold)
    severity_tab = SeverityCrossTab()
    raw_alerts: List[Alert] = []
    filtered_alerts: List[Alert] = []
    corrupted = 0

    for record in stats_collector.observe(records):
        if record.corrupted:
            corrupted += 1
        alert = tagger.tag(record)
        severity_tab.add(record, alert is not None)
        if alert is None:
            continue
        raw_alerts.append(alert)
        kept = stf.offer(alert)
        report.record(alert, kept)
        if kept:
            filtered_alerts.append(alert)

    return PipelineResult(
        system=system,
        stats=stats_collector.finish(),
        raw_alerts=raw_alerts,
        filtered_alerts=filtered_alerts,
        filter_report=report,
        severity_tab=severity_tab,
        corrupted_messages=corrupted,
        generated=generated,
        threshold=threshold,
    )


def run_system(
    system: str,
    scale: float = 1e-4,
    seed: int = 2007,
    threshold: float = DEFAULT_THRESHOLD,
    incident_scale: float = 1.0,
    **generator_kwargs,
) -> PipelineResult:
    """Generate one machine's log and run the full pipeline over it."""
    generator = LogGenerator(
        system, scale=scale, seed=seed, incident_scale=incident_scale,
        **generator_kwargs,
    )
    generated = generator.generate()
    return run_stream(
        generated.records, system, threshold=threshold, generated=generated
    )


def run_all(
    scale: float = 1e-4,
    seed: int = 2007,
    threshold: float = DEFAULT_THRESHOLD,
    **generator_kwargs,
) -> Dict[str, PipelineResult]:
    """Run the pipeline for all five machines (Table 2's full study)."""
    from .systems.specs import SYSTEMS

    return {
        name: run_system(
            name, scale=scale, seed=seed, threshold=threshold,
            **generator_kwargs,
        )
        for name in SYSTEMS
    }

"""Deprecated pipeline facade — use :mod:`repro.api`.

This module was the library's historical front door.  The api_redesign
PR moved the implementation to :mod:`repro.api` (which also carries the
new stable surface: :func:`~repro.api.run`, :func:`~repro.api.tag_lines`,
:func:`~repro.api.iter_alerts`, :func:`~repro.api.serve`).  The entry
points below keep working but warn: update imports from
``repro.pipeline`` to ``repro.api``.

Constants and :class:`~repro.engine.result.PipelineResult` re-export
silently — they are values, not entry points, and checkpoint payloads or
type annotations referencing them should not warn on import.
"""

from __future__ import annotations

import warnings

from . import api as _api
from .api import (  # noqa: F401  (silent re-exports)
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_REORDER_TOLERANCE,
    DEFAULT_RESTART_BUDGET,
    DEFAULT_THRESHOLD,
    PipelineResult,
)

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_REORDER_TOLERANCE",
    "DEFAULT_RESTART_BUDGET",
    "DEFAULT_THRESHOLD",
    "PipelineResult",
    "run_all",
    "run_stream",
    "run_system",
]

#: Entry points that warn on access; everything else re-exports silently.
_DEPRECATED = frozenset({"run_stream", "run_system", "run_all"})


def __getattr__(name: str):
    if name in _DEPRECATED:
        warnings.warn(
            f"repro.pipeline.{name} is deprecated; "
            f"use repro.api.{name} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)

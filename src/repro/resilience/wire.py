"""The durable on-disk format: CRC32-framed records and file headers.

Everything the durability layer persists — write-ahead journal entries
and checkpoint generations — goes through one framing::

    +----------+----------+====================+
    | crc32    | length   | payload            |
    | 4 bytes  | 4 bytes  | ``length`` bytes   |
    +----------+----------+====================+

Both header fields are little-endian unsigned 32-bit; the CRC covers the
payload only.  A file is a fixed 6-byte header (4-byte magic + 2-byte
format version) followed by zero or more frames.  The framing makes
every corruption mode *detectable*: a torn tail (the process died
mid-write) shows up as a short or CRC-failing final frame, and bit-rot
anywhere shows up as a CRC mismatch.  Policy — truncate the tail,
quarantine the file, fall back a generation — lives in
:mod:`repro.resilience.durability`; this module only encodes, decodes,
and reports exactly where the bytes stopped being trustworthy.

Checkpoint payloads are pickled :class:`PipelineCheckpoint` objects with
one transformation: the live zlib compressor inside ``StatsSnapshot``
cannot be pickled, so the durable form stores ``compressor=None`` and
relies on the snapshot's ``fed_bytes`` watermark —
:meth:`repro.logio.stats.StatsCollector.from_snapshot` rebuilds the
compressor state by replaying the resumed stream's prefix (see
``replay_record``), which deflate's chunking-invariant output makes
byte-exact.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from ..logio.stats import StatsSnapshot
from .checkpoint import PipelineCheckpoint

#: File magics: the journal and the checkpoint store refuse each other's
#: files (and anything else) instead of misparsing them.
WAL_MAGIC = b"RWAL"
CHECKPOINT_MAGIC = b"RCKP"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sH")  # magic, version
_FRAME = struct.Struct("<II")  # crc32(payload), len(payload)

#: Refuse absurd frame lengths outright: a length field this large is
#: corruption, not data, and honoring it would make the scanner try to
#: slurp garbage gigabytes before the CRC check could reject them.
MAX_FRAME_PAYLOAD = 256 * 1024 * 1024

HEADER_SIZE = _HEADER.size
FRAME_HEADER_SIZE = _FRAME.size


class WireError(ValueError):
    """A file or frame that cannot be decoded (wrong magic, bad version,
    unpicklable payload)."""


def file_header(magic: bytes) -> bytes:
    """The 6-byte header that starts every durable file."""
    return _HEADER.pack(magic, FORMAT_VERSION)


def check_header(data: bytes, magic: bytes) -> None:
    """Validate a file's header; raise :class:`WireError` otherwise."""
    if len(data) < HEADER_SIZE:
        raise WireError(f"file shorter than its {HEADER_SIZE}-byte header")
    found_magic, version = _HEADER.unpack_from(data)
    if found_magic != magic:
        raise WireError(f"bad magic {found_magic!r} (expected {magic!r})")
    if version != FORMAT_VERSION:
        raise WireError(f"unsupported format version {version}")


def encode_frame(payload: bytes) -> bytes:
    """One CRC32-protected frame around ``payload``."""
    return _FRAME.pack(zlib.crc32(payload) & 0xFFFFFFFF, len(payload)) + payload


def scan_frames(
    data: bytes, offset: int = HEADER_SIZE
) -> Tuple[List[bytes], int, Optional[str]]:
    """Walk frames from ``offset``; stop at the first untrustworthy byte.

    Returns ``(payloads, clean_end, error)``: every payload whose CRC
    verified, the byte offset just past the last good frame, and ``None``
    if the scan consumed the file exactly — otherwise a human-readable
    reason ("torn frame header", "torn payload", "crc mismatch", ...)
    for why the bytes from ``clean_end`` onward cannot be trusted.  The
    caller decides whether that means a torn tail to truncate or a
    corrupt file to quarantine.
    """
    payloads: List[bytes] = []
    end = len(data)
    while offset < end:
        if end - offset < FRAME_HEADER_SIZE:
            return payloads, offset, (
                f"torn frame header ({end - offset} bytes at offset {offset})"
            )
        crc, length = _FRAME.unpack_from(data, offset)
        if length > MAX_FRAME_PAYLOAD:
            return payloads, offset, (
                f"implausible frame length {length} at offset {offset}"
            )
        start = offset + FRAME_HEADER_SIZE
        if end - start < length:
            return payloads, offset, (
                f"torn payload ({end - start} of {length} bytes "
                f"at offset {offset})"
            )
        payload = data[start:start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return payloads, offset, f"crc mismatch at offset {offset}"
        payloads.append(payload)
        offset = start + length
    return payloads, offset, None


# -- journal entries ---------------------------------------------------------


def encode_entry(kind: str, obj: Any) -> bytes:
    """One journal entry: a ``(kind, obj)`` pair, pickled then framed."""
    return encode_frame(
        pickle.dumps((kind, obj), protocol=pickle.HIGHEST_PROTOCOL)
    )


def decode_entry(payload: bytes) -> Tuple[str, Any]:
    try:
        kind, obj = pickle.loads(payload)
    except Exception as exc:
        raise WireError(f"undecodable journal entry: {exc!r}") from exc
    if not isinstance(kind, str):
        raise WireError(f"journal entry kind is {type(kind).__name__}, "
                        "not str")
    return kind, obj


# -- checkpoint payloads -----------------------------------------------------


def durable_checkpoint(checkpoint: PipelineCheckpoint) -> PipelineCheckpoint:
    """The persistable twin of a checkpoint: identical except the live
    zlib compressor is dropped (it cannot cross a process boundary); the
    ``fed_bytes`` watermark it leaves behind is what resume uses to
    rebuild the compressor by prefix replay."""
    stats = checkpoint.stats
    if stats.compressor is None:
        return checkpoint
    return replace(
        checkpoint,
        stats=StatsSnapshot(
            stats=replace(stats.stats),
            compressor=None,
            flushed=stats.flushed,
            fed_bytes=stats.fed_bytes,
        ),
    )


def encode_checkpoint(
    checkpoint: PipelineCheckpoint, meta: Optional[Dict[str, Any]] = None
) -> bytes:
    """Frame a checkpoint (plus a small metadata dict) for disk."""
    return encode_frame(pickle.dumps(
        {"meta": dict(meta or {}), "checkpoint": durable_checkpoint(checkpoint)},
        protocol=pickle.HIGHEST_PROTOCOL,
    ))


def decode_checkpoint(
    payload: bytes,
) -> Tuple[PipelineCheckpoint, Dict[str, Any]]:
    try:
        wrapper = pickle.loads(payload)
        checkpoint = wrapper["checkpoint"]
        meta = wrapper["meta"]
    except Exception as exc:
        raise WireError(f"undecodable checkpoint payload: {exc!r}") from exc
    if not isinstance(checkpoint, PipelineCheckpoint):
        raise WireError(
            f"checkpoint payload holds {type(checkpoint).__name__}, "
            "not PipelineCheckpoint"
        )
    return checkpoint, dict(meta)


# -- manifests ---------------------------------------------------------------


def encode_manifest(fields: Dict[str, Any]) -> bytes:
    """A whole manifest file: header + one framed, pickled dict."""
    return file_header(CHECKPOINT_MAGIC) + encode_frame(
        pickle.dumps(dict(fields), protocol=pickle.HIGHEST_PROTOCOL)
    )


def decode_manifest(data: bytes) -> Dict[str, Any]:
    check_header(data, CHECKPOINT_MAGIC)
    payloads, _end, error = scan_frames(data)
    if error is not None or len(payloads) != 1:
        raise WireError(error or f"manifest holds {len(payloads)} frames")
    try:
        fields = pickle.loads(payloads[0])
    except Exception as exc:
        raise WireError(f"undecodable manifest: {exc!r}") from exc
    if not isinstance(fields, dict):
        raise WireError("manifest payload is not a dict")
    return fields

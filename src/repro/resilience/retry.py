"""Retry policies, circuit breaking, and a retrying transport wrapper.

The collection paths of Section 3.1 fail transiently: a syslog relay
stalls, a TCP connection to the SMW resets, a poll times out.  Production
collectors retry with exponential backoff plus jitter and stop hammering a
dead channel with a circuit breaker (the standard pattern in log-shipping
daemons).  This module provides both, plus :class:`ResilientChannel`, a
wrapper that gives any transport (:class:`~repro.simulation.transport.
UdpSyslogChannel`, :class:`~repro.simulation.transport.TcpRasChannel`, ...)
per-record retry semantics.

Time here is *simulated* time: the breaker's clock is the record
timestamps flowing through it, and backoff delays are accumulated rather
than slept, so tests and simulations run at full speed while preserving
the temporal logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..logmodel.record import LogRecord
from .deadletter import (
    DeadLetterQueue,
    REASON_CIRCUIT_OPEN,
    REASON_RETRIES_EXHAUSTED,
)
from .faults import FaultError, TransientFault


class RetryError(RuntimeError):
    """All retry attempts failed; carries the last underlying error."""

    def __init__(self, attempts: int, last_error: BaseException):
        super().__init__(
            f"gave up after {attempts} attempts: "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with optional jitter.

    Delay before retry ``k`` (0-based) is
    ``min(max_delay, base_delay * multiplier**k)``, scaled by a uniform
    jitter factor in ``[1 - jitter, 1]`` when an rng is supplied — the
    jitter decorrelates retry storms across channels.
    """

    max_attempts: int = 4
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if rng is not None and self.jitter > 0:
            raw *= 1.0 - self.jitter * float(rng.random())
        return raw


def with_retry(
    fn: Callable[[], object],
    policy: RetryPolicy,
    rng: Optional[np.random.Generator] = None,
    retryable: Tuple[type, ...] = (FaultError,),
    on_backoff: Optional[Callable[[int, float], None]] = None,
):
    """Call ``fn`` under ``policy``, retrying ``retryable`` failures.

    ``on_backoff(attempt, delay)`` is invoked before each retry (the
    simulation's stand-in for sleeping).  Raises :class:`RetryError` when
    the budget is exhausted; non-retryable exceptions propagate untouched.
    """
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retryable as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.delay(attempt, rng)
            if on_backoff is not None:
                on_backoff(attempt, delay)
    assert last is not None
    raise RetryError(policy.max_attempts, last)


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-channel circuit breaker over simulated time.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` rejects until ``reset_timeout`` simulated seconds
    have passed, then one probe is allowed (half-open).  A probe success
    closes the circuit; a probe failure re-opens it.
    """

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 30.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.times_opened = 0
        self.rejected = 0

    def allow(self, now: float) -> bool:
        """May a call proceed at simulated time ``now``?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self.opened_at is not None
            if now - self.opened_at >= self.reset_timeout:
                self.state = BreakerState.HALF_OPEN
                return True
            self.rejected += 1
            return False
        return True  # HALF_OPEN: the probe is in flight

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state is not BreakerState.OPEN:
                self.times_opened += 1
            self.state = BreakerState.OPEN
            self.opened_at = now


class ResilientChannel:
    """Per-record retry + circuit breaking around any transport channel.

    Each record is transmitted through the wrapped channel individually;
    transient send failures (``FaultError``) are retried under ``policy``.
    A record whose retries are exhausted is quarantined (when a dead-letter
    queue is attached) and counted, never raised — and the breaker, fed by
    the record timestamps as its clock, stops offering records to a
    channel that keeps failing until ``reset_timeout`` of stream time has
    passed.

    Note that a *drop* by a lossy channel (UDP under contention) is normal
    channel behavior, not a failure: it is not retried — retrying would
    falsify the loss model.
    """

    def __init__(
        self,
        channel,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        faults: Optional[TransientFault] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        seed: int = 0,
    ):
        self.channel = channel
        self.policy = policy or RetryPolicy()
        self.breaker = breaker
        self.faults = faults
        self.dead_letters = dead_letters
        self._rng = np.random.default_rng(seed)
        self.delivered = 0
        self.failed = 0
        self.rejected = 0
        self.retries = 0
        self.total_backoff = 0.0

    def _send(self, record: LogRecord) -> List[LogRecord]:
        if self.faults is not None:
            self.faults.check(record)
        return list(self.channel.transmit([record]))

    def _on_backoff(self, attempt: int, delay: float) -> None:
        self.retries += 1
        self.total_backoff += delay

    def transmit(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        for record in records:
            now = record.timestamp
            if self.breaker is not None and not self.breaker.allow(now):
                self.rejected += 1
                if self.dead_letters is not None:
                    self.dead_letters.put(record, REASON_CIRCUIT_OPEN)
                continue
            try:
                out = with_retry(
                    lambda: self._send(record),
                    self.policy,
                    rng=self._rng,
                    on_backoff=self._on_backoff,
                )
            except RetryError as exc:
                self.failed += 1
                if self.breaker is not None:
                    self.breaker.record_failure(now)
                if self.dead_letters is not None:
                    self.dead_letters.put(
                        record, REASON_RETRIES_EXHAUSTED, str(exc)
                    )
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            for delivered in out:
                self.delivered += 1
                yield delivered

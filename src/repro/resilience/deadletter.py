"""Bounded dead-letter quarantine for records the pipeline cannot process.

The paper's logs are full of records that defeat naive parsers — truncated
and spliced lines, garbled source fields, bad timestamps (Section 3.2.1).
A production collection path does not crash on these and does not silently
drop them either: it *quarantines* them with a reason, bounded in memory,
so an operator can audit what the pipeline refused (the pattern of the
dead-letter queues in production log stacks; cf. Park et al., "Big Data
Meets HPC Log Analytics").

:class:`DeadLetterQueue` keeps the most recent ``capacity`` quarantined
records plus exact counters per reason; overflow evicts the oldest letter
but never loses the counts.  Snapshots are cheap and immutable so the
checkpoint subsystem can include quarantine state in a resumable snapshot.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional, Tuple

from ..logmodel.record import LogRecord

#: Reasons used by the built-in pipeline stages (free-form strings are
#: allowed; these are the conventional ones).
REASON_INVALID_RECORD = "invalid-record"
REASON_TAGGER_ERROR = "tagger-error"
REASON_OUT_OF_ORDER = "out-of-order"
REASON_CIRCUIT_OPEN = "circuit-open"
REASON_RETRIES_EXHAUSTED = "retries-exhausted"
REASON_SHED_OVERLOAD = "shed-overload"
#: Reasons used by the multi-tenant ingest service (:mod:`repro.service`).
REASON_WORKER_CRASH = "worker-crash"
REASON_TENANT_QUARANTINED = "tenant-quarantined"
REASON_UNROUTABLE = "unroutable"


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined record with the reason it was refused."""

    record: LogRecord
    reason: str
    detail: str = ""


@dataclass(frozen=True)
class DeadLetterSnapshot:
    """Immutable state of a queue, for checkpointing."""

    letters: Tuple[DeadLetter, ...]
    by_reason: Tuple[Tuple[str, int], ...]
    quarantined: int
    evicted: int
    evicted_counts: Tuple[Tuple[str, int], ...] = ()


class DeadLetterQueue:
    """A bounded quarantine: newest ``capacity`` letters, exact counters.

    Safe for concurrent :meth:`put`/:meth:`snapshot` from multiple threads
    (and, trivially, from interleaved asyncio tasks): the ingest service
    multiplexes per-run objects like this one across many tenant tasks,
    and the conservation accounting is only meaningful if the counters
    stay exact under that interleaving.

    Parameters
    ----------
    capacity:
        Maximum letters retained.  Counters (:attr:`quarantined`,
        :attr:`by_reason`) are exact regardless of eviction.
    """

    def __init__(self, capacity: int = 1000):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.quarantined = 0
        self.evicted = 0
        self.by_reason: Dict[str, int] = {}
        self.evicted_counts: Dict[str, int] = {}
        self._letters: Deque[DeadLetter] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def put(self, record: LogRecord, reason: str, detail: str = "") -> None:
        """Quarantine one record under ``reason``."""
        with self._lock:
            self.quarantined += 1
            self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
            if len(self._letters) == self.capacity:
                evicted = self._letters[0]
                self.evicted += 1
                self.evicted_counts[evicted.reason] = (
                    self.evicted_counts.get(evicted.reason, 0) + 1
                )
            self._letters.append(
                DeadLetter(record=record, reason=reason, detail=detail)
            )

    def __len__(self) -> int:
        return len(self._letters)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self._letters)

    def letters_for(self, reason: str) -> Tuple[DeadLetter, ...]:
        """The retained letters quarantined under one reason."""
        return tuple(letter for letter in self._letters if letter.reason == reason)

    def snapshot(self) -> DeadLetterSnapshot:
        """An immutable copy of the current state."""
        with self._lock:
            return DeadLetterSnapshot(
                letters=tuple(self._letters),
                by_reason=tuple(sorted(self.by_reason.items())),
                quarantined=self.quarantined,
                evicted=self.evicted,
                evicted_counts=tuple(sorted(self.evicted_counts.items())),
            )

    def restore(self, snapshot: Optional[DeadLetterSnapshot]) -> None:
        """Reset this queue to a previously taken snapshot.

        ``None`` resets to empty — the state before any snapshot existed.
        """
        with self._lock:
            self._letters.clear()
            self.by_reason = {}
            self.evicted_counts = {}
            if snapshot is None:
                self.quarantined = 0
                self.evicted = 0
                return
            self._letters.extend(snapshot.letters)
            self.by_reason = dict(snapshot.by_reason)
            self.quarantined = snapshot.quarantined
            self.evicted = snapshot.evicted
            self.evicted_counts = dict(snapshot.evicted_counts)

    def summary(self) -> str:
        """One line: total plus per-reason counts, stable order."""
        if not self.quarantined:
            return "0 quarantined"
        reasons = ", ".join(
            f"{reason}: {count}" for reason, count in sorted(self.by_reason.items())
        )
        text = f"{self.quarantined} quarantined ({reasons})"
        if self.evicted:
            evictions = ", ".join(
                f"{reason}: {count}"
                for reason, count in sorted(self.evicted_counts.items())
            )
            text += f"; {self.evicted} letters evicted ({evictions})"
        return text

"""Bounded inter-stage queues, credit-based flow control, overload metrics.

The paper's collection paths lose data precisely when the system is most
interesting: bursty failure cascades overwhelm UDP syslog and the central
collectors (Sections 3.1-3.2), and what gets lost is whatever the
transport happened to drop — no accounting, no priority.  Production log
pipelines instead bound every buffer and *choose* what to lose (Park et
al., "Big Data Meets HPC Log Analytics").  This module supplies the
mechanics of that choice:

* :class:`BoundedQueue` — a bounded inter-stage buffer with high/low
  watermarks and hysteresis: pressure rises to ``ELEVATED`` when
  occupancy crosses the high watermark and does not relax until it drains
  below the low watermark, so shedding does not flap at the boundary;
* :class:`CreditGate` — credit-based flow control: an upstream producer
  may push only as many records as the downstream queue has free space
  below its high watermark, which is how a *pausable* source (our
  deterministic generators, a file reader) is slowed instead of shed;
* :func:`bounded_buffer` — a bounded read-ahead buffer between a producer
  and a consumer, with an optional shed-policy hook for *unpausable*
  sources (a UDP fan-in cannot be slowed, only shed);
* :class:`OverloadMonitor` — samples queue occupancy, shed counts, and
  per-stage throughput, and raises the ``sustained_overload`` flag the
  pipeline and supervisor use to enter degraded mode instead of OOM;
* :class:`BackpressureConfig` — one object describing all of the above,
  accepted by :func:`repro.api.run_stream` and the supervisor.

Everything here is deliberately free of imports from the rest of the
package (records, policies, and dead-letter queues are duck-typed), so
any layer — reader, transport, collector, pipeline — can use it without
import cycles.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional, Tuple, Union

#: Shed-decision verbs shared with :mod:`repro.resilience.shedding`.
#: Plain strings so policy objects stay duck-typed.
KEEP = "keep"
SHED = "shed"
SPILL = "spill"


class PressureLevel(enum.IntEnum):
    """Queue pressure, ordered so ``max()`` over queues is meaningful."""

    NORMAL = 0
    ELEVATED = 1   # above the high watermark (with hysteresis)
    CRITICAL = 2   # at capacity: nothing more fits


@dataclass(frozen=True)
class Watermarks:
    """High/low occupancy thresholds for a bounded queue.

    Crossing ``high`` raises pressure; pressure does not relax until
    occupancy drains back to ``low`` (hysteresis), so a queue hovering at
    the boundary does not toggle shedding on and off per record.
    """

    high: int
    low: int

    def __post_init__(self) -> None:
        if self.low < 0:
            raise ValueError("low watermark must be non-negative")
        if self.high <= self.low:
            raise ValueError("high watermark must exceed low watermark")

    @classmethod
    def for_capacity(
        cls, capacity: int, high_fraction: float = 0.8, low_fraction: float = 0.5
    ) -> "Watermarks":
        """Watermarks at the conventional fractions of ``capacity``."""
        high = max(1, min(capacity, int(capacity * high_fraction)))
        low = max(0, min(high - 1, int(capacity * low_fraction)))
        return cls(high=high, low=low)


class BoundedQueue:
    """A bounded FIFO between two pipeline stages, with pressure state.

    Unlike ``deque(maxlen=...)`` — which silently evicts — a full
    :class:`BoundedQueue` *refuses* (:meth:`put` returns ``False``) so the
    caller must decide what to lose.  Occupancy, peak occupancy, and
    throughput counters are tracked for the overload monitor.
    """

    def __init__(
        self,
        name: str,
        capacity: int,
        watermarks: Optional[Watermarks] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        self.watermarks = watermarks or Watermarks.for_capacity(capacity)
        if self.watermarks.high > capacity:
            raise ValueError("high watermark cannot exceed capacity")
        self._items: Deque[Any] = deque()
        self._elevated = False
        self.peak_occupancy = 0
        self.total_in = 0
        self.total_out = 0
        self.refused = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def credits(self) -> int:
        """Free space below the high watermark — what a credit-controlled
        upstream may push before backpressure engages."""
        return max(0, self.watermarks.high - len(self._items))

    def put(self, item: Any) -> bool:
        """Append ``item``; ``False`` (and no append) when full."""
        if len(self._items) >= self.capacity:
            self.refused += 1
            return False
        self._items.append(item)
        self.total_in += 1
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)
        return True

    def get(self) -> Any:
        """Pop the oldest item; raises ``IndexError`` when empty."""
        item = self._items.popleft()
        self.total_out += 1
        return item

    def take(self, n: int) -> List[Any]:
        """Pop up to ``n`` oldest items as a list (a service-stage drain
        that hands one tick's worth to a batch consumer)."""
        out: List[Any] = []
        while len(out) < n and self._items:
            out.append(self.get())
        return out

    def pressure(self) -> PressureLevel:
        """Current pressure, with high/low hysteresis."""
        n = len(self._items)
        if n >= self.watermarks.high:
            self._elevated = True
        elif n <= self.watermarks.low:
            self._elevated = False
        if n >= self.capacity:
            return PressureLevel.CRITICAL
        return PressureLevel.ELEVATED if self._elevated else PressureLevel.NORMAL


class CreditGate:
    """Credit-based flow control over one downstream queue.

    The producer asks for ``n`` slots; the gate grants at most the
    queue's free space below its high watermark and accounts for the
    difference — ``withheld`` is exactly how much the upstream generator
    was slowed by backpressure.
    """

    def __init__(self, queue: BoundedQueue):
        self.queue = queue
        self.requested = 0
        self.granted = 0
        self.withheld = 0

    def acquire(self, n: int) -> int:
        """Grant up to ``n`` credits; returns the number granted."""
        self.requested += n
        grant = min(n, self.queue.credits())
        self.granted += grant
        self.withheld += n - grant
        return grant


class OverloadMonitor:
    """Samples queue occupancy and raises the sustained-overload flag.

    One monitor can outlive the queues it watches (the supervisor keeps a
    single monitor across restart attempts): :meth:`attach` replaces a
    same-named queue but peaks persist, so the report covers the whole
    supervised run.
    """

    def __init__(self, sustain: int = 8):
        if sustain < 1:
            raise ValueError("sustain must be at least 1")
        self.sustain = sustain
        self._queues: Dict[str, BoundedQueue] = {}
        self.peak_by_queue: Dict[str, int] = {}
        self.capacity_by_queue: Dict[str, int] = {}
        self.stage_throughput: Dict[str, int] = {}
        self.samples = 0
        self.overloaded_samples = 0
        self.sustained_overload = False
        self.events: List[str] = []
        self._consecutive = 0

    def attach(self, queue: BoundedQueue) -> BoundedQueue:
        self._queues[queue.name] = queue
        self.peak_by_queue.setdefault(queue.name, 0)
        self.capacity_by_queue[queue.name] = queue.capacity
        return queue

    def note_throughput(self, stage: str, count: int) -> None:
        if count:
            self.stage_throughput[stage] = (
                self.stage_throughput.get(stage, 0) + count
            )

    def sample(self) -> PressureLevel:
        """Record one observation of every attached queue; returns the
        worst pressure seen.  ``sustain`` consecutive non-NORMAL samples
        latch :attr:`sustained_overload`."""
        self.samples += 1
        level = PressureLevel.NORMAL
        for name, queue in self._queues.items():
            # The queue's own peak is exact (tracked per put); sampling
            # len() here would miss intra-tick maxima.
            if queue.peak_occupancy > self.peak_by_queue[name]:
                self.peak_by_queue[name] = queue.peak_occupancy
            queue_level = queue.pressure()
            if queue_level > level:
                level = queue_level
        if level is not PressureLevel.NORMAL:
            self.overloaded_samples += 1
            self._consecutive += 1
            if not self.sustained_overload and self._consecutive >= self.sustain:
                self.sustained_overload = True
                self.events.append(
                    f"sustained overload: {self._consecutive} consecutive "
                    f"samples above the high watermark (sample {self.samples})"
                )
        else:
            self._consecutive = 0
        return level


@dataclass
class OverloadReport:
    """Everything a run's overload handling did, for ``summary()``.

    ``shed_by_class``/``spilled_by_class`` are exact: every record the
    bounded pipeline declined to process appears here (sheds) or in the
    dead-letter queue (spills) — nothing is lost without a count.
    """

    queue_peaks: Dict[str, int] = field(default_factory=dict)
    queue_capacities: Dict[str, int] = field(default_factory=dict)
    samples: int = 0
    overloaded_samples: int = 0
    sustained_overload: bool = False
    degraded: bool = False
    offered_by_class: Dict[str, int] = field(default_factory=dict)
    shed_by_class: Dict[str, int] = field(default_factory=dict)
    spilled_by_class: Dict[str, int] = field(default_factory=dict)
    stage_throughput: Dict[str, int] = field(default_factory=dict)
    credits_requested: int = 0
    credits_withheld: int = 0
    events: Tuple[str, ...] = ()

    @property
    def total_shed(self) -> int:
        return sum(self.shed_by_class.values())

    @property
    def total_spilled(self) -> int:
        return sum(self.spilled_by_class.values())

    @classmethod
    def from_parts(
        cls,
        monitor: Optional[OverloadMonitor] = None,
        accounting: Optional[Any] = None,
        gate: Optional[CreditGate] = None,
        degraded: bool = False,
    ) -> "OverloadReport":
        """Assemble a report from whichever parts a caller holds.

        ``accounting`` is a :class:`repro.resilience.shedding.ShedAccounting`
        (duck-typed: ``offered``/``shed``/``spilled`` count dicts).
        """
        report = cls(degraded=degraded)
        if monitor is not None:
            report.queue_peaks = dict(monitor.peak_by_queue)
            report.queue_capacities = dict(monitor.capacity_by_queue)
            report.samples = monitor.samples
            report.overloaded_samples = monitor.overloaded_samples
            report.sustained_overload = monitor.sustained_overload
            report.stage_throughput = dict(monitor.stage_throughput)
            report.events = tuple(monitor.events)
        if accounting is not None:
            report.offered_by_class = dict(accounting.offered)
            report.shed_by_class = dict(accounting.shed)
            report.spilled_by_class = dict(accounting.spilled)
        if gate is not None:
            report.credits_requested = gate.requested
            report.credits_withheld = gate.withheld
        return report

    def summary_lines(self) -> List[str]:
        """Lines in the style of :meth:`PipelineResult.summary`."""
        peaks = ", ".join(
            f"{name} {self.queue_peaks.get(name, 0)}/{cap}"
            for name, cap in sorted(self.queue_capacities.items())
        )
        lines = [f"queues (peak):     {peaks or 'none attached'}"]
        if self.total_shed:
            by_class = ", ".join(
                f"{klass}: {count:,}"
                for klass, count in sorted(self.shed_by_class.items())
            )
            lines.append(f"shed:              {self.total_shed:,} ({by_class})")
        if self.total_spilled:
            lines.append(
                f"spilled:           {self.total_spilled:,} "
                "(to dead-letter; tagged alerts are never silently dropped)"
            )
        if self.credits_withheld:
            lines.append(
                f"backpressure:      {self.credits_withheld:,} of "
                f"{self.credits_requested:,} source credits withheld"
            )
        if self.samples:
            lines.append(
                f"overload samples:  {self.overloaded_samples}/{self.samples}"
                + (" (sustained)" if self.sustained_overload else "")
            )
        if self.degraded:
            lines.append(
                "degraded (load):   yes — coarser stats, larger filter T"
            )
        return lines


@dataclass
class BackpressureConfig:
    """Configuration for a bounded, load-shedding pipeline run.

    ``max_buffer`` bounds the generate/collect -> tag queue and
    ``filter_buffer`` the tag -> filter queue.  Per tick of the pump, the
    source offers ``arrival_batch`` records, the tag stage serves
    ``service_batch``, and the filter serves ``filter_batch`` — a burst is
    simply an ``arrival_batch`` larger than the service rate.  With a
    ``source_pausable`` source, credit-based flow control slows arrivals
    instead (nothing is shed); an unpausable source (UDP fan-in) engages
    the shed policy.

    ``monitor`` and ``accounting`` are normally created per run; the
    supervisor injects shared instances so overload accounting survives
    restarts.
    """

    max_buffer: int = 1024
    filter_buffer: int = 256
    high_fraction: float = 0.8
    low_fraction: float = 0.5
    arrival_batch: int = 64
    service_batch: int = 64
    filter_batch: int = 64
    source_pausable: bool = True
    shed_policy: Union[str, Any] = "priority"
    dedup_window: Optional[float] = None
    degrade: bool = False
    degrade_threshold_factor: float = 4.0
    degrade_coarse_stats: bool = True
    sustain: int = 8
    monitor: Optional[OverloadMonitor] = field(default=None, compare=False)
    accounting: Optional[Any] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for name in ("max_buffer", "filter_buffer", "arrival_batch",
                     "service_batch", "filter_batch", "sustain"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        if not 0.0 < self.low_fraction < self.high_fraction <= 1.0:
            raise ValueError(
                "need 0 < low_fraction < high_fraction <= 1, got "
                f"{self.low_fraction}/{self.high_fraction}"
            )
        if self.degrade_threshold_factor < 1.0:
            raise ValueError("degrade_threshold_factor must be >= 1")

    @classmethod
    def burst(
        cls, factor: float = 10.0, service_batch: int = 32, **kwargs
    ) -> "BackpressureConfig":
        """A burst workload: arrivals outpace service ``factor``-fold and
        the source cannot be paused — the Spirit-storm shape that forces
        the shed policy to choose what to lose."""
        if factor < 1.0:
            raise ValueError("burst factor must be >= 1")
        kwargs.setdefault("arrival_batch", max(1, round(service_batch * factor)))
        kwargs.setdefault("filter_batch", service_batch)
        return cls(
            service_batch=service_batch, source_pausable=False, **kwargs
        )

    def watermarks_for(self, capacity: int) -> Watermarks:
        return Watermarks.for_capacity(
            capacity, self.high_fraction, self.low_fraction
        )

    def with_runtime(
        self, monitor: OverloadMonitor, accounting: Any
    ) -> "BackpressureConfig":
        """A copy bound to shared runtime state (supervisor restarts)."""
        return replace(self, monitor=monitor, accounting=accounting)


def bounded_buffer(
    records: Iterable[Any],
    queue: BoundedQueue,
    chunk: int = 64,
    pausable: bool = True,
    policy: Optional[Any] = None,
    accounting: Optional[Any] = None,
    dead_letters: Optional[Any] = None,
    spill_reason: str = "shed-overload",
) -> Iterator[Any]:
    """Bounded, chunked read-ahead between a producer and a consumer.

    Pulls up to ``chunk`` records per refill into ``queue`` and yields
    from its front, so the consumer sees the same stream while upstream
    read-ahead stays bounded by the queue's capacity.

    ``pausable`` sources are credit-controlled: a refill never pulls past
    the high watermark, so nothing is ever refused.  Unpausable sources
    deliver the full ``chunk`` regardless (packets arrive whether the
    buffer has room or not); each arriving record is then put to
    ``policy.decide(record, pressure)`` — sheds are counted in
    ``accounting``, spills go to ``dead_letters`` under ``spill_reason``,
    and a refused ``keep`` (queue truly full, no policy room) spills too,
    so loss is *always* accounted.
    """
    if chunk < 1:
        raise ValueError("chunk must be at least 1")
    source = iter(records)
    exhausted = False
    while True:
        # Refill in chunk-sized arrival bursts once the buffer drains to
        # its low watermark (classic double-buffered read-ahead cadence).
        if not exhausted and len(queue) <= queue.watermarks.low:
            want = min(chunk, queue.credits()) if pausable else chunk
            for _ in range(want):
                try:
                    record = next(source)
                except StopIteration:
                    exhausted = True
                    break
                if policy is None:
                    if not queue.put(record):
                        # No policy to consult: spill, never silently drop.
                        if accounting is not None:
                            accounting.count_spilled("overflow")
                        if dead_letters is not None:
                            dead_letters.put(record, spill_reason, "overflow")
                    continue
                decision, klass = policy.decide(record, queue.pressure())
                if accounting is not None:
                    accounting.count_offered(klass)
                if decision == SHED:
                    if accounting is not None:
                        accounting.count_shed(klass)
                    continue
                if decision == SPILL or not queue.put(record):
                    if accounting is not None:
                        accounting.count_spilled(klass)
                    if dead_letters is not None:
                        dead_letters.put(record, spill_reason, klass)
        if queue:
            yield queue.get()
        elif exhausted:
            return
        # else: everything pulled this round was shed; refill again.

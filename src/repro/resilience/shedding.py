"""Priority-aware load shedding: choose what to lose, and account for it.

The paper's transports degrade *arbitrarily*: UDP syslog drops whatever
packets hit contention (Section 3.1), so the burst that matters most is
exactly what goes missing.  A shedding policy inverts that: when a
bounded buffer comes under pressure, records are dropped in a deliberate,
paper-aware priority order —

1. **non-alert INFO chatter** first: the 99%+ of messages no expert rule
   tags (Liberty: 2,452 alerts in 265 M messages) are the cheapest loss;
2. **duplicate-category alerts** next: an alert whose category was
   already reported within the filter window is exactly what the
   spatio-temporal filter (Section 3.3) would suppress anyway;
3. **tagged Hardware/Software/Indeterminate alerts never**: when even
   duplicates cannot make room, a fresh tagged alert is *spilled* to the
   dead-letter path with exact accounting — degraded, audited, never
   silently lost.

Policies are pluggable (``--shed-policy`` on the CLI): the registry also
offers ``chatter-only`` (sheds nothing that any rule tags) and ``none``
(sheds nothing at all; overflow spills, turning arbitrary transport loss
into accounted loss).  All decisions and their outcomes are counted in
:class:`ShedAccounting`, whose totals feed the overload report on
:meth:`repro.pipeline.PipelineResult.summary`.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple, Union

from .backpressure import KEEP, SHED, SPILL, PressureLevel

#: Shed classes, in degradation order (first shed first).
CLASS_CHATTER = "info-chatter"
CLASS_DUPLICATE = "duplicate-alert"
CLASS_ALERT = "tagged-alert"

Decision = Tuple[str, str]  # (KEEP | SHED | SPILL, shed class)


class ShedAccounting:
    """Exact counters for every shed decision, by class.

    ``offered`` counts every record a policy classified; ``shed`` the
    records dropped at the door; ``spilled`` the records routed to the
    dead-letter path instead.  ``offered - shed - spilled`` records were
    admitted, so conservation is checkable end to end.
    """

    def __init__(self) -> None:
        self.offered: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}
        self.spilled: Dict[str, int] = {}
        # Counter updates are read-modify-write; keep them exact when one
        # accounting object is shared across threads or tenant tasks.
        self._lock = threading.Lock()

    def count_offered(self, klass: str) -> None:
        with self._lock:
            self.offered[klass] = self.offered.get(klass, 0) + 1

    def count_shed(self, klass: str) -> None:
        with self._lock:
            self.shed[klass] = self.shed.get(klass, 0) + 1

    def count_spilled(self, klass: str) -> None:
        with self._lock:
            self.spilled[klass] = self.spilled.get(klass, 0) + 1

    @property
    def total_offered(self) -> int:
        return sum(self.offered.values())

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    @property
    def total_spilled(self) -> int:
        return sum(self.spilled.values())

    @property
    def admitted(self) -> int:
        return self.total_offered - self.total_shed - self.total_spilled

    def summary(self) -> str:
        if not self.total_shed and not self.total_spilled:
            return "nothing shed"
        parts = [
            f"{klass}: {count}" for klass, count in sorted(self.shed.items())
        ]
        text = f"{self.total_shed} shed ({', '.join(parts)})" if parts else "0 shed"
        if self.total_spilled:
            text += f", {self.total_spilled} spilled to dead-letter"
        return text


class ShedPolicy:
    """Base policy: classification plus a (subclass-supplied) decision.

    Classification needs the system's expert ruleset — the tagger *is*
    the priority oracle — so the pipeline binds its tagger via
    :meth:`bind` before the first decision.  An **unbound** policy
    classifies everything as :data:`CLASS_ALERT`: with no way to tell
    chatter from alerts, the only safe degradation is to spill with
    accounting, never to shed.

    ``dedup_window`` is the lookback (seconds) within which a repeated
    category counts as a duplicate; the pipeline defaults it to the
    filter threshold ``T`` so "duplicate" means "what Algorithm 3.1 would
    suppress anyway".
    """

    name = "base"

    def __init__(self, dedup_window: float = 5.0):
        if dedup_window < 0:
            raise ValueError("dedup_window must be non-negative")
        self.dedup_window = dedup_window
        self._tagger = None
        self._last_seen: Dict[str, float] = {}
        # The duplicate-lookback table is read-modify-written per record;
        # the ingest service multiplexes policies across tenant tasks (and
        # tests hammer one from threads), so the update must be atomic.
        # The regex match stays outside the lock — it touches no policy
        # state and is the expensive part.
        self._lock = threading.Lock()

    def bind(self, tagger) -> "ShedPolicy":
        """Attach the system's tagger used for classification."""
        self._tagger = tagger
        return self

    def classify(self, record) -> str:
        if self._tagger is None:
            return CLASS_ALERT
        category = self._tagger.match(record)
        if category is None:
            return CLASS_CHATTER
        with self._lock:
            last = self._last_seen.get(category.name)
            self._last_seen[category.name] = record.timestamp
        if last is not None and 0 <= record.timestamp - last < self.dedup_window:
            return CLASS_DUPLICATE
        return CLASS_ALERT

    def state_dict(self) -> Dict[str, float]:
        """The duplicate-lookback state (category -> last seen timestamp),
        checkpointed by bounded runs so a resumed policy makes the same
        duplicate calls it would have made uninterrupted."""
        with self._lock:
            return dict(self._last_seen)

    def load_state_dict(self, state: Optional[Dict[str, float]]) -> None:
        with self._lock:
            self._last_seen = dict(state) if state else {}

    def decide(self, record, level: PressureLevel) -> Decision:
        raise NotImplementedError


class PriorityShedPolicy(ShedPolicy):
    """The paper-aware default: chatter at ELEVATED, duplicates at
    CRITICAL, tagged alerts never — they spill to the dead-letter path."""

    name = "priority"

    def decide(self, record, level: PressureLevel) -> Decision:
        klass = self.classify(record)
        if level is PressureLevel.NORMAL:
            return KEEP, klass
        if klass == CLASS_CHATTER:
            return SHED, klass
        if level is PressureLevel.CRITICAL:
            if klass == CLASS_DUPLICATE:
                return SHED, klass
            return SPILL, klass
        return KEEP, klass


class ChatterOnlyShedPolicy(ShedPolicy):
    """Sheds only untagged chatter; anything any rule tags — duplicate or
    not — is kept while room exists and spilled (never shed) at CRITICAL."""

    name = "chatter-only"

    def decide(self, record, level: PressureLevel) -> Decision:
        klass = self.classify(record)
        if level is PressureLevel.NORMAL:
            return KEEP, klass
        if klass == CLASS_CHATTER:
            return SHED, klass
        if level is PressureLevel.CRITICAL:
            return SPILL, klass
        return KEEP, klass


class NoShedPolicy(ShedPolicy):
    """Never sheds: overflow spills with accounting.  The contrast case —
    bounded memory with *accounted* (not arbitrary) loss and no priority."""

    name = "none"

    def decide(self, record, level: PressureLevel) -> Decision:
        klass = self.classify(record)
        if level is PressureLevel.CRITICAL:
            return SPILL, klass
        return KEEP, klass


SHED_POLICIES = {
    policy.name: policy
    for policy in (PriorityShedPolicy, ChatterOnlyShedPolicy, NoShedPolicy)
}


def get_shed_policy(
    policy: Union[str, ShedPolicy], dedup_window: Optional[float] = None
) -> ShedPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, ShedPolicy):
        return policy
    try:
        cls = SHED_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown shed policy {policy!r}; known: {sorted(SHED_POLICIES)}"
        ) from None
    if dedup_window is None:
        return cls()
    return cls(dedup_window=dedup_window)

"""Fault tolerance for the collection/analysis pipeline.

The paper's collection paths are explicitly unreliable (Sections 3.1-3.2):
UDP syslog drops under contention, lines arrive garbled and interleaved,
collectors crash.  This package makes the pipeline survive everything the
paper catalogs, the way production HPC log-analytics stacks do:

* :mod:`~repro.resilience.faults` — seed-deterministic fault injectors
  (crash, stall, clock skew, duplication, reordering, truncation) that
  wrap any record stream;
* :mod:`~repro.resilience.retry` — backoff policies, per-channel circuit
  breakers, and :class:`~repro.resilience.retry.ResilientChannel`, the
  retrying wrapper around the transport models;
* :mod:`~repro.resilience.deadletter` — the bounded quarantine for
  records the pipeline refuses, with exact per-reason accounting;
* :mod:`~repro.resilience.checkpoint` — snapshot/restore of streaming
  pipeline state for exact crash/resume;
* :mod:`~repro.resilience.supervisor` — bounded-restart supervision of
  per-system pipeline workers, degrading to a partial result (never an
  unhandled exception) when the budget runs out;
* :mod:`~repro.resilience.backpressure` — bounded inter-stage queues with
  watermarks, credit-based flow control, and the overload monitor behind
  bounded-memory runs;
* :mod:`~repro.resilience.shedding` — priority-aware load-shedding
  policies that degrade in paper order: INFO chatter first, duplicate
  alerts next, tagged alerts never (they spill to the dead-letter queue).
"""

from .backpressure import (
    BackpressureConfig,
    BoundedQueue,
    CreditGate,
    OverloadMonitor,
    OverloadReport,
    PressureLevel,
    Watermarks,
    bounded_buffer,
)
from .checkpoint import CheckpointManager, PipelineCheckpoint
from .deadletter import DeadLetter, DeadLetterQueue, DeadLetterSnapshot
from .faults import (
    ClockSkewInjector,
    CollectorCrash,
    CrashInjector,
    DuplicateInjector,
    FaultConfig,
    FaultError,
    FaultPlan,
    RandomFaultInjector,
    ReorderInjector,
    StallTimeout,
    TransientFault,
    TruncateInjector,
    compose,
)
from .retry import (
    BreakerState,
    CircuitBreaker,
    ResilientChannel,
    RetryError,
    RetryPolicy,
    with_retry,
)
from .shedding import (
    ChatterOnlyShedPolicy,
    NoShedPolicy,
    PriorityShedPolicy,
    ShedAccounting,
    ShedPolicy,
    get_shed_policy,
)


def __getattr__(name: str):
    # The supervisor sits above the pipeline, which sits above the
    # simulation layer, which uses this package's dead-letter queue — so
    # importing it eagerly here would close an import cycle.  PEP 562
    # lazy loading keeps ``repro.resilience.PipelineSupervisor`` working
    # without the cycle.
    if name == "PipelineSupervisor":
        from .supervisor import PipelineSupervisor

        return PipelineSupervisor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CheckpointManager",
    "PipelineCheckpoint",
    "DeadLetter",
    "DeadLetterQueue",
    "DeadLetterSnapshot",
    "ClockSkewInjector",
    "CollectorCrash",
    "CrashInjector",
    "DuplicateInjector",
    "FaultConfig",
    "FaultError",
    "FaultPlan",
    "RandomFaultInjector",
    "ReorderInjector",
    "StallTimeout",
    "TransientFault",
    "TruncateInjector",
    "compose",
    "BreakerState",
    "CircuitBreaker",
    "ResilientChannel",
    "RetryError",
    "RetryPolicy",
    "with_retry",
    "BackpressureConfig",
    "BoundedQueue",
    "CreditGate",
    "OverloadMonitor",
    "OverloadReport",
    "PressureLevel",
    "Watermarks",
    "bounded_buffer",
    "ChatterOnlyShedPolicy",
    "NoShedPolicy",
    "PriorityShedPolicy",
    "ShedAccounting",
    "ShedPolicy",
    "get_shed_policy",
    "PipelineSupervisor",
]

"""Per-system pipeline supervision: restart, resume, degrade gracefully.

The supervisor is the piece that turns crash-prone workers into a
pipeline that always returns: it runs one system's generate/tag/filter
worker, and when the worker dies mid-stream — an injected
:class:`~repro.resilience.faults.CollectorCrash`, a stall timeout, or any
real bug — it restarts the worker from the latest checkpoint, at most
``restart_budget`` times.  Because the generated stream is deterministic
and fault mutation is replayed identically (see
:class:`~repro.resilience.faults.FaultPlan`), a resumed run lands in a
state byte-identical to an uninterrupted one.

When the budget is exhausted the supervisor *degrades* instead of
raising: it builds a partial :class:`~repro.pipeline.PipelineResult` from
the last checkpoint (or an empty one), flags it ``degraded``, and attaches
the failure log — the contract production log-analytics stacks keep
(Park et al., "Big Data Meets HPC Log Analytics"; Zhou et al.,
"LogMaster"): keep serving what you have, report what you lost.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import api as _pipeline
from ..core.filtering import DEFAULT_THRESHOLD, FilterReport
from ..analysis.severity_eval import SeverityCrossTab
from ..logio.stats import StatsCollector
from ..simulation.generator import LogGenerator
from ..parallel.config import ParallelConfig
from .backpressure import BackpressureConfig, OverloadMonitor, OverloadReport
from .checkpoint import CheckpointManager, PipelineCheckpoint
from .deadletter import DeadLetterQueue
from .faults import FaultConfig, FaultPlan
from .shedding import ShedAccounting


class PipelineSupervisor:
    """Supervised execution of per-system pipeline workers.

    Parameters
    ----------
    restart_budget:
        Maximum restarts per system after the initial attempt.
    checkpoint_every:
        Snapshot interval in input records; on restart at most this many
        records are replayed.
    dead_letter_capacity:
        Bound on retained quarantined records per system.
    store:
        Optional durable checkpoint backend
        (:class:`~repro.resilience.durability.CheckpointStore`): every
        snapshot also persists, and a *fresh* supervisor resumes from
        the newest on-disk checkpoint — restart-from-checkpoint then
        survives whole-process death, not just worker death.
    """

    def __init__(
        self,
        restart_budget: int = 3,
        checkpoint_every: int = 2000,
        dead_letter_capacity: int = 1000,
        store=None,
    ):
        if restart_budget < 0:
            raise ValueError("restart_budget must be non-negative")
        self.restart_budget = restart_budget
        self.checkpoint_every = checkpoint_every
        self.dead_letter_capacity = dead_letter_capacity
        self.store = store

    def run_records(
        self,
        source_factory,
        system: str,
        threshold: float = DEFAULT_THRESHOLD,
        faults: Optional[FaultConfig] = None,
        backpressure: Optional[BackpressureConfig] = None,
        parallel: Optional[ParallelConfig] = None,
        predict=None,
    ) -> "_pipeline.PipelineResult":
        """Run any replayable record stream to completion under
        supervision; never raises for worker failures — worst case
        returns a degraded partial.

        ``source_factory`` is a :data:`~repro.engine.stages.SourceFactory`:
        each call must re-present the *same* deterministic stream from
        the beginning (a resumed attempt skips the consumed prefix).
        Fault mutation is replayed identically per attempt (see
        :class:`~repro.resilience.faults.FaultPlan`), so a resumed run
        lands byte-identical to an uninterrupted one.

        With ``backpressure``, every attempt runs bounded, and the
        overload monitor and shed accounting are shared across attempts:
        the final (possibly degraded) result reports the whole supervised
        run's overload behavior, not just the last attempt's.  With
        ``parallel``, every attempt shards tagging across worker
        processes; the supervisor's checkpoints then sit at the sharded
        driver's batch barriers.
        """
        plan = FaultPlan(faults) if faults is not None else None
        manager = CheckpointManager(
            every=self.checkpoint_every, store=self.store
        )
        dead_letters = DeadLetterQueue(capacity=self.dead_letter_capacity)
        if backpressure is not None:
            backpressure = backpressure.with_runtime(
                monitor=backpressure.monitor
                or OverloadMonitor(sustain=backpressure.sustain),
                accounting=backpressure.accounting or ShedAccounting(),
            )
        failure_log: List[str] = []
        checkpoint: Optional[PipelineCheckpoint] = None
        if self.store is not None:
            # A previous *process* may have died mid-run: its durable
            # checkpoint is this run's starting point.
            checkpoint = self.store.load()

        for attempt in range(self.restart_budget + 1):
            records = source_factory()
            if plan is not None:
                records = plan.wrap(records)
            try:
                result = _pipeline.run_stream(
                    records, system, threshold=threshold,
                    dead_letters=dead_letters, checkpointer=manager,
                    resume_from=checkpoint, backpressure=backpressure,
                    parallel=parallel, predict=predict,
                )
            except Exception as exc:  # worker died: restart from checkpoint
                failure_log.append(
                    f"attempt {attempt + 1}: {type(exc).__name__}: {exc}"
                )
                checkpoint = manager.latest
                continue
            result.restarts = attempt
            result.failure_log = failure_log
            if self.store is not None:
                self.store.mark_complete()
            return result

        return self._degraded_result(
            system, threshold, checkpoint, dead_letters, failure_log,
            backpressure=backpressure,
        )

    def run_system(
        self,
        system: str,
        scale: float = 1e-4,
        seed: int = 2007,
        threshold: float = DEFAULT_THRESHOLD,
        incident_scale: float = 1.0,
        faults: Optional[FaultConfig] = None,
        backpressure: Optional[BackpressureConfig] = None,
        parallel: Optional[ParallelConfig] = None,
        predict=None,
        **generator_kwargs,
    ) -> "_pipeline.PipelineResult":
        """Generate one system's log (afresh per attempt — the generator
        is deterministic) and run it via :meth:`run_records`."""
        holder = {}

        def factory():
            generator = LogGenerator(
                system, scale=scale, seed=seed,
                incident_scale=incident_scale, **generator_kwargs,
            )
            holder["generated"] = generator.generate()
            return holder["generated"].records

        result = self.run_records(
            factory, system, threshold=threshold, faults=faults,
            backpressure=backpressure, parallel=parallel, predict=predict,
        )
        if not result.degraded:
            result.generated = holder.get("generated")
        return result

    def run_all(
        self,
        scale: float = 1e-4,
        seed: int = 2007,
        threshold: float = DEFAULT_THRESHOLD,
        faults: Optional[FaultConfig] = None,
        backpressure: Optional[BackpressureConfig] = None,
        parallel: Optional[ParallelConfig] = None,
        **generator_kwargs,
    ) -> Dict[str, "_pipeline.PipelineResult"]:
        """All five systems, each supervised independently: one system
        exhausting its budget degrades that system only."""
        from ..systems.specs import SYSTEMS

        return {
            name: self.run_system(
                name, scale=scale, seed=seed, threshold=threshold,
                faults=faults, backpressure=backpressure, parallel=parallel,
                **generator_kwargs,
            )
            for name in SYSTEMS
        }

    def _degraded_result(
        self,
        system: str,
        threshold: float,
        checkpoint: Optional[PipelineCheckpoint],
        dead_letters: DeadLetterQueue,
        failure_log: List[str],
        backpressure: Optional[BackpressureConfig] = None,
    ) -> "_pipeline.PipelineResult":
        """The partial result covering the stream up to the last
        checkpoint (or nothing, if the worker never survived one).

        The dead-letter queue is about to be rolled back to the
        checkpoint; quarantines from the failed attempts after that point
        would otherwise exist only in the result the crash destroyed.
        Snapshot the live accounting *first* and carry it on the degraded
        result (``final_dead_letters``), so post-mortem conservation
        checks can still reconcile every record the run refused.
        """
        final_dead_letters = dead_letters.snapshot()
        failure_log.append(
            "final dead-letter accounting at budget exhaustion: "
            + dead_letters.summary()
        )
        if checkpoint is not None:
            stats = checkpoint.restore_stats().finish()
            report = checkpoint.restore_report()
            severity = checkpoint.restore_severity()
            raw = list(checkpoint.raw_alerts)
            filtered = list(checkpoint.filtered_alerts)
            corrupted = checkpoint.corrupted_messages
            dead_letters.restore(checkpoint.dead_letters)
        else:
            stats = StatsCollector(system).finish()
            report = FilterReport(threshold=threshold)
            severity = SeverityCrossTab()
            raw, filtered, corrupted = [], [], 0
            dead_letters.restore(None)
        overload = None
        if backpressure is not None:
            # The shared monitor/accounting saw every attempt; surface the
            # overload picture even though the run never completed.
            overload = OverloadReport.from_parts(
                monitor=backpressure.monitor,
                accounting=backpressure.accounting,
            )
        result = _pipeline.PipelineResult(
            system=system,
            stats=stats,
            raw_alerts=raw,
            filtered_alerts=filtered,
            filter_report=report,
            severity_tab=severity,
            corrupted_messages=corrupted,
            threshold=threshold,
            dead_letters=dead_letters,
            degraded=True,
            restarts=self.restart_budget,
            failure_log=failure_log,
            overload=overload,
            final_dead_letters=final_dead_letters,
        )
        return result

"""Composable, seed-deterministic fault injectors for record streams.

Section 3.1 documents an unreliable collection path — UDP syslog drops
under contention, lines arrive garbled, interleaved, and mis-timestamped —
and any collector process can die mid-stream.  This module reproduces
those failure modes as *injectable* faults so the rest of the library can
be tested against them:

* **record mutators** rewrite the stream in place — duplicates,
  out-of-order delivery, truncation, clock-skew episodes;
* **delivery faults** abort the stream — a collector crash
  (:class:`CollectorCrash`) or a stall that exceeds its timeout
  (:class:`StallTimeout`);
* **send-path faults** (:class:`TransientFault`) fail individual transmit
  attempts, the failure mode retry policies exist for.

Everything is driven by explicit rngs seeded from a
:class:`FaultConfig`, so a fault schedule is exactly reproducible:
re-wrapping the same deterministic stream with the same config mutates it
identically, which is what lets the supervisor resume from a checkpoint
after a crash and land in a byte-identical final state.
"""

from __future__ import annotations

import errno
import os
import signal
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..logmodel.record import LogRecord
from .durability import RealFilesystem, _AppendHandle


class FaultError(RuntimeError):
    """Base class for injected delivery failures."""


class CollectorCrash(FaultError):
    """The collector process died mid-stream (records so far were stored)."""

    def __init__(self, message: str, records_delivered: int = 0):
        super().__init__(message)
        self.records_delivered = records_delivered


class StallTimeout(FaultError):
    """A stall exceeded its timeout budget; the read was abandoned."""


@dataclass(frozen=True)
class FaultConfig:
    """One reproducible fault schedule.

    Rates are per-record probabilities.  ``crash_at`` plants a single
    deterministic crash after exactly that many records (it fires once,
    mirroring a real crash: the restarted collector does not re-die at the
    same spot); ``crash_rate``/``stall_rate`` draw crash/stall points
    stochastically but deterministically from ``seed``.
    """

    seed: int = 2007
    crash_at: Optional[int] = None
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    skew_rate: float = 0.0
    skew_magnitude: float = 45.0
    skew_span: int = 20
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_window: int = 4
    truncate_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "stall_rate", "skew_rate",
                     "duplicate_rate", "reorder_rate", "truncate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.crash_at is not None and self.crash_at < 0:
            raise ValueError("crash_at must be non-negative")
        if self.skew_span < 1 or self.reorder_window < 1:
            raise ValueError("skew_span and reorder_window must be >= 1")

    @classmethod
    def defaults(cls, seed: int = 2007) -> "FaultConfig":
        """The standard hostile-but-survivable schedule used by
        ``run_all(faults=...)``: occasional crashes and stalls, light
        duplication/reordering/truncation, rare clock-skew episodes."""
        return cls(
            seed=seed,
            crash_rate=2e-5,
            stall_rate=2e-5,
            skew_rate=5e-5,
            duplicate_rate=1e-3,
            reorder_rate=1e-3,
            truncate_rate=5e-4,
        )

    @classmethod
    def crash_only(cls, at: int, seed: int = 2007) -> "FaultConfig":
        """A single deterministic crash after ``at`` records — the shape
        the checkpoint/resume acceptance test uses."""
        return cls(seed=seed, crash_at=at)


# -- record mutators ---------------------------------------------------------


class DuplicateInjector:
    """Re-deliver ~``rate`` of records immediately (at-least-once delivery)."""

    def __init__(self, rng: np.random.Generator, rate: float):
        self.rng = rng
        self.rate = rate
        self.duplicated = 0

    def apply(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        for record in records:
            yield record
            if self.rate and self.rng.random() < self.rate:
                self.duplicated += 1
                yield record


class ReorderInjector:
    """Hold back ~``rate`` of records and deliver them a few slots late.

    A held record is released after 1..``window`` subsequent records, which
    produces locally out-of-order delivery — the interleaving a fan-in
    collector under load actually emits.
    """

    def __init__(self, rng: np.random.Generator, rate: float, window: int = 4):
        self.rng = rng
        self.rate = rate
        self.window = window
        self.reordered = 0

    def apply(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        held: List[Tuple[int, LogRecord]] = []  # (release countdown, record)
        for record in records:
            if self.rate and self.rng.random() < self.rate:
                displacement = 1 + int(self.rng.integers(0, self.window))
                held.append((displacement, record))
                self.reordered += 1
                continue
            yield record
            if held:
                due = []
                remaining = []
                for countdown, pending in held:
                    countdown -= 1
                    (due if countdown <= 0 else remaining).append(
                        (countdown, pending)
                    )
                held = remaining
                for _, pending in due:
                    yield pending
        for _, pending in held:
            yield pending


class TruncateInjector:
    """Cut ~``rate`` of record bodies short and mark them corrupted —
    the VAPI-style in-flight truncation of Section 3.2.1."""

    def __init__(self, rng: np.random.Generator, rate: float):
        self.rng = rng
        self.rate = rate
        self.truncated = 0

    def apply(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        for record in records:
            body = record.body
            if (
                self.rate
                and isinstance(body, str)
                and len(body) > 4
                and self.rng.random() < self.rate
            ):
                cut = int(self.rng.integers(max(1, len(body) // 3), len(body)))
                self.truncated += 1
                yield record.with_corruption(body=body[:cut])
                continue
            yield record


class ClockSkewInjector:
    """Start a skew episode with probability ``rate`` per record: the next
    ``span`` records carry timestamps shifted by a uniform offset in
    ``[-magnitude, +magnitude]`` (a node whose clock drifted, or a relay
    stamping arrival time instead of event time)."""

    def __init__(
        self,
        rng: np.random.Generator,
        rate: float,
        magnitude: float = 45.0,
        span: int = 20,
    ):
        self.rng = rng
        self.rate = rate
        self.magnitude = magnitude
        self.span = span
        self.episodes = 0
        self.skewed_records = 0

    def apply(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        remaining = 0
        offset = 0.0
        for record in records:
            if remaining <= 0 and self.rate and self.rng.random() < self.rate:
                remaining = self.span
                offset = float(self.rng.uniform(-self.magnitude, self.magnitude))
                self.episodes += 1
            if remaining > 0:
                remaining -= 1
                self.skewed_records += 1
                yield replace(record, timestamp=record.timestamp + offset)
                continue
            yield record


# -- delivery faults ---------------------------------------------------------


class CrashInjector:
    """A single deterministic crash after exactly ``at`` records.

    Fires once and disarms: re-wrapping the stream after a supervisor
    restart passes through cleanly, like a real restarted collector.
    """

    def __init__(self, at: int):
        if at < 0:
            raise ValueError("at must be non-negative")
        self.at = at
        self.fired = False

    def apply(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        delivered = 0
        for record in records:
            if not self.fired and delivered >= self.at:
                self.fired = True
                raise CollectorCrash(
                    f"injected collector crash after {delivered} records",
                    records_delivered=delivered,
                )
            delivered += 1
            yield record


class RandomFaultInjector:
    """Stochastic delivery faults with geometric gaps between firings.

    The countdown to the next fault persists across :meth:`apply` calls,
    so a restarted stream does not re-fail at the same record — the fault
    process continues where it left off, deterministically from the rng.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate: float,
        exception: type = CollectorCrash,
        label: str = "crash",
    ):
        self.rng = rng
        self.rate = rate
        self.exception = exception
        self.label = label
        self.fired_count = 0
        self._countdown = self._draw() if rate > 0 else None

    def _draw(self) -> int:
        return int(self.rng.geometric(self.rate))

    def apply(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        if self._countdown is None:
            yield from records
            return
        for record in records:
            self._countdown -= 1
            if self._countdown <= 0:
                self._countdown = self._draw()
                self.fired_count += 1
                if self.exception is CollectorCrash:
                    raise CollectorCrash(
                        f"injected {self.label} (firing #{self.fired_count})"
                    )
                raise self.exception(
                    f"injected {self.label} (firing #{self.fired_count})"
                )
            yield record


# -- send-path faults --------------------------------------------------------


class TransientFault:
    """Per-attempt send failures: each :meth:`check` call independently
    fails with probability ``rate``, so a retry can succeed where the
    first attempt failed — the failure mode backoff policies exist for."""

    def __init__(self, rng: np.random.Generator, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rng = rng
        self.rate = rate
        self.calls = 0
        self.raised = 0

    def check(self, record: LogRecord) -> None:
        self.calls += 1
        if self.rate and self.rng.random() < self.rate:
            self.raised += 1
            raise StallTimeout(
                f"injected transient send failure at t={record.timestamp:.3f}"
            )


# -- storage faults ----------------------------------------------------------


class FaultyFilesystem(RealFilesystem):
    """Deterministic storage-fault injection behind the durability
    layer's filesystem seam.

    Every *mutating* operation (write, append, fsync, replace, remove,
    truncate) gets a monotonically increasing op index; the schedule
    says what happens at each index:

    * ``fail_after=N`` — op ``N`` and every mutating op after it raise
      ``OSError`` with ``fail_errno`` (default ENOSPC): the disk filled
      and stayed full.
    * ``kill_at=K`` — op ``K`` SIGKILLs the whole process *mid-write*:
      a file write puts half the payload on disk first (the torn-write
      case the CRC framing exists for), an fsync dies before the data
      is known durable, a replace dies before happening.

    Both schedules are plain op counts, so a deterministic workload
    replays them exactly — the property the chaos harness needs to land
    a kill inside a specific checkpoint write on every run.  The
    ``REPRO_FAULT_FS_*`` environment variables (see
    :func:`fault_filesystem_from_env`) arm the same schedules inside a
    subprocess.
    """

    def __init__(
        self,
        fail_after: Optional[int] = None,
        fail_errno: int = errno.ENOSPC,
        kill_at: Optional[int] = None,
    ):
        self.fail_after = fail_after
        self.fail_errno = fail_errno
        self.kill_at = kill_at
        self.ops = 0

    def _gate(self, op: str, path: str) -> None:
        index = self.ops
        self.ops += 1
        if self.kill_at is not None and index == self.kill_at:
            self._kill(op, path)
        if self.fail_after is not None and index >= self.fail_after:
            raise OSError(
                self.fail_errno,
                f"injected {errno.errorcode.get(self.fail_errno, 'EIO')} "
                f"at fs op {index} ({op} {path})",
            )

    def _kill(self, op: str, path: str) -> None:  # pragma: no cover - dies
        os.kill(os.getpid(), signal.SIGKILL)

    # -- mutating ops, each gated -----------------------------------------

    def write_bytes(self, path: str, data: bytes, sync: bool = True) -> None:
        index = self.ops
        self.ops += 1
        if self.kill_at is not None and index == self.kill_at:
            # Torn write: half the payload reaches the file, then the
            # process dies.  pragma: the surviving half is what the
            # recovery tests read back.
            with open(path, "wb") as handle:  # pragma: no cover - dies
                handle.write(data[: len(data) // 2])
                handle.flush()
                os.fsync(handle.fileno())
            self._kill("write", path)  # pragma: no cover - dies
        if self.fail_after is not None and index >= self.fail_after:
            raise OSError(
                self.fail_errno,
                f"injected write failure at fs op {index} ({path})",
            )
        super().write_bytes(path, data, sync=sync)

    def open_append(self, path: str) -> "_FaultyAppendHandle":
        return _FaultyAppendHandle(self, path)

    def replace(self, src: str, dst: str) -> None:
        self._gate("replace", dst)
        super().replace(src, dst)

    def remove(self, path: str) -> None:
        self._gate("remove", path)
        super().remove(path)

    def truncate(self, path: str, length: int) -> None:
        self._gate("truncate", path)
        super().truncate(path, length)


class _FaultyAppendHandle(_AppendHandle):
    """An append handle whose writes and fsyncs run through the owning
    :class:`FaultyFilesystem`'s schedule."""

    def __init__(self, fs: FaultyFilesystem, path: str):
        super().__init__(path)
        self._fs = fs

    def write(self, data: bytes) -> None:
        index = self._fs.ops
        self._fs.ops += 1
        if self._fs.kill_at is not None and index == self._fs.kill_at:
            # Torn append: half the frame lands, then SIGKILL.
            super().write(data[: len(data) // 2])  # pragma: no cover - dies
            super().sync()  # pragma: no cover - dies
            self._fs._kill("append", self.path)  # pragma: no cover - dies
        if self._fs.fail_after is not None and index >= self._fs.fail_after:
            raise OSError(
                self._fs.fail_errno,
                f"injected append failure at fs op {index} ({self.path})",
            )
        super().write(data)

    def sync(self) -> None:
        self._fs._gate("fsync", self.path)
        super().sync()


#: Environment contract for arming storage faults inside a subprocess.
ENV_FAULT_FS_KILL_AT = "REPRO_FAULT_FS_KILL_AT"
ENV_FAULT_FS_FAIL_AFTER = "REPRO_FAULT_FS_FAIL_AFTER"
ENV_FAULT_FS_ERRNO = "REPRO_FAULT_FS_ERRNO"


def fault_filesystem_from_env(
    environ: Optional[dict] = None,
) -> Optional[FaultyFilesystem]:
    """A :class:`FaultyFilesystem` armed from ``REPRO_FAULT_FS_*``
    environment variables, or ``None`` when none are set.  This is how
    the chaos harness lands a kill inside a durability write of a
    subprocess it cannot otherwise reach into."""
    env = os.environ if environ is None else environ
    kill_at = env.get(ENV_FAULT_FS_KILL_AT)
    fail_after = env.get(ENV_FAULT_FS_FAIL_AFTER)
    if kill_at is None and fail_after is None:
        return None
    code = env.get(ENV_FAULT_FS_ERRNO, "ENOSPC")
    return FaultyFilesystem(
        fail_after=int(fail_after) if fail_after is not None else None,
        fail_errno=getattr(errno, code, errno.EIO),
        kill_at=int(kill_at) if kill_at is not None else None,
    )


# -- composition -------------------------------------------------------------


def compose(records: Iterable[LogRecord], *injectors) -> Iterator[LogRecord]:
    """Chain injectors left-to-right over a record stream."""
    stream = records
    for injector in injectors:
        stream = injector.apply(stream)
    return iter(stream)


class FaultPlan:
    """A reproducible fault schedule bound to one pipeline run.

    Mutating injectors are re-seeded identically on every :meth:`wrap`
    call, so the re-presented (deterministic) stream after a supervisor
    restart is mutated identically — a precondition for exact
    checkpoint/resume.  Delivery faults (crashes, stalls) persist across
    wraps: a planted ``crash_at`` fires once, and stochastic fault
    countdowns continue rather than re-firing at the same record.
    """

    def __init__(self, config: FaultConfig):
        self.config = config
        self.wraps = 0
        delivery_seq = np.random.SeedSequence(entropy=(config.seed, 0xFA117))
        crash_rng, stall_rng = (
            np.random.default_rng(child) for child in delivery_seq.spawn(2)
        )
        self._delivery: List = []
        if config.crash_at is not None:
            self._delivery.append(CrashInjector(config.crash_at))
        if config.crash_rate > 0:
            self._delivery.append(
                RandomFaultInjector(
                    crash_rng, config.crash_rate, CollectorCrash, "collector crash"
                )
            )
        if config.stall_rate > 0:
            self._delivery.append(
                RandomFaultInjector(
                    stall_rng, config.stall_rate, StallTimeout, "collector stall"
                )
            )

    def _mutators(self) -> List:
        """Fresh, identically-seeded mutators for one pass over the stream."""
        config = self.config
        mutator_seq = np.random.SeedSequence(entropy=(config.seed, 0x3C0DE))
        children = mutator_seq.spawn(4)
        mutators: List = []
        if config.duplicate_rate > 0:
            mutators.append(
                DuplicateInjector(np.random.default_rng(children[0]),
                                  config.duplicate_rate)
            )
        if config.reorder_rate > 0:
            mutators.append(
                ReorderInjector(np.random.default_rng(children[1]),
                                config.reorder_rate, config.reorder_window)
            )
        if config.truncate_rate > 0:
            mutators.append(
                TruncateInjector(np.random.default_rng(children[2]),
                                 config.truncate_rate)
            )
        if config.skew_rate > 0:
            mutators.append(
                ClockSkewInjector(np.random.default_rng(children[3]),
                                  config.skew_rate, config.skew_magnitude,
                                  config.skew_span)
            )
        return mutators

    def wrap(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Apply the schedule to one (re-)presentation of the stream."""
        self.wraps += 1
        return compose(records, *self._mutators(), *self._delivery)

"""Checkpoint/resume for the streaming pipeline.

A pipeline run over a deterministic stream is resumable if we can snapshot
every piece of mutable state plus the count of input records consumed:
re-present the same stream, skip the consumed prefix, restore the state,
and the run completes as if never interrupted — byte-identical statistics
included, because the zlib compressor state is part of the snapshot.

:class:`CheckpointManager` owns the cadence (snapshot every N input
records) and retains the latest snapshot; :class:`PipelineCheckpoint` is
the snapshot itself, deep enough that the live run mutating onward never
contaminates it.  ``api.run_stream(..., checkpointer=...,
resume_from=...)`` does the wiring; the supervisor drives it after an
injected (or real) crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Any, Callable, Dict, Optional, Tuple

from ..analysis.severity_eval import SeverityCrossTab
from ..core.categories import Alert
from ..core.filtering import FilterReport, SpatioTemporalFilter
from ..logio.stats import StatsCollector, StatsSnapshot
from .deadletter import DeadLetterSnapshot


def copy_report(report: FilterReport) -> FilterReport:
    """A deep copy of a :class:`FilterReport` (per-category lists cloned)."""
    return FilterReport(
        threshold=report.threshold,
        raw_total=report.raw_total,
        filtered_total=report.filtered_total,
        by_category={name: list(pair) for name, pair in report.by_category.items()},
    )


def copy_severity(tab: SeverityCrossTab) -> SeverityCrossTab:
    """A deep copy of a severity cross-tabulation."""
    return SeverityCrossTab(messages=dict(tab.messages), alerts=dict(tab.alerts))


@dataclass(frozen=True)
class PipelineCheckpoint:
    """Complete resumable state of one ``run_stream`` at a record boundary.

    ``records_consumed`` counts records pulled from the *input* stream
    (including any that were quarantined), which is exactly how many to
    skip when the deterministic stream is re-presented.
    """

    system: str
    threshold: float
    records_consumed: int
    stats: StatsSnapshot
    filter_state: Dict[str, Any]
    report: FilterReport
    severity: SeverityCrossTab
    raw_alerts: Tuple[Alert, ...]
    filtered_alerts: Tuple[Alert, ...]
    corrupted_messages: int
    dead_letters: Optional[DeadLetterSnapshot] = None
    #: The shed policy's duplicate-lookback state (category -> last seen
    #: timestamp), captured by bounded runs so a resumed policy keeps its
    #: duplicate memory; ``None`` for unbounded runs.
    shed_state: Optional[Dict[str, float]] = None
    #: How many snapshots the run had taken when this one was stamped
    #: (this one included).  Resuming restores the manager's ``taken``
    #: from it, so the snapshot count a resumed run reports covers the
    #: whole logical run, not just the slice since the last crash.
    snapshots_taken: int = 0
    #: Online-prediction state (the miner's correlation graph, the
    #: ensemble's members/warnings, and the stage's reorder buffer) when
    #: the run had ``predict=`` enabled — see
    #: :meth:`repro.streaming.stage.PredictionStage.state_dict`.  Read
    #: via ``getattr`` with a ``None`` default so checkpoints pickled
    #: before this field existed still restore.
    prediction_state: Optional[Dict[str, Any]] = None
    #: Columnar-store watermark when the run spilled alerts to disk
    #: (``run_stream(store_dir=...)``): ``{"seq": n}`` means every alert
    #: with sequence < n was durably committed at this barrier, and the
    #: alert tuples above travel empty — the column files are the
    #: durable copy.  Resume truncates the store back to this watermark
    #: before the re-presented stream re-emits the suffix.  Read via
    #: ``getattr`` for checkpoints pickled before the field existed.
    store_state: Optional[Dict[str, Any]] = None

    def restore_stats(self) -> StatsCollector:
        """A live stats collector continuing from the snapshot."""
        return StatsCollector.from_snapshot(self.stats)

    def restore_filter(self) -> SpatioTemporalFilter:
        """A live filter continuing from the snapshot."""
        stf = SpatioTemporalFilter(self.threshold)
        stf.load_state_dict(self.filter_state)
        return stf

    def restore_report(self) -> FilterReport:
        return copy_report(self.report)

    def restore_severity(self) -> SeverityCrossTab:
        return copy_severity(self.severity)


@dataclass
class CheckpointManager:
    """Cadence and retention for pipeline snapshots.

    ``every`` is the snapshot interval in input records.  Only the latest
    snapshot is retained: resuming replays at most ``every`` records, and
    a single retained snapshot keeps memory bounded no matter how long the
    stream runs.
    """

    every: int = 2000
    latest: Optional[PipelineCheckpoint] = None
    taken: int = 0
    #: Optional durable backend (``repro.resilience.durability.
    #: CheckpointStore`` or anything with a ``save(checkpoint) -> bool``
    #: and a ``status``): every retained snapshot is also persisted, so
    #: the resume point survives the process.  Persistence failures
    #: degrade (the store's status latches and counts); they never stop
    #: the in-memory run.
    store: Optional[Any] = None
    _last_at: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("checkpoint interval must be at least 1 record")

    def maybe(
        self,
        records_consumed: int,
        snapshot: Callable[[], PipelineCheckpoint],
    ) -> bool:
        """Take a snapshot if the interval has elapsed; ``True`` if taken."""
        if records_consumed - self._last_at < self.every:
            return False
        checkpoint = snapshot()
        self.taken += 1
        if getattr(checkpoint, "snapshots_taken", self.taken) != self.taken:
            checkpoint = dc_replace(checkpoint, snapshots_taken=self.taken)
        self.latest = checkpoint
        self._last_at = records_consumed
        if self.store is not None:
            self.store.save(checkpoint)
        return True

    def prime(self, checkpoint: Optional[PipelineCheckpoint]) -> None:
        """Adopt an existing checkpoint as the starting point (resume).

        Restores the full resume accounting: ``latest``, the interval
        cursor, *and* ``taken`` — a resumed run's snapshot count picks
        up where the interrupted run's left off instead of restarting
        at zero (which historically made ``PipelineResult.summary()``
        under-report resumed runs).
        """
        self.latest = checkpoint
        self._last_at = checkpoint.records_consumed if checkpoint else 0
        if checkpoint is not None:
            self.taken = max(self.taken, checkpoint.snapshots_taken)

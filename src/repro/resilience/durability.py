"""Crash-durable state: a segmented write-ahead journal and an atomic,
generational checkpoint store.

The paper's corpus took months of continuous collection — the monitors
that produce such logs do not restart from zero.  This module is what
lets ours not restart from zero either: every piece of resumable state
the pipeline and service already maintain in memory
(:class:`~repro.resilience.checkpoint.PipelineCheckpoint`, tenant
``park()`` bundles, dead-letter accounting) gains an on-disk twin that
survives SIGKILL, torn writes, and bit-rot.

Three layers:

* :class:`RealFilesystem` — the narrow syscall surface everything else
  uses (write/fsync/replace/remove/...).  Narrow on purpose: the chaos
  harness swaps in :class:`~repro.resilience.faults.FaultyFilesystem`
  to land ENOSPC/EIO or a SIGKILL mid-fsync at a deterministic
  operation index.
* :class:`SegmentedWal` — an append-only journal of CRC32-framed
  entries across rotating segment files.  Replay truncates a torn tail
  (the crash case), quarantines a mid-journal CRC failure (the bit-rot
  case) rather than trusting anything after it, and never raises.
* :class:`CheckpointStore` — full-state snapshots written as
  generations: serialize → temp file → fsync → ``os.replace``, then a
  manifest (same dance) naming the newest generation.  Load verifies
  the manifest's pick and falls back generation by generation,
  quarantining what fails its CRC.

Durability failures never take the pipeline down: any OSError from the
storage layer latches :class:`DurabilityStatus` into *degraded* mode —
the run continues in-memory, exactly as before this module existed,
with an exact count of every record and checkpoint that could not be
persisted.  Losing the ability to persist must not become losing data
that was never at risk in memory.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from . import wire
from .checkpoint import PipelineCheckpoint

__all__ = [
    "CheckpointStore",
    "DurabilityStatus",
    "RealFilesystem",
    "SegmentedWal",
    "default_filesystem",
    "recover_checkpoint",
]


# -- the filesystem seam -----------------------------------------------------


class _AppendHandle:
    """A thin append-mode file wrapper the fault filesystem can shadow."""

    def __init__(self, path: str):
        self._file = open(path, "ab")
        self.path = path

    def write(self, data: bytes) -> None:
        self._file.write(data)

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def tell(self) -> int:
        return self._file.tell()

    def close(self) -> None:
        try:
            self._file.flush()
        finally:
            self._file.close()


class RealFilesystem:
    """The narrow filesystem surface the durability layer is written
    against.  Every mutating operation the chaos harness might want to
    fail or kill inside goes through a named method here."""

    def ensure_dir(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> List[str]:
        return sorted(os.listdir(path))

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def write_bytes(self, path: str, data: bytes, sync: bool = True) -> None:
        with open(path, "wb") as handle:
            handle.write(data)
            if sync:
                handle.flush()
                os.fsync(handle.fileno())

    def open_append(self, path: str) -> _AppendHandle:
        return _AppendHandle(path)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def truncate(self, path: str, length: int) -> None:
        with open(path, "rb+") as handle:
            handle.truncate(length)

    def fsync_dir(self, path: str) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - some filesystems refuse
            pass
        finally:
            os.close(fd)


def default_filesystem() -> RealFilesystem:
    """The filesystem the stores use when none is injected explicitly.

    Honors the ``REPRO_FAULT_FS_*`` environment contract so a chaos
    harness can arm fault injection inside a subprocess it is about to
    run — see :func:`repro.resilience.faults.fault_filesystem_from_env`.
    """
    from .faults import fault_filesystem_from_env

    return fault_filesystem_from_env() or RealFilesystem()


# -- degraded-mode accounting ------------------------------------------------


@dataclass
class DurabilityStatus:
    """The latch that keeps storage failures from becoming outages.

    Once latched, ``degraded`` stays true for the life of the run (a
    filesystem that returned ENOSPC once is not to be trusted with the
    guarantee again), writes keep being *attempted and counted* so the
    unpersisted tallies are exact, and the in-memory pipeline continues
    untouched.
    """

    degraded: bool = False
    reason: str = ""
    #: Exact counts of state that exists in memory but not on disk.
    unpersisted_checkpoints: int = 0
    unpersisted_wal_records: int = 0
    notes: List[str] = field(default_factory=list)

    MAX_NOTES = 50

    def latch(self, where: str, exc: BaseException) -> None:
        if not self.degraded:
            self.degraded = True
            self.reason = f"{where}: {exc!r}"
        self.note(f"{where}: {exc!r}")

    def note(self, message: str) -> None:
        if len(self.notes) < self.MAX_NOTES:
            self.notes.append(message)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "degraded": self.degraded,
            "reason": self.reason,
            "unpersisted_checkpoints": self.unpersisted_checkpoints,
            "unpersisted_wal_records": self.unpersisted_wal_records,
            "notes": list(self.notes),
        }

    def summary_line(self) -> str:
        if not self.degraded:
            return "durability:        ok"
        return (
            f"durability:        DEGRADED ({self.reason}; "
            f"{self.unpersisted_checkpoints} checkpoints / "
            f"{self.unpersisted_wal_records} journal records unpersisted)"
        )


# -- the write-ahead journal -------------------------------------------------


class SegmentedWal:
    """An append-only journal of ``(kind, object)`` entries.

    Entries are pickled, CRC32-framed (:mod:`repro.resilience.wire`),
    and appended to ``wal-<n>.seg`` files that rotate at
    ``segment_bytes``.  ``sync_every=1`` fsyncs after every append (the
    default: an acknowledged entry is a durable entry);
    ``sync_every=0`` leaves fsync to explicit :meth:`sync` calls at the
    caller's batch boundaries.

    :meth:`replay` yields every trustworthy entry in append order and
    classifies everything else: a bad frame at the tail of the *last*
    segment is a torn write — the tail is truncated and the journal
    continues from the clean prefix; a bad frame or header anywhere
    earlier is bit-rot — that segment is renamed ``*.corrupt`` and
    replay stops there, because append order after a rotten segment
    cannot be vouched for.  Replay never raises.
    """

    SEGMENT_PREFIX = "wal-"
    SEGMENT_SUFFIX = ".seg"

    def __init__(
        self,
        directory: str,
        segment_bytes: int = 1 << 20,
        sync_every: int = 1,
        fs: Optional[RealFilesystem] = None,
        status: Optional[DurabilityStatus] = None,
    ):
        self.directory = str(directory)
        self.segment_bytes = segment_bytes
        self.sync_every = sync_every
        self.fs = fs if fs is not None else default_filesystem()
        self.status = status if status is not None else DurabilityStatus()
        self.appended = 0  # entries accepted by append()
        self.persisted = 0  # entries written without an OSError
        self._handle: Optional[_AppendHandle] = None
        self._since_sync = 0
        self._next_segment = 0

    # -- naming ------------------------------------------------------------

    def _segment_name(self, index: int) -> str:
        return f"{self.SEGMENT_PREFIX}{index:08d}{self.SEGMENT_SUFFIX}"

    def _segment_index(self, name: str) -> Optional[int]:
        if not (name.startswith(self.SEGMENT_PREFIX)
                and name.endswith(self.SEGMENT_SUFFIX)):
            return None
        digits = name[len(self.SEGMENT_PREFIX):-len(self.SEGMENT_SUFFIX)]
        return int(digits) if digits.isdigit() else None

    def segments(self) -> List[str]:
        """Segment file names currently on disk, in append order."""
        if not self.fs.exists(self.directory):
            return []
        named = [
            (index, name)
            for name in self.fs.listdir(self.directory)
            if (index := self._segment_index(name)) is not None
        ]
        return [name for _index, name in sorted(named)]

    # -- appending ---------------------------------------------------------

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.fs.ensure_dir(self.directory)
        existing = self.segments()
        if existing and self._next_segment == 0:
            last = self._segment_index(existing[-1])
            self._next_segment = (last if last is not None else -1) + 1
        path = os.path.join(
            self.directory, self._segment_name(self._next_segment)
        )
        self._next_segment += 1
        handle = self.fs.open_append(path)
        if handle.tell() == 0:
            handle.write(wire.file_header(wire.WAL_MAGIC))
        self._handle = handle

    def append(self, kind: str, obj: Any) -> bool:
        """Append one entry; ``True`` if it reached the journal file.

        Degraded mode keeps accepting (and exactly counting) entries so
        the in-memory pipeline never blocks on a broken disk.
        """
        self.appended += 1
        frame = wire.encode_entry(kind, obj)
        try:
            if (
                self._handle is None
                or self._handle.tell() + len(frame) > self.segment_bytes
            ):
                self._rotate()
            self._handle.write(frame)
            self._since_sync += 1
            if self.sync_every and self._since_sync >= self.sync_every:
                self._handle.sync()
                self._since_sync = 0
        except OSError as exc:
            self.status.latch("wal append", exc)
            self.status.unpersisted_wal_records += 1
            self._drop_handle()
            return False
        self.persisted += 1
        return True

    def sync(self) -> bool:
        """Fsync the open segment (for ``sync_every=0`` batch callers)."""
        if self._handle is None or self._since_sync == 0:
            return True
        try:
            self._handle.sync()
        except OSError as exc:
            self.status.latch("wal sync", exc)
            # The unsynced suffix may or may not survive a crash; count
            # it as unpersisted — the conservative direction.
            self.status.unpersisted_wal_records += self._since_sync
            self.persisted -= min(self.persisted, self._since_sync)
            self._since_sync = 0
            self._drop_handle()
            return False
        self._since_sync = 0
        return True

    def _drop_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def close(self) -> None:
        self.sync()
        self._drop_handle()

    # -- replay ------------------------------------------------------------

    def replay(self) -> Iterator[Tuple[str, Any]]:
        """Yield every trustworthy entry in append order (see class doc)."""
        names = self.segments()
        for position, name in enumerate(names):
            path = os.path.join(self.directory, name)
            last = position == len(names) - 1
            try:
                data = self.fs.read_bytes(path)
            except OSError as exc:
                self.status.note(f"wal segment {name} unreadable: {exc!r}")
                if not last:
                    self.status.note(
                        f"wal replay stopped; {len(names) - position - 1} "
                        "later segments skipped (append order not provable)"
                    )
                return
            try:
                wire.check_header(data, wire.WAL_MAGIC)
            except wire.WireError as exc:
                self._quarantine(name, f"bad header: {exc}")
                if not last:
                    self.status.note(
                        f"wal replay stopped at {name}; "
                        f"{len(names) - position - 1} later segments skipped"
                    )
                return
            payloads, clean_end, error = wire.scan_frames(data)
            if error is not None and not last:
                # Bit-rot mid-journal: nothing after this segment can be
                # trusted to be in append order.
                for payload in self._decode(payloads, name):
                    yield payload
                self._quarantine(name, error)
                self.status.note(
                    f"wal replay stopped at {name}; "
                    f"{len(names) - position - 1} later segments skipped"
                )
                return
            if error is not None:
                # Torn tail of the newest segment: the crash case.  Keep
                # the clean prefix, cut the tail so future appends start
                # from a trustworthy boundary.
                self.status.note(f"wal torn tail in {name}: {error}; "
                                 f"truncated to {clean_end} bytes")
                try:
                    self.fs.truncate(path, clean_end)
                except OSError as exc:
                    self.status.note(
                        f"wal tail truncate failed on {name}: {exc!r}"
                    )
            for payload in self._decode(payloads, name):
                yield payload

    def _decode(
        self, payloads: List[bytes], name: str
    ) -> Iterator[Tuple[str, Any]]:
        for payload in payloads:
            try:
                yield wire.decode_entry(payload)
            except wire.WireError as exc:
                # CRC passed but the pickle did not decode: corruption
                # the frame cannot see (e.g. a class that moved).  Skip
                # the entry, keep the note.
                self.status.note(f"wal entry in {name} dropped: {exc}")

    def _quarantine(self, name: str, why: str) -> None:
        path = os.path.join(self.directory, name)
        try:
            self.fs.replace(path, path + ".corrupt")
            self.status.note(f"wal segment {name} quarantined: {why}")
        except OSError as exc:
            self.status.note(
                f"wal segment {name} corrupt ({why}) and could not be "
                f"quarantined: {exc!r}"
            )

    def reset(self) -> None:
        """Drop every segment (a checkpoint now covers their contents)."""
        self._drop_handle()
        self._since_sync = 0
        for name in self.segments():
            try:
                self.fs.remove(os.path.join(self.directory, name))
            except OSError as exc:
                self.status.note(f"wal reset could not remove {name}: {exc!r}")
        self._next_segment = 0


# -- the checkpoint store ----------------------------------------------------


def _encode_pipeline_checkpoint(obj: Any, meta: Dict[str, Any]) -> bytes:
    return wire.encode_checkpoint(obj, meta)


def _decode_pipeline_checkpoint(payload: bytes) -> Tuple[Any, Dict[str, Any]]:
    return wire.decode_checkpoint(payload)


class CheckpointStore:
    """Atomic, generational persistence for full-state snapshots.

    Layout inside ``directory``::

        MANIFEST            -> newest generation (framed, CRC-protected)
        gen-00000007.ckpt   -> header + one framed payload
        gen-00000006.ckpt   -> previous generation (fallback)
        gen-00000005.ckpt.corrupt   -> quarantined by a failed load

    :meth:`save` writes the new generation to a dot-prefixed temp file,
    fsyncs, ``os.replace``\\ s it into place, then updates MANIFEST the
    same way — a crash at any instruction leaves either the old state
    or the new state fully intact, never a half state.  :meth:`load`
    verifies whatever the manifest names and walks backward through
    older generations when verification fails, quarantining each
    corrupt file as it goes.

    ``token`` fingerprints the run configuration (system, seed, scale,
    ...): state recorded under a different token is ignored rather than
    resumed into the wrong stream.  By default payloads are
    :class:`PipelineCheckpoint`\\ s; pass ``encode``/``decode`` to store
    other state bundles (the service's parked tenants do).
    """

    MANIFEST = "MANIFEST"
    GENERATION_TEMPLATE = "gen-{:08d}.ckpt"

    def __init__(
        self,
        directory: str,
        token: str = "",
        keep: int = 2,
        fs: Optional[RealFilesystem] = None,
        status: Optional[DurabilityStatus] = None,
        encode: Callable[[Any, Dict[str, Any]], bytes] = (
            _encode_pipeline_checkpoint
        ),
        decode: Callable[[bytes], Tuple[Any, Dict[str, Any]]] = (
            _decode_pipeline_checkpoint
        ),
    ):
        if keep < 1:
            raise ValueError("keep must be at least 1 generation")
        self.directory = str(directory)
        self.token = token
        self.keep = keep
        self.fs = fs if fs is not None else default_filesystem()
        self.status = status if status is not None else DurabilityStatus()
        self._encode = encode
        self._decode = decode
        self.generation = self._newest_generation()
        self.saved = 0

    # -- naming ------------------------------------------------------------

    def _generation_name(self, generation: int) -> str:
        return self.GENERATION_TEMPLATE.format(generation)

    def _generation_index(self, name: str) -> Optional[int]:
        if not (name.startswith("gen-") and name.endswith(".ckpt")):
            return None
        digits = name[len("gen-"):-len(".ckpt")]
        return int(digits) if digits.isdigit() else None

    def _generations_on_disk(self) -> List[int]:
        if not self.fs.exists(self.directory):
            return []
        return sorted(
            index
            for name in self.fs.listdir(self.directory)
            if (index := self._generation_index(name)) is not None
        )

    def _newest_generation(self) -> int:
        found = self._generations_on_disk()
        return found[-1] if found else 0

    # -- saving ------------------------------------------------------------

    def save(self, payload: Any) -> bool:
        """Persist one generation atomically; ``True`` on success.

        Failure latches degraded mode and counts the checkpoint as
        unpersisted; the caller's in-memory copy stays authoritative.
        """
        generation = self.generation + 1
        meta = {"token": self.token, "generation": generation}
        try:
            blob = (
                wire.file_header(wire.CHECKPOINT_MAGIC)
                + self._encode(payload, meta)
            )
        except Exception as exc:
            self.status.latch("checkpoint encode", exc)
            self.status.unpersisted_checkpoints += 1
            return False
        name = self._generation_name(generation)
        final_path = os.path.join(self.directory, name)
        tmp_path = os.path.join(self.directory, f".{name}.tmp")
        try:
            self.fs.ensure_dir(self.directory)
            self.fs.write_bytes(tmp_path, blob, sync=True)
            self.fs.replace(tmp_path, final_path)
            self._write_manifest(
                {"token": self.token, "generation": generation,
                 "file": name, "complete": False}
            )
            self.fs.fsync_dir(self.directory)
        except OSError as exc:
            self.status.latch("checkpoint save", exc)
            self.status.unpersisted_checkpoints += 1
            try:
                if self.fs.exists(tmp_path):
                    self.fs.remove(tmp_path)
            except OSError:
                pass
            return False
        self.generation = generation
        self.saved += 1
        self._prune()
        return True

    def _write_manifest(self, fields: Dict[str, Any]) -> None:
        blob = wire.encode_manifest(fields)
        tmp_path = os.path.join(self.directory, f".{self.MANIFEST}.tmp")
        self.fs.write_bytes(tmp_path, blob, sync=True)
        self.fs.replace(tmp_path, os.path.join(self.directory, self.MANIFEST))

    def _prune(self) -> None:
        for generation in self._generations_on_disk()[:-self.keep]:
            path = os.path.join(
                self.directory, self._generation_name(generation)
            )
            try:
                self.fs.remove(path)
            except OSError as exc:
                self.status.note(
                    f"could not prune generation {generation}: {exc!r}"
                )

    def mark_complete(self) -> bool:
        """Record that the run this state belongs to finished cleanly;
        :meth:`load` then reports nothing to resume."""
        try:
            self.fs.ensure_dir(self.directory)
            self._write_manifest(
                {"token": self.token, "generation": self.generation,
                 "file": self._generation_name(self.generation),
                 "complete": True}
            )
        except OSError as exc:
            self.status.latch("checkpoint mark-complete", exc)
            return False
        return True

    # -- loading -----------------------------------------------------------

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        path = os.path.join(self.directory, self.MANIFEST)
        try:
            if not self.fs.exists(path):
                return None
            return wire.decode_manifest(self.fs.read_bytes(path))
        except (OSError, wire.WireError) as exc:
            self.status.note(f"manifest unreadable ({exc!r}); "
                             "falling back to a directory scan")
            return None

    def load(self) -> Optional[Any]:
        """The newest verifiable payload, or ``None`` (fresh start).

        Wrong-token state is ignored; corrupt generations are renamed
        ``*.corrupt`` and the previous generation is tried — exactly the
        fallback the manifest's ``keep`` window exists for.
        """
        manifest = self._read_manifest()
        if manifest is not None and manifest.get("token") != self.token:
            self.status.note(
                "state belongs to a different run configuration "
                f"(token {manifest.get('token')!r}); starting fresh"
            )
            return None
        if manifest is not None and manifest.get("complete"):
            return None
        candidates = self._generations_on_disk()[::-1]  # newest first
        for generation in candidates:
            name = self._generation_name(generation)
            path = os.path.join(self.directory, name)
            try:
                data = self.fs.read_bytes(path)
                wire.check_header(data, wire.CHECKPOINT_MAGIC)
                payloads, _end, error = wire.scan_frames(data)
                if error is not None or len(payloads) != 1:
                    raise wire.WireError(
                        error or f"{len(payloads)} frames in one generation"
                    )
                payload, meta = self._decode(payloads[0])
            except (OSError, wire.WireError, pickle.UnpicklingError) as exc:
                self._quarantine(name, exc)
                continue
            if meta.get("token") != self.token:
                self.status.note(
                    f"generation {generation} belongs to a different run "
                    "configuration; ignored"
                )
                continue
            self.generation = max(self.generation, generation)
            return payload
        return None

    def _quarantine(self, name: str, why: BaseException) -> None:
        path = os.path.join(self.directory, name)
        try:
            self.fs.replace(path, path + ".corrupt")
            self.status.note(f"generation {name} quarantined: {why}")
        except OSError as exc:
            self.status.note(
                f"generation {name} corrupt ({why}) and could not be "
                f"quarantined: {exc!r}"
            )


def recover_checkpoint(
    state_dir: str, token: str = ""
) -> Optional[PipelineCheckpoint]:
    """Convenience scanner: the newest verifiable pipeline checkpoint
    under ``state_dir``, or ``None`` when there is nothing (valid) to
    resume."""
    return CheckpointStore(state_dir, token=token).load()

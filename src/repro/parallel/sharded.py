"""Process-pool sharded tagging with crash supervision.

The tagger is the pipeline's hot path and embarrassingly parallel: rule
matching touches one record at a time, and Liang et al. [DSN'05] filter
per-node partitions independently, which licenses tagging shards of the
stream in any order as long as the *filter* still consumes the reassembled
stream sequentially.  :class:`ShardedTagger` implements exactly that
split: record batches fan out to ``N`` worker processes, each of which
compiled the ruleset once at startup, and an :class:`~repro.parallel.
merge.OrderedMerge` reassembles outcomes into submission order for the
single sequential Algorithm 3.1 consumer.

Since the stage-engine refactor, :class:`ShardedTagger` is the machinery
behind two execution drivers
(:class:`~repro.engine.drivers.ShardedDriver`, and
:class:`~repro.engine.drivers.BoundedDriver` when a bounded run also
shards): the drivers own admission/stats/severity/filter scheduling and
call :meth:`ShardedTagger.tag_batches` for the fan-out/merge cycle, so
the pool's ordering and crash-retry guarantees are shared rather than
reimplemented per loop.

Crash handling follows the supervisor doctrine of
:mod:`repro.resilience`: a worker process that dies mid-batch (OOM
killer, segfaulting regex engine, injected test fault) produced **no**
output for that batch — outcomes only exist once a future resolves — so
the parent replays the batch *exactly once* through an in-parent serial
:class:`~repro.core.tagging.Tagger` built from the same ruleset handle.
Replay-once is therefore duplicate-free by construction, and the
:class:`ShardStats` accounting makes the claim auditable.
"""

from __future__ import annotations

import os
from array import array
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.categories import Alert
from ..core.tagging import BatchOutcome, RulesetHandle, Tagger
from ..logmodel.record import LogRecord
from .config import ParallelConfig
from .merge import OrderedMerge

#: Record body the test-fault hook recognizes: a worker that sees it dies
#: mid-batch via ``os._exit``, modeling a hard crash (no cleanup, no
#: partial output).  Inert unless ``ParallelConfig.enable_test_faults``.
KILL_SENTINEL = "__REPRO_KILL_WORKER__"

#: The sentinel as it appears in a facility-prefixed match text (the
#: worker sees texts, not records, since the byte-buffer boundary).
_KILL_TEXT_SUFFIX = f": {KILL_SENTINEL}"


class WorkerCrashError(RuntimeError):
    """A worker process died and batch retry was disabled (or failed)."""

    def __init__(self, batch_index: int, detail: str):
        super().__init__(
            f"worker process died while tagging batch {batch_index}: {detail}"
        )
        self.batch_index = batch_index


@dataclass
class ShardStats:
    """Exact accounting for one sharded tagging run."""

    workers: int = 0
    batches: int = 0
    records: int = 0
    alerts: int = 0
    worker_crashes: int = 0      # pool breakages observed
    batches_retried: int = 0     # batches replayed serially in-parent
    pools_recreated: int = 0
    merge_peak: int = 0          # peak batches buffered by the merge

    def summary_line(self) -> str:
        text = (
            f"parallel:          {self.workers} workers, "
            f"{self.batches:,} batches"
        )
        if self.worker_crashes:
            text += (
                f", {self.worker_crashes} worker crash(es), "
                f"{self.batches_retried} batch(es) retried serially"
            )
        return text


# ---------------------------------------------------------------------------
# The byte-buffer boundary.
#
# Pickling per-record LogRecord objects was the dominant cost of the
# sharded schedule (~2.6 us/record each way — more than the entire
# serial per-record budget).  The boundary now ships one length-prefixed
# byte buffer per batch: the UTF-8 bytes of every record's match text,
# concatenated, preceded by an array of per-text character lengths.  The
# worker decodes the blob once, slices texts by length, and returns only
# compact ``(position, rule_index)`` hits — the parent rebuilds Alert
# objects from the records it already holds, so nothing heavyweight
# crosses the process boundary in either direction.
#
# Records whose match text is not a string (corrupt non-str bodies with
# no facility prefix) cannot travel as text; the parent resolves those
# locally through the same serial Tagger used for crash replay, which
# reproduces the strict path's exception reprs exactly.
# ---------------------------------------------------------------------------

_LENGTH_TYPECODE = "I"


def _match_texts(records: Sequence[LogRecord]) -> List[str]:
    """Every record's ``full_text()``, computed inline (hot path)."""
    return [
        f"{r.facility}: {r.body}" if r.facility else r.body for r in records
    ]


def _encode_texts(texts: Sequence[str]) -> Tuple[bytes, bytes]:
    """One batch's texts as (length-prefix array bytes, UTF-8 blob).

    Lengths are in *characters*: the worker decodes the whole blob once
    (UTF-8 is stateless, so the concatenated decode equals per-text
    decodes) and slices the string, which is far cheaper than decoding
    per text.  ``surrogatepass`` round-trips lone surrogates that
    corruption (or a property-based test) may have planted in a body.
    """
    lens = array(_LENGTH_TYPECODE, map(len, texts))
    blob = "".join(texts).encode("utf-8", "surrogatepass")
    return lens.tobytes(), blob


# Worker-process side.  Module-level state: each worker compiles the
# ruleset exactly once (the initializer), then tags batches forever.

_WORKER_TAGGER: Optional[Tagger] = None
_WORKER_TEST_FAULTS = False


def _init_worker(handle: RulesetHandle, enable_test_faults: bool) -> None:
    global _WORKER_TAGGER, _WORKER_TEST_FAULTS
    _WORKER_TAGGER = handle.tagger()
    _WORKER_TEST_FAULTS = enable_test_faults


#: Compact wire form of one batch's outcome: (size, ((pos, rule), ...),
#: ((pos, error_repr), ...)).  Rule indices instead of Alert objects.
_RawOutcome = Tuple[int, Tuple[Tuple[int, int], ...], Tuple[Tuple[int, str], ...]]


def _tag_text_batch(
    index: int, lens_bytes: bytes, blob: bytes
) -> Tuple[int, _RawOutcome]:
    assert _WORKER_TAGGER is not None, "worker initializer did not run"
    lens = array(_LENGTH_TYPECODE)
    lens.frombytes(lens_bytes)
    decoded = blob.decode("utf-8", "surrogatepass")
    match_index = _WORKER_TAGGER._fast.match_index
    hits: List[Tuple[int, int]] = []
    errors: List[Tuple[int, str]] = []
    pos = 0
    if _WORKER_TEST_FAULTS:
        probe = 0
        for length in lens:
            text = decoded[probe:probe + length]
            probe += length
            if text == KILL_SENTINEL or text.endswith(_KILL_TEXT_SUFFIX):
                # A hard mid-batch death: no exception travels back, the
                # parent sees only a broken pool.
                os._exit(17)
    for i, length in enumerate(lens):
        text = decoded[pos:pos + length]
        pos += length
        try:
            rule = match_index(text)
        except Exception as exc:  # pragma: no cover - str input never raises
            errors.append((i, repr(exc)))
            continue
        if rule is not None:
            hits.append((i, rule))
    return index, (len(lens), tuple(hits), tuple(errors))


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


@dataclass
class _Inflight:
    """Bookkeeping for one submitted batch until its outcome lands."""

    index: int
    records: Sequence[LogRecord]
    #: Locally-resolved entries for records whose text could not ship:
    #: ``(position, alert_or_None, error_repr_or_None)``.
    local: Optional[List[Tuple[int, Optional[Alert], Optional[str]]]] = None
    #: Original position of each shipped text when some records stayed
    #: local; ``None`` means the identity mapping (the common case).
    shipped_map: Optional[List[int]] = None
    retried: bool = False


class ShardedTagger:
    """Fan record batches out to worker processes; merge outcomes in order.

    Parameters
    ----------
    ruleset:
        A registered system short name or a
        :class:`~repro.core.tagging.RulesetHandle`.  Only named system
        rulesets can cross the process boundary (compiled patterns and
        body factories do not pickle).
    config:
        The :class:`~repro.parallel.config.ParallelConfig` knobs.

    Use as a context manager (or call :meth:`close`); the pool is created
    lazily on first use and survives across multiple :meth:`tag_batches`
    calls, so property-based tests can amortize pool startup.
    """

    def __init__(
        self,
        ruleset: Union[str, RulesetHandle],
        config: Optional[ParallelConfig] = None,
    ):
        self.handle = (
            ruleset if isinstance(ruleset, RulesetHandle)
            else RulesetHandle(ruleset)
        )
        # Fail fast on unknown systems; the rule order of the resolved
        # ruleset doubles as the wire contract (workers return indices
        # into this tuple).
        self._categories = tuple(self.handle.resolve().categories)
        self.config = config or ParallelConfig()
        self.stats = ShardStats(workers=self.config.resolved_workers())
        self._pool: Optional[ProcessPoolExecutor] = None
        self._fallback: Optional[Tagger] = None
        self._closed = False

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("ShardedTagger is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.resolved_workers(),
                mp_context=get_context(self.config.resolved_context()),
                initializer=_init_worker,
                initargs=(self.handle, self.config.enable_test_faults),
            )
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self.stats.pools_recreated += 1

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._closed = True

    def __enter__(self) -> "ShardedTagger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- crash supervision -------------------------------------------------

    def _serial_tagger(self) -> Tagger:
        if self._fallback is None:
            self._fallback = self.handle.tagger()
        return self._fallback

    def _retry_serially(self, task: _Inflight, detail: str) -> BatchOutcome:
        """The exactly-once replay path for a batch whose worker died."""
        if not self.config.retry_failed_batches or task.retried:
            raise WorkerCrashError(task.index, detail)
        task.retried = True
        self.stats.batches_retried += 1
        return self._serial_tagger().tag_batch(task.records)

    # -- the boundary ------------------------------------------------------

    def _prepare_payload(self, task: _Inflight) -> Tuple[bytes, bytes]:
        """Encode one batch for the wire, resolving locally the records
        whose match text cannot travel as text (non-str bodies with no
        facility prefix — the strict path's ``TypeError`` cases).  Local
        resolution uses the same serial tagger as crash replay, so the
        error reprs are byte-identical to the serial schedule's."""
        records = task.records
        texts = _match_texts(records)
        try:
            return _encode_texts(texts)
        except TypeError:
            pass
        tagger = self._serial_tagger()
        local: List[Tuple[int, Optional[Alert], Optional[str]]] = []
        shipped_map: List[int] = []
        shipped: List[str] = []
        for i, text in enumerate(texts):
            if isinstance(text, str):
                shipped_map.append(i)
                shipped.append(text)
                continue
            try:
                alert = tagger.tag(records[i])
            except Exception as exc:
                local.append((i, None, repr(exc)))
            else:
                if alert is not None:  # pragma: no cover - non-str always raises
                    local.append((i, alert, None))
        task.local = local
        task.shipped_map = shipped_map
        return _encode_texts(shipped)

    def _rebuild_outcome(self, task: _Inflight, raw: _RawOutcome) -> BatchOutcome:
        """Expand a worker's compact ``(pos, rule)`` outcome back into
        the :class:`BatchOutcome` contract, building Alert objects from
        the records the parent already holds."""
        _size, raw_hits, raw_errors = raw
        records = task.records
        categories = self._categories
        shipped_map = task.shipped_map
        if shipped_map is None:
            hits = tuple(
                (i, Alert.from_record(records[i], categories[rule]))
                for i, rule in raw_hits
            )
            return BatchOutcome(
                size=len(records), hits=hits, errors=tuple(raw_errors)
            )
        entries: List[Tuple[int, Optional[Alert], Optional[str]]] = [
            (
                shipped_map[i],
                Alert.from_record(records[shipped_map[i]], categories[rule]),
                None,
            )
            for i, rule in raw_hits
        ]
        entries.extend((shipped_map[i], None, err) for i, err in raw_errors)
        entries.extend(task.local or ())
        entries.sort(key=lambda entry: entry[0])
        return BatchOutcome(
            size=len(records),
            hits=tuple((i, alert) for i, alert, _err in entries
                       if alert is not None),
            errors=tuple((i, err) for i, _alert, err in entries
                         if err is not None),
        )

    # -- the pipeline ------------------------------------------------------

    def tag_batches(
        self, batches: Iterable[Sequence[LogRecord]]
    ) -> Iterator[Tuple[Sequence[LogRecord], BatchOutcome]]:
        """Tag batches in parallel; yield ``(records, outcome)`` pairs in
        the exact order the batches were submitted.

        At most ``config.max_inflight`` batches are submitted-but-unyielded
        at any moment, which bounds parent memory and the merge window.
        A broken worker pool fails every in-flight future; each affected
        batch is replayed serially exactly once (see
        :meth:`_retry_serially`) and the pool is rebuilt before new
        submissions.
        """
        source = iter(batches)
        window = self.config.resolved_inflight()
        merge = OrderedMerge(window)
        inflight: Dict[object, _Inflight] = {}
        by_index: Dict[int, Sequence[LogRecord]] = {}
        next_index = 0
        next_yield = 0
        exhausted = False

        def submit(task: _Inflight) -> None:
            """Submit one batch, absorbing a pool that broke since the
            last round: the batch replays serially (exactly once) and a
            fresh pool serves the next submission."""
            lens_bytes, blob = self._prepare_payload(task)
            try:
                future = self._ensure_pool().submit(
                    _tag_text_batch, task.index, lens_bytes, blob
                )
            except BrokenProcessPool as exc:
                self.stats.worker_crashes += 1
                self._discard_pool()
                merge.add(task.index, self._retry_serially(task, repr(exc)))
                return
            inflight[future] = task

        while True:
            # Keep the pool fed, bounded by the in-flight window (which
            # also bounds the merge: inflight + buffered <= window).
            while not exhausted and len(inflight) + len(merge) < window:
                try:
                    records = next(source)
                except StopIteration:
                    exhausted = True
                    break
                task = _Inflight(index=next_index, records=records)
                by_index[next_index] = records
                next_index += 1
                self.stats.batches += 1
                self.stats.records += len(records)
                submit(task)

            if not inflight and not merge and exhausted:
                break

            if inflight:
                done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    task = inflight.pop(future)
                    try:
                        index, raw = future.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        self.stats.worker_crashes += 1
                        merge.add(
                            task.index, self._retry_serially(task, repr(exc))
                        )
                        continue
                    merge.add(index, self._rebuild_outcome(task, raw))
                if broken:
                    # The pool is poisoned: the executor fails every
                    # sibling future too.  Collect each one — normal
                    # result if it finished before the breakage, serial
                    # replay otherwise — then rebuild the pool.
                    for future, task in list(inflight.items()):
                        del inflight[future]
                        try:
                            index, raw = future.result()
                        except BrokenProcessPool as exc:
                            merge.add(
                                task.index,
                                self._retry_serially(task, repr(exc)),
                            )
                        else:
                            merge.add(index, self._rebuild_outcome(task, raw))
                    self._discard_pool()

            for outcome in merge.drain():
                records = by_index.pop(next_yield)
                next_yield += 1
                self.stats.alerts += len(outcome.hits)
                yield records, outcome

        merge.assert_empty()
        if self.stats.merge_peak < merge.peak_occupancy:
            self.stats.merge_peak = merge.peak_occupancy

    def tag_stream(
        self, records: Iterable[LogRecord], dead_letters=None
    ) -> Iterator[Alert]:
        """Drop-in parallel equivalent of :meth:`Tagger.tag_stream`.

        Yields alerts in original stream order.  Per-record failures go
        to ``dead_letters`` (reason ``"tagger-error"``) when attached,
        else re-raise in the parent as :class:`TaggerErrorReplay` —
        matching the serial contract that a bare stream is strict.
        """
        from ..resilience.deadletter import REASON_TAGGER_ERROR

        for batch, outcome in self.tag_batches(
            chunked(records, self.config.batch_size)
        ):
            errors = outcome.error_map()
            hits = outcome.hit_map()
            for i in range(outcome.size):
                if i in errors:
                    if dead_letters is None:
                        raise TaggerErrorReplay(errors[i])
                    dead_letters.put(batch[i], REASON_TAGGER_ERROR, errors[i])
                    continue
                alert = hits.get(i)
                if alert is not None:
                    yield alert


class TaggerErrorReplay(RuntimeError):
    """A record crashed the rules engine inside a worker process.

    The original exception object cannot cross the process boundary
    reliably, so the parent re-raises its ``repr`` — same strictness as
    the serial path, different exception type.
    """


def chunked(
    records: Iterable[LogRecord], size: int
) -> Iterator[List[LogRecord]]:
    """Split a record stream into lists of at most ``size`` records."""
    if size < 1:
        raise ValueError("batch size must be at least 1")
    batch: List[LogRecord] = []
    for record in records:
        batch.append(record)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


__all__ = [
    "KILL_SENTINEL",
    "ShardStats",
    "ShardedTagger",
    "TaggerErrorReplay",
    "WorkerCrashError",
    "chunked",
]

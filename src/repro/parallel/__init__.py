"""Parallel execution layer: sharded tagging behind a sequential filter.

The paper processed ~1 billion messages / 111.67 GB of raw logs; this
package removes the one-core cap on our equivalent hot path.  Tagging is
per-record and order-free, so it shards across worker processes
(:class:`ShardedTagger`); the spatio-temporal filter (Algorithm 3.1) is
order-*defined*, so it stays the single sequential consumer of the
order-preserving merge.  Serial and parallel runs are therefore
byte-for-byte equivalent — a claim the differential test harness
(``tests/parallel/``) enforces, not just asserts.

Entry points: ``api.run_stream(..., parallel=ParallelConfig(...))``,
``api.run_system(..., parallel=...)``, and the CLI's
``study --workers N --batch-size B``.
"""

from .config import ParallelConfig, default_mp_context, default_workers
from .merge import MergeOrderError, OrderedMerge
from .sharded import (
    KILL_SENTINEL,
    ShardStats,
    ShardedTagger,
    TaggerErrorReplay,
    WorkerCrashError,
    chunked,
)

__all__ = [
    "KILL_SENTINEL",
    "MergeOrderError",
    "OrderedMerge",
    "ParallelConfig",
    "ShardStats",
    "ShardedTagger",
    "TaggerErrorReplay",
    "WorkerCrashError",
    "chunked",
    "default_mp_context",
    "default_workers",
]

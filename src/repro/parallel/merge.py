"""Order-preserving reassembly of batches completed out of order.

Workers finish batches in whatever order scheduling allows, but the
spatio-temporal filter (Algorithm 3.1) demands the original stream order:
its clear-table semantics are defined over a time-sorted sequence, so the
merge — not the workers — is what keeps parallel output byte-identical to
serial output.  :class:`OrderedMerge` accepts ``(index, item)`` pairs in
any order and releases items strictly by index.

The ready-side buffer reuses
:class:`~repro.resilience.backpressure.BoundedQueue`, so merge occupancy
shows up in the same pressure/peak metrics the rest of the pipeline
reports, and the bound is explicit: a merge window can never exceed the
in-flight budget the caller declared.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from ..resilience.backpressure import BoundedQueue


class MergeOrderError(RuntimeError):
    """An index arrived twice, or arrived after it was already released."""


class OrderedMerge:
    """Reassemble an indexed stream into contiguous submission order.

    Parameters
    ----------
    window:
        Maximum items held (out-of-order arrivals plus ready items not
        yet drained).  Callers that bound their in-flight submissions by
        the same number can never overflow the merge.
    """

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._held: Dict[int, Any] = {}
        self._ready: BoundedQueue = BoundedQueue("parallel-merge", window)
        self.next_index = 0          # next index to become ready
        self._next_release = 0       # next index to leave drain()

    def __len__(self) -> int:
        return len(self._held) + len(self._ready)

    @property
    def pending(self) -> int:
        """Items held waiting for a predecessor."""
        return len(self._held)

    @property
    def peak_occupancy(self) -> int:
        return self._ready.peak_occupancy

    @property
    def at_barrier(self) -> bool:
        """True when nothing is buffered: every accepted item has been
        released in order.  This is the point where a consumer's state
        covers a contiguous prefix of the stream — the condition the
        engine's sharded driver requires before taking a checkpoint."""
        return not self._held and not self._ready

    def add(self, index: int, item: Any) -> None:
        """Accept one completed item; indexes must be unique."""
        if index < self.next_index or index in self._held:
            raise MergeOrderError(f"batch index {index} delivered twice")
        if len(self) >= self.window:
            raise MergeOrderError(
                f"merge window {self.window} exceeded; bound submissions "
                "by the merge window"
            )
        self._held[index] = item
        while self.next_index in self._held:
            item = self._held.pop(self.next_index)
            if not self._ready.put(item):  # unreachable: len() bound above
                self._held[self.next_index] = item
                raise MergeOrderError("ready queue refused within window")
            self.next_index += 1

    def drain(self) -> Iterator[Any]:
        """Yield every item that is ready (contiguous from the front)."""
        while self._ready:
            self._next_release += 1
            yield self._ready.get()

    def assert_empty(self) -> None:
        """Raise if anything is still buffered (a lost batch)."""
        if not self.at_barrier:
            raise MergeOrderError(
                f"merge finished with {len(self)} undelivered item(s); "
                f"waiting on index {self.next_index}"
            )

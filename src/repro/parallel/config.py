"""Configuration for the parallel sharded-tagging execution layer.

One frozen object describes how a run fans tagging out to worker
processes: how many workers, how many records per shipped batch, how many
batches may be in flight at once (the memory bound), which
multiprocessing start method to use, and how a crashed worker's batch is
handled.  It travels through :func:`repro.api.run_stream` and the
CLI (``study --workers/--batch-size``) the same way
:class:`~repro.resilience.backpressure.BackpressureConfig` does.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, replace


def default_workers() -> int:
    """Worker count when unspecified: one per CPU, minimum two.

    Two is the floor so that ``ParallelConfig()`` exercises genuine
    inter-process behavior even on a single-core host — there is no
    speedup to be had there, but the semantics must hold everywhere.
    """
    return max(2, os.cpu_count() or 1)


def default_mp_context() -> str:
    """``fork`` where the platform offers it (cheap worker startup, and
    the rulesets are compiled read-only before forking), else ``spawn``."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


@dataclass(frozen=True)
class ParallelConfig:
    """How to shard tagging across worker processes.

    Attributes
    ----------
    workers:
        Worker process count; ``0`` means :func:`default_workers`.
    batch_size:
        Records per batch shipped to a worker.  Larger batches amortize
        pickling; smaller batches bound the damage of a worker crash and
        keep the order-preserving merge shallow.
    max_inflight:
        Maximum batches submitted but not yet yielded; ``0`` means
        ``2 * workers``.  This bounds parent-side memory: at most
        ``max_inflight * batch_size`` records are buffered for the
        order-preserving merge, no matter how fast the source is.
    mp_context:
        Multiprocessing start method (``"fork"``/``"spawn"``/
        ``"forkserver"``); empty string means :func:`default_mp_context`.
    retry_failed_batches:
        When a worker process dies mid-batch, replay the batch **exactly
        once** through an in-parent serial tagger (the supervisor path).
        When ``False`` the crash propagates as
        :class:`~repro.parallel.sharded.WorkerCrashError`.
    enable_test_faults:
        Test hook: workers recognize the kill sentinel
        (:data:`~repro.parallel.sharded.KILL_SENTINEL`) and die mid-batch,
        so the fault-path suite can exercise real process crashes
        deterministically.  Never enabled outside tests.
    """

    workers: int = 0
    batch_size: int = 1024
    max_inflight: int = 0
    mp_context: str = ""
    retry_failed_batches: bool = True
    enable_test_faults: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.max_inflight < 0:
            raise ValueError("max_inflight must be non-negative")

    def resolved_workers(self) -> int:
        return self.workers if self.workers > 0 else default_workers()

    def resolved_inflight(self) -> int:
        if self.max_inflight > 0:
            return max(self.max_inflight, 1)
        return 2 * self.resolved_workers()

    def resolved_context(self) -> str:
        return self.mp_context or default_mp_context()

    def with_workers(self, workers: int) -> "ParallelConfig":
        return replace(self, workers=workers)

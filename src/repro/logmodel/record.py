"""Canonical log record model.

Every subsystem in this library — the synthetic generators, the parsers for
the five machines' native formats, the alert taggers, and the filters —
speaks in terms of :class:`LogRecord`.  The paper studies logs that differ
wildly in structure (BSD syslog on Thunderbird/Spirit/Liberty, DDN controller
lines and RAS events on Red Storm, a DB2 RAS database on BG/L), so the
canonical record keeps the union of fields and marks the ones a given format
does not carry as ``None``.

Timestamps are POSIX epoch seconds stored as ``float``.  Syslog has
one-second granularity; BG/L's RAS database records microseconds (the paper,
Section 3.1, notes "the time granularity for BG/L logs is down to the
microsecond, unlike the one-second granularity of typical syslogs"), which a
float represents exactly for the epochs involved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class SyslogSeverity(enum.IntEnum):
    """BSD syslog severity levels (RFC 3164), most severe first.

    Only Red Storm among the Sandia machines stored syslog severities
    (paper, Section 3.2); Thunderbird, Spirit, and Liberty did not record
    this field at all.
    """

    EMERG = 0
    ALERT = 1
    CRIT = 2
    ERR = 3
    WARNING = 4
    NOTICE = 5
    INFO = 6
    DEBUG = 7

    @classmethod
    def from_label(cls, label: str) -> "SyslogSeverity":
        """Parse a severity label such as ``"crit"`` (case-insensitive)."""
        try:
            return cls[label.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown syslog severity label: {label!r}") from None


class RasSeverity(enum.IntEnum):
    """BG/L RAS event severities, most severe first (paper, Table 5)."""

    FATAL = 0
    FAILURE = 1
    SEVERE = 2
    ERROR = 3
    WARNING = 4
    INFO = 5

    @classmethod
    def from_label(cls, label: str) -> "RasSeverity":
        """Parse a RAS severity label such as ``"FATAL"`` (case-insensitive)."""
        try:
            return cls[label.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown RAS severity label: {label!r}") from None


class Channel(enum.Enum):
    """The logging path a record traveled (paper, Section 3.1).

    The five machines use three distinct transport architectures, and the
    path matters: UDP syslog loses messages under contention, the Red Storm
    RAS network uses reliable TCP, and BG/L compute chips buffer errors
    locally until the JTAG mailbox poll collects them.
    """

    SYSLOG_UDP = "syslog-udp"
    SYSLOG_LOCAL = "syslog-local"
    RAS_TCP = "ras-tcp"
    JTAG_MAILBOX = "jtag-mailbox"
    DDN = "ddn"


@dataclass(frozen=True)
class LogRecord:
    """One log message, normalized across the five systems' formats.

    Attributes
    ----------
    timestamp:
        POSIX epoch seconds.  Fractional for BG/L (microsecond granularity);
        whole seconds for syslog-based systems.
    source:
        The reporting component: a node name (``"sn373"``, ``"tbird-admin1"``),
        a BG/L location string, or a DDN controller id.  May be an empty
        string when the source field was corrupted in transit — the paper's
        Figure 2(b) shows a cluster of messages "whose source field was
        corrupted, thwarting attribution".
    facility:
        The reporting program or subsystem (``"kernel"``, ``"pbs_mom"``,
        ``"ciod"``, ``"MMCS"``...).  Empty when unknown.
    body:
        The unstructured message body.
    system:
        Which supercomputer produced the record (``"bgl"``, ``"thunderbird"``,
        ``"redstorm"``, ``"spirit"``, ``"liberty"``).
    severity:
        Severity label as recorded, or ``None`` when the format does not
        carry one (Thunderbird/Spirit/Liberty syslogs).  Stored as the raw
        string label; use :meth:`syslog_severity` / :meth:`ras_severity` for
        the typed view.
    channel:
        Which logging path the record traveled.
    corrupted:
        ``True`` when the generator injected corruption or a parser detected
        structural damage (truncation, splice, garbled fields).
    raw:
        The original unparsed line when the record came from a parser, else
        ``None``.
    """

    timestamp: float
    source: str
    facility: str
    body: str
    system: str = ""
    severity: Optional[str] = None
    channel: Channel = Channel.SYSLOG_UDP
    corrupted: bool = False
    raw: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.timestamp, (int, float)):
            raise TypeError(f"timestamp must be a number, got {type(self.timestamp).__name__}")

    def syslog_severity(self) -> Optional[SyslogSeverity]:
        """The severity as a syslog level, or ``None`` if absent/foreign."""
        if self.severity is None:
            return None
        try:
            return SyslogSeverity.from_label(self.severity)
        except ValueError:
            return None

    def ras_severity(self) -> Optional[RasSeverity]:
        """The severity as a BG/L RAS level, or ``None`` if absent/foreign."""
        if self.severity is None:
            return None
        try:
            return RasSeverity.from_label(self.severity)
        except ValueError:
            return None

    def with_corruption(self, body: str, source: Optional[str] = None) -> "LogRecord":
        """A copy of this record with damaged fields and ``corrupted=True``."""
        fields = {"body": body, "corrupted": True}
        if source is not None:
            fields["source"] = source
        return replace(self, **fields)

    def full_text(self) -> str:
        """The facility-prefixed body, as it would appear after the hostname
        in a syslog line.  This is the string expert rules match against."""
        if self.facility:
            return f"{self.facility}: {self.body}"
        return self.body


SYSTEM_NAMES = ("bgl", "thunderbird", "redstorm", "spirit", "liberty")
"""Canonical short names for the five machines, in the paper's Table 1 order."""

"""Red Storm log formats.

Red Storm has several logging paths (paper, Section 3.1):

* **DDN path** — disk and RAID controller messages from the DDN subsystem
  travel a 100 Mbit network to a DDN-specific RAS machine running
  ``syslog-ng``.  These appear as syslog lines whose body starts with a DDN
  message code (``DMT_HINT``, ``DMT_310``, ``DMT_DINT``, ...).
* **Linux-node path** — login, Lustre I/O, and management nodes send
  ordinary syslog to a collector node.  Red Storm is the only Sandia system
  configured to *store* syslog severity (paper, Section 3.2), so its on-disk
  syslog format carries an explicit severity column::

      Mmm dd HH:MM:SS host SEVERITY facility: message body

* **RAS TCP path** — compute nodes, SeaStar NICs, and hierarchical
  management nodes send events over reliable TCP to the System Management
  Workstation (SMW).  This path "is not syslog and has no severity analog"
  (paper, Section 3.2).  Event lines look like::

      YYYY-MM-DD HH:MM:SS event_code src:::NODE svc:::NODE message body
"""

from __future__ import annotations

import calendar
import re
import time
from typing import Iterable, Iterator

from .record import Channel, LogRecord, SyslogSeverity
from .syslog import _FACILITY_RE, _MONTHS

_RS_SYSLOG_RE = re.compile(
    r"^(?P<mon>[A-Z][a-z]{2}) {1,2}(?P<day>\d{1,2}) "
    r"(?P<hh>\d{2}):(?P<mm>\d{2}):(?P<ss>\d{2}) "
    r"(?P<host>\S+) "
    r"(?P<sev>EMERG|ALERT|CRIT|ERR|WARNING|NOTICE|INFO|DEBUG) "
    r"(?P<rest>.*)$"
)

_RS_RAS_RE = re.compile(
    r"^(?P<yy>\d{4})-(?P<mo>\d{2})-(?P<dd>\d{2}) "
    r"(?P<hh>\d{2}):(?P<mm>\d{2}):(?P<ss>\d{2}) "
    r"(?P<event>\S+) src:::(?P<src>\S*) svc:::(?P<svc>\S*)\s?(?P<body>.*)$"
)


class RedStormParseError(ValueError):
    """Raised in strict mode when a line matches no Red Storm format."""


def _corrupt_record(line: str, channel: Channel) -> LogRecord:
    return LogRecord(
        timestamp=0.0,
        source="",
        facility="",
        body=line,
        system="redstorm",
        channel=channel,
        corrupted=True,
        raw=line,
    )


def parse_redstorm_syslog_line(line: str, year: int, strict: bool = False) -> LogRecord:
    """Parse a severity-bearing Red Storm syslog line (DDN or Linux node)."""
    line = line.rstrip("\n")
    match = _RS_SYSLOG_RE.match(line)
    if match is None:
        if strict:
            raise RedStormParseError(f"not a Red Storm syslog line: {line!r}")
        return _corrupt_record(line, Channel.SYSLOG_UDP)
    mon = _MONTHS.get(match.group("mon"))
    if mon is None:
        if strict:
            raise RedStormParseError(f"bad month in: {line!r}")
        return _corrupt_record(line, Channel.SYSLOG_UDP)
    try:
        timestamp = float(
            calendar.timegm(
                (
                    year,
                    mon,
                    int(match.group("day")),
                    int(match.group("hh")),
                    int(match.group("mm")),
                    int(match.group("ss")),
                    0,
                    0,
                    0,
                )
            )
        )
    except ValueError:
        if strict:
            raise RedStormParseError(f"bad timestamp in: {line!r}") from None
        return _corrupt_record(line, Channel.SYSLOG_UDP)
    rest = match.group("rest")
    if rest.startswith("DMT_"):
        # DDN controller message: the DMT_* code is part of the body, not
        # a syslog facility ("DMT_HINT Warning: ..." must stay whole).
        facility, body = "", rest
        channel = Channel.DDN
    else:
        fac_match = _FACILITY_RE.match(rest)
        if fac_match is not None:
            facility, body = fac_match.group("fac"), fac_match.group("body")
        else:
            facility, body = "", rest
        channel = Channel.SYSLOG_UDP
    return LogRecord(
        timestamp=timestamp,
        source=match.group("host"),
        facility=facility,
        body=body,
        system="redstorm",
        severity=match.group("sev"),
        channel=channel,
        corrupted=False,
        raw=line,
    )


def parse_redstorm_ras_line(line: str, strict: bool = False) -> LogRecord:
    """Parse a Red Storm RAS (TCP/SMW) event line.  No severity field."""
    line = line.rstrip("\n")
    match = _RS_RAS_RE.match(line)
    if match is None:
        if strict:
            raise RedStormParseError(f"not a Red Storm RAS line: {line!r}")
        return _corrupt_record(line, Channel.RAS_TCP)
    try:
        timestamp = float(
            calendar.timegm(
                (
                    int(match.group("yy")),
                    int(match.group("mo")),
                    int(match.group("dd")),
                    int(match.group("hh")),
                    int(match.group("mm")),
                    int(match.group("ss")),
                    0,
                    0,
                    0,
                )
            )
        )
    except ValueError:
        if strict:
            raise RedStormParseError(f"bad timestamp in: {line!r}") from None
        return _corrupt_record(line, Channel.RAS_TCP)
    body = f"src:::{match.group('src')} svc:::{match.group('svc')}"
    trailing = match.group("body")
    if trailing:
        body = f"{body} {trailing}"
    return LogRecord(
        timestamp=timestamp,
        source=match.group("src"),
        facility=match.group("event"),
        body=body,
        system="redstorm",
        severity=None,
        channel=Channel.RAS_TCP,
        corrupted=False,
        raw=line,
    )


def parse_redstorm_line(line: str, year: int, strict: bool = False) -> LogRecord:
    """Dispatch a line to the matching Red Storm format parser."""
    if _RS_RAS_RE.match(line):
        return parse_redstorm_ras_line(line, strict=strict)
    return parse_redstorm_syslog_line(line, year, strict=strict)


def render_redstorm_line(record: LogRecord) -> str:
    """Render a record in the on-disk format matching its channel."""
    if record.corrupted and record.raw is not None:
        return record.raw
    tm = time.gmtime(record.timestamp)
    if record.channel is Channel.RAS_TCP:
        stamp = "%04d-%02d-%02d %02d:%02d:%02d" % (
            tm.tm_year, tm.tm_mon, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
        )
        # Facility holds the event code; body embeds the src:::/svc::: fields.
        return f"{stamp} {record.facility} {record.body}"
    stamp = "%s %2d %02d:%02d:%02d" % (
        calendar.month_abbr[tm.tm_mon], tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
    )
    severity = record.severity if record.severity else SyslogSeverity.INFO.name
    if record.facility:
        return f"{stamp} {record.source} {severity} {record.facility}: {record.body}"
    return f"{stamp} {record.source} {severity} {record.body}"


def parse_redstorm_stream(lines: Iterable[str], year: int) -> Iterator[LogRecord]:
    """Parse an iterable of mixed Red Storm lines lazily, skipping blanks."""
    for line in lines:
        if line.strip():
            yield parse_redstorm_line(line, year)

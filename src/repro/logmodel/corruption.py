"""Detection and classification of corrupted log lines.

The paper (Section 3.2.1, "Corruption") observed that "even on
supercomputers with highly engineered RAS systems, like BG/L and Red Storm,
log entries can be corrupted.  We saw messages truncated, partially
overwritten, and incorrectly timestamped."  The Thunderbird VAPI example
shows three corruption modes on a single message template:

* **truncation** — the line stops mid-token (``...VAPI_EAGAI``);
* **splice / partial overwrite** — the tail of one message is overwritten
  by the head of another (``...VAPI_EAure = no``,
  ``...VAPI_EAGSys/mosal_iobuf.c [126]: dump iobuf at ...``);
* **timestamp damage** — fields that should parse as dates do not.

This module classifies a damaged line relative to a set of known-good
message templates, which is what an analyst does by eye when deciding that
``VAPI_EAure = no`` is "that VAPI message, corrupted" rather than a new
category.  The classifier is intentionally conservative: it never labels a
line corrupted unless a structural check fails.
"""

from __future__ import annotations

import enum
import string
from dataclasses import dataclass
from typing import Optional, Sequence

from .record import LogRecord

_PRINTABLE = frozenset(string.printable)


class CorruptionKind(enum.Enum):
    """The structural damage modes the paper reports."""

    NONE = "none"
    TRUNCATED = "truncated"
    SPLICED = "spliced"
    GARBLED_SOURCE = "garbled-source"
    BAD_TIMESTAMP = "bad-timestamp"
    UNPARSEABLE = "unparseable"


@dataclass(frozen=True)
class CorruptionVerdict:
    """Result of classifying one record.

    Attributes
    ----------
    kind:
        The detected damage mode (``NONE`` for clean records).
    template:
        The known-good template the damaged body most plausibly derives
        from, when one was identified.
    matched_prefix:
        Length in characters of the common prefix with ``template``.
    """

    kind: CorruptionKind
    template: Optional[str] = None
    matched_prefix: int = 0

    @property
    def is_corrupted(self) -> bool:
        return self.kind is not CorruptionKind.NONE


def common_prefix_length(a: str, b: str) -> int:
    """Length of the longest common prefix of two strings."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit


def best_template_match(body: str, templates: Sequence[str]) -> tuple[Optional[str], int]:
    """The template sharing the longest prefix with ``body``.

    Returns ``(template, prefix_length)``; ``(None, 0)`` when no template
    shares any prefix.
    """
    best: Optional[str] = None
    best_len = 0
    for template in templates:
        length = common_prefix_length(body, template)
        if length > best_len:
            best, best_len = template, length
    return best, best_len


def classify_body(
    body: str,
    templates: Sequence[str],
    min_prefix: int = 16,
) -> CorruptionVerdict:
    """Classify a message body against known-good templates.

    A body that exactly equals a template (or extends one at a template's
    variable tail) is clean.  A body that matches a long prefix of a
    template but then stops is *truncated*; one that matches a long prefix
    and then diverges into different text is *spliced*.

    ``min_prefix`` guards against coincidental short prefixes ("kernel:"
    is shared by thousands of unrelated messages).
    """
    template, prefix = best_template_match(body, templates)
    if template is None or prefix < min_prefix:
        return CorruptionVerdict(CorruptionKind.NONE)
    if prefix >= len(template):
        return CorruptionVerdict(CorruptionKind.NONE, template, prefix)
    if prefix >= len(body):
        return CorruptionVerdict(CorruptionKind.TRUNCATED, template, prefix)
    return CorruptionVerdict(CorruptionKind.SPLICED, template, prefix)


def looks_garbled(text: str, max_unprintable_fraction: float = 0.05) -> bool:
    """Whether a field contains enough non-printable bytes to be garbage.

    The paper's Figure 2(b) shows a cluster of Liberty messages "whose
    source field was corrupted, thwarting attribution"; such fields contain
    control bytes or binary junk rather than hostnames.
    """
    if not text:
        return False
    unprintable = sum(1 for ch in text if ch not in _PRINTABLE)
    return unprintable / len(text) > max_unprintable_fraction


def classify_record(
    record: LogRecord,
    templates: Sequence[str] = (),
    epoch_lo: float = 0.0,
    epoch_hi: float = 4102444800.0,  # 2100-01-01
) -> CorruptionVerdict:
    """Full structural classification of a parsed record.

    Checks, in order of diagnostic confidence: parser-flagged damage,
    garbled source field, out-of-range timestamp, then body-vs-template
    truncation/splice analysis.
    """
    if record.corrupted and not record.source and record.timestamp == 0.0:
        return CorruptionVerdict(CorruptionKind.UNPARSEABLE)
    if looks_garbled(record.source):
        return CorruptionVerdict(CorruptionKind.GARBLED_SOURCE)
    if not (epoch_lo <= record.timestamp <= epoch_hi):
        return CorruptionVerdict(CorruptionKind.BAD_TIMESTAMP)
    if templates:
        verdict = classify_body(record.full_text(), templates)
        if verdict.is_corrupted:
            return verdict
    if record.corrupted:
        # Parser saw damage but none of the specific checks fired.
        return CorruptionVerdict(CorruptionKind.UNPARSEABLE)
    return CorruptionVerdict(CorruptionKind.NONE)

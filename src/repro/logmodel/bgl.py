"""BG/L RAS event format.

On Blue Gene/L, logging is managed by the Machine Management Control System
(MMCS): compute chips store errors locally until polled over the JTAG
mailbox (~1 ms polling period for the paper's logs), and the service-node
MMCS process relays events to a centralized DB2 RAS database (paper,
Section 3.1).  Events carry microsecond timestamps, a location string, a
reporting facility, and a severity drawn from
{FATAL, FAILURE, SEVERE, ERROR, WARNING, INFO} (paper, Table 5).

We serialize RAS events as one line per event::

    YYYY-MM-DD-HH.MM.SS.ffffff LOCATION RAS FACILITY SEVERITY message body

which mirrors the flat export format of the BG/L RAS database.  ``LOCATION``
is a hardware coordinate such as ``R02-M1-N0-C:J12-U11`` (rack, midplane,
node card, chip), or ``NULL`` when the event has no attributable location —
the paper's operational-context example message shows exactly such a
``NULL`` location.
"""

from __future__ import annotations

import calendar
import re
import time
from typing import Iterable, Iterator, Tuple

from .record import Channel, LogRecord, RasSeverity

_BGL_RE = re.compile(
    r"^(?P<yy>\d{4})-(?P<mo>\d{2})-(?P<dd>\d{2})-"
    r"(?P<hh>\d{2})\.(?P<mi>\d{2})\.(?P<ss>\d{2})\.(?P<us>\d{6}) "
    r"(?P<loc>\S+) RAS (?P<fac>\S+) (?P<sev>\S+) (?P<body>.*)$"
)

_SEVERITY_LABELS = frozenset(sev.name for sev in RasSeverity)

FACILITIES = (
    "KERNEL",
    "APP",
    "DISCOVERY",
    "MMCS",
    "BGLMASTER",
    "LINKCARD",
    "MONITOR",
    "HARDWARE",
    "CMCS",
    "SERV_NET",
)
"""RAS-reporting facilities observed in BG/L logs."""


class BglParseError(ValueError):
    """Raised in strict mode when a line is not a valid BG/L RAS event."""


def parse_bgl_line(line: str, strict: bool = False) -> LogRecord:
    """Parse one BG/L RAS event line.

    In tolerant mode (default) malformed lines come back as records with
    ``corrupted=True`` rather than raising: even "highly engineered RAS
    systems, like BG/L", produce corrupted entries (paper, Section 3.2.1).
    """
    line = line.rstrip("\n")
    match = _BGL_RE.match(line)
    if match is None or match.group("sev") not in _SEVERITY_LABELS:
        if strict:
            raise BglParseError(f"not a BG/L RAS line: {line!r}")
        return LogRecord(
            timestamp=0.0,
            source="",
            facility="",
            body=line,
            system="bgl",
            channel=Channel.JTAG_MAILBOX,
            corrupted=True,
            raw=line,
        )
    try:
        year, month, day = (
            int(match.group("yy")), int(match.group("mo")), int(match.group("dd")),
        )
        hh, mi, ss = (
            int(match.group("hh")), int(match.group("mi")), int(match.group("ss")),
        )
        if not 1 <= month <= 12:
            raise ValueError(f"month {month} out of range")
        if not 1 <= day <= calendar.monthrange(year, month)[1]:
            raise ValueError(f"day {day} out of range")
        if hh > 23 or mi > 59 or ss > 60:
            raise ValueError("time out of range")
        base = calendar.timegm((year, month, day, hh, mi, ss, 0, 0, 0))
    except ValueError:
        if strict:
            raise BglParseError(f"bad timestamp in: {line!r}") from None
        return LogRecord(
            timestamp=0.0,
            source="",
            facility="",
            body=line,
            system="bgl",
            channel=Channel.JTAG_MAILBOX,
            corrupted=True,
            raw=line,
        )
    timestamp = base + int(match.group("us")) / 1e6
    location = match.group("loc")
    return LogRecord(
        timestamp=timestamp,
        source="" if location == "NULL" else location,
        facility=match.group("fac"),
        body=match.group("body"),
        system="bgl",
        severity=match.group("sev"),
        channel=Channel.JTAG_MAILBOX,
        corrupted=False,
        raw=line,
    )


def render_bgl_line(record: LogRecord) -> str:
    """Render a record in BG/L RAS export format (inverse of the parser)."""
    if record.corrupted and record.raw is not None:
        return record.raw
    whole = int(record.timestamp)
    micros = int(round((record.timestamp - whole) * 1e6))
    if micros >= 1_000_000:  # float rounding pushed us to the next second
        whole += 1
        micros = 0
    tm = _gmtime(whole)
    stamp = "%04d-%02d-%02d-%02d.%02d.%02d.%06d" % (
        tm[0], tm[1], tm[2], tm[3], tm[4], tm[5], micros,
    )
    location = record.source if record.source else "NULL"
    severity = record.severity if record.severity else "INFO"
    return f"{stamp} {location} RAS {record.facility} {severity} {record.body}"


def _gmtime(epoch: int) -> Tuple[int, int, int, int, int, int]:
    """UTC (year, month, day, hour, minute, second) for an epoch."""
    parts = time.gmtime(epoch)
    return (parts.tm_year, parts.tm_mon, parts.tm_mday,
            parts.tm_hour, parts.tm_min, parts.tm_sec)


def parse_bgl_stream(lines: Iterable[str]) -> Iterator[LogRecord]:
    """Parse an iterable of BG/L RAS lines lazily, skipping blanks."""
    for line in lines:
        if line.strip():
            yield parse_bgl_line(line)

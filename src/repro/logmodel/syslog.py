"""BSD syslog line parsing and rendering.

Thunderbird, Spirit, and Liberty generate their logs through ``syslog-ng``
(paper, Section 3.1): each node writes classic BSD-syslog lines which are
forwarded over UDP to a central logging server.  The on-disk format is::

    Mmm dd HH:MM:SS hostname facility[pid]: message body

BSD syslog timestamps carry no year and have one-second granularity, so
parsing requires a reference year.  Because UDP forwarding loses and mangles
messages under contention, the parser never raises on malformed input in
tolerant mode — it produces a best-effort :class:`~repro.logmodel.record.LogRecord`
with ``corrupted=True``, mirroring how the paper had to cope with truncated
and spliced lines (Section 3.2.1, "Corruption").
"""

from __future__ import annotations

import calendar
import re
import time
from typing import Iterable, Iterator

from .record import Channel, LogRecord

_MONTHS = {abbr: i for i, abbr in enumerate(calendar.month_abbr) if abbr}

_SYSLOG_RE = re.compile(
    r"^(?P<mon>[A-Z][a-z]{2}) {1,2}(?P<day>\d{1,2}) "
    r"(?P<hh>\d{2}):(?P<mm>\d{2}):(?P<ss>\d{2}) "
    r"(?P<host>\S+) "
    r"(?P<rest>.*)$"
)

_FACILITY_RE = re.compile(r"^(?P<fac>[A-Za-z_][\w.\-/ ]{0,40}?)(?:\[(?P<pid>\d+)\])?: (?P<body>.*)$")


class SyslogParseError(ValueError):
    """Raised in strict mode when a line is not valid BSD syslog."""


def _epoch(year: int, mon: int, day: int, hh: int, mm: int, ss: int) -> float:
    """Epoch seconds for a local-naive UTC timestamp.

    Syslog analysis conventionally treats log timestamps as a monotone
    counter rather than wall-clock in a specific zone; we fix UTC so results
    are machine-independent.  Out-of-range fields raise ``ValueError``
    (``calendar.timegm`` would silently normalize a "Feb 31").
    """
    if not (1 <= day <= calendar.monthrange(year, mon)[1]):
        raise ValueError(f"day {day} out of range for {year}-{mon:02d}")
    if hh > 23 or mm > 59 or ss > 60:  # :60 allows leap seconds
        raise ValueError(f"time {hh:02d}:{mm:02d}:{ss:02d} out of range")
    return float(calendar.timegm((year, mon, day, hh, mm, ss, 0, 0, 0)))


def parse_syslog_line(
    line: str,
    year: int,
    system: str = "",
    strict: bool = False,
) -> LogRecord:
    """Parse one BSD syslog line into a :class:`LogRecord`.

    Parameters
    ----------
    line:
        The raw line, without trailing newline.
    year:
        Reference year (BSD syslog timestamps omit it).
    system:
        Short machine name to stamp on the record.
    strict:
        When ``True``, raise :class:`SyslogParseError` on malformed lines.
        When ``False`` (the default), return a best-effort record flagged
        ``corrupted=True`` — the behaviour a production pipeline needs.
    """
    line = line.rstrip("\n")
    match = _SYSLOG_RE.match(line)
    if match is None:
        if strict:
            raise SyslogParseError(f"not a syslog line: {line!r}")
        return LogRecord(
            timestamp=0.0,
            source="",
            facility="",
            body=line,
            system=system,
            channel=Channel.SYSLOG_UDP,
            corrupted=True,
            raw=line,
        )

    mon = _MONTHS.get(match.group("mon"))
    if mon is None:
        if strict:
            raise SyslogParseError(f"bad month in: {line!r}")
        mon, damaged = 1, True
    else:
        damaged = False

    try:
        timestamp = _epoch(
            year,
            mon,
            int(match.group("day")),
            int(match.group("hh")),
            int(match.group("mm")),
            int(match.group("ss")),
        )
    except (ValueError, OverflowError):
        if strict:
            raise SyslogParseError(f"bad timestamp in: {line!r}") from None
        timestamp, damaged = 0.0, True

    rest = match.group("rest")
    fac_match = _FACILITY_RE.match(rest)
    if fac_match is not None:
        facility = fac_match.group("fac")
        body = fac_match.group("body")
    else:
        facility = ""
        body = rest

    return LogRecord(
        timestamp=timestamp,
        source=match.group("host"),
        facility=facility,
        body=body,
        system=system,
        channel=Channel.SYSLOG_UDP,
        corrupted=damaged,
        raw=line,
    )


#: Month abbreviations pinned as a tuple: ``calendar.month_abbr`` is a
#: locale-aware proxy whose ``__getitem__`` costs a function call per
#: render — measurable at millions of records.
_MONTH_ABBR = tuple(calendar.month_abbr)

#: Timestamp-second -> rendered stamp.  Syslog has one-second granularity
#: and log records arrive in bursts within the same second, so the stamp
#: — the expensive part of rendering (``gmtime`` plus ``%``-formatting)
#: — memoizes extremely well.  Bounded: cleared wholesale when full.
_STAMP_CACHE: dict = {}
_STAMP_CACHE_MAX = 16384


def _stamp_for(second) -> str:
    stamp = _STAMP_CACHE.get(second)
    if stamp is None:
        if len(_STAMP_CACHE) >= _STAMP_CACHE_MAX:
            _STAMP_CACHE.clear()
        parts = time.gmtime(second)
        stamp = "%s %2d %02d:%02d:%02d" % (
            _MONTH_ABBR[parts.tm_mon],
            parts.tm_mday,
            parts.tm_hour,
            parts.tm_min,
            parts.tm_sec,
        )
        _STAMP_CACHE[second] = stamp
    return stamp


def render_syslog_line(record: LogRecord) -> str:
    """Render a record back to BSD syslog format.

    For clean records this is the inverse of :func:`parse_syslog_line`
    (modulo the year, which the format cannot carry).  Corrupted records
    render their raw line verbatim when one is attached, since re-rendering
    damaged fields would fabricate structure that was never on the wire.
    """
    if record.corrupted and record.raw is not None:
        return record.raw
    timestamp = record.timestamp
    try:
        # gmtime() floors float seconds; flooring ourselves makes the
        # memo key exact for every timestamp in the same second.
        second = int(timestamp // 1)
    except (TypeError, ValueError, OverflowError):
        # NaN/exotic timestamps: let gmtime raise its historical error.
        second = timestamp
    stamp = _stamp_for(second)
    if record.facility:
        return f"{stamp} {record.source} {record.facility}: {record.body}"
    return f"{stamp} {record.source} {record.body}"


def parse_syslog_stream(
    lines: Iterable[str],
    year: int,
    system: str = "",
) -> Iterator[LogRecord]:
    """Parse an iterable of syslog lines lazily, skipping blank lines.

    Year rollover is handled the way syslog daemons do: if a parsed
    timestamp jumps backwards by more than half a year relative to the
    previous record, the year is assumed to have incremented.
    """
    current_year = year
    previous = None
    half_year = 182 * 86400.0
    for line in lines:
        if not line.strip():
            continue
        record = parse_syslog_line(line, current_year, system=system)
        if (
            previous is not None
            and not record.corrupted
            and previous - record.timestamp > half_year
        ):
            current_year += 1
            record = parse_syslog_line(line, current_year, system=system)
        if not record.corrupted:
            previous = record.timestamp
        yield record

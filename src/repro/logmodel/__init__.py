"""Canonical log record model and parsers for the five machines' formats."""

from .record import (
    SYSTEM_NAMES,
    Channel,
    LogRecord,
    RasSeverity,
    SyslogSeverity,
)
from .syslog import (
    SyslogParseError,
    parse_syslog_line,
    parse_syslog_stream,
    render_syslog_line,
)
from .bgl import (
    BglParseError,
    parse_bgl_line,
    parse_bgl_stream,
    render_bgl_line,
)
from .redstorm import (
    RedStormParseError,
    parse_redstorm_line,
    parse_redstorm_ras_line,
    parse_redstorm_stream,
    parse_redstorm_syslog_line,
    render_redstorm_line,
)
from .anonymize import Pseudonymizer
from .corruption import (
    CorruptionKind,
    CorruptionVerdict,
    best_template_match,
    classify_body,
    classify_record,
    common_prefix_length,
    looks_garbled,
)

__all__ = [
    "Pseudonymizer",
    "SYSTEM_NAMES",
    "Channel",
    "LogRecord",
    "RasSeverity",
    "SyslogSeverity",
    "SyslogParseError",
    "parse_syslog_line",
    "parse_syslog_stream",
    "render_syslog_line",
    "BglParseError",
    "parse_bgl_line",
    "parse_bgl_stream",
    "render_bgl_line",
    "RedStormParseError",
    "parse_redstorm_line",
    "parse_redstorm_ras_line",
    "parse_redstorm_stream",
    "parse_redstorm_syslog_line",
    "render_redstorm_line",
    "CorruptionKind",
    "CorruptionVerdict",
    "best_template_match",
    "classify_body",
    "classify_record",
    "common_prefix_length",
    "looks_garbled",
]

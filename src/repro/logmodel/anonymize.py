"""Log anonymization: consistent pseudonymization of sensitive fields.

The paper could not release its data: "log anonymization is also
troublesome, because sensitive information like usernames is not relegated
to distinct fields ...  Our log data are not available for public study
primarily because we cannot remove all sensitive information with
sufficient confidence" (Section 3.2.1, citing Flegel's work on
pseudonymizing Unix logs).

This module implements the tooling that problem calls for:

* recognizers for the sensitive atoms that hide inside free-form message
  bodies — IPv4 addresses (with optional ports), usernames in known
  contexts, filesystem paths, job identifiers, and hostnames;
* a :class:`Pseudonymizer` that replaces each atom with a deterministic,
  *consistent* pseudonym (the same IP maps to the same token throughout,
  preserving cross-line correlation structure — the property analyses
  need) while being keyed, so the mapping is not invertible without the
  key.

True to the paper's warning, anonymization is best-effort by construction:
:meth:`Pseudonymizer.residual_risk` reports strings that *look* sensitive
but matched no recognizer, so an operator can audit before release.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from .record import LogRecord

#: IPv4, optionally with :port.
_IP_RE = re.compile(
    r"\b(?P<ip>(?:\d{1,3}\.){3}\d{1,3})(?::(?P<port>\d{1,5}))?\b"
)

#: Usernames in the contexts syslog actually uses them.
_USER_RE = re.compile(
    r"(?P<prefix>\b(?:user|for user|by user|session opened for user|"
    r"Accepted publickey for|USER=)\s+)(?P<user>[a-z_][a-z0-9_\-]{0,31})\b"
)

#: Absolute filesystem paths (at least two components).
_PATH_RE = re.compile(r"(?P<path>/(?:[\w.\-+]+/)+[\w.\-+]+)")

#: PBS-style job ids: 12345.hostname.
_JOB_RE = re.compile(r"\b(?P<num>\d{3,7})\.(?P<host>[A-Za-z][\w\-]*)\b")


@dataclass
class Pseudonymizer:
    """Keyed, consistent pseudonymization of log text.

    Parameters
    ----------
    key:
        Secret salt; the same key reproduces the same pseudonyms, a
        different key yields an unlinkable mapping.
    preserve_structure:
        When ``True`` (default), pseudonyms keep the shape of the original
        (IPs become valid-looking IPs, paths stay paths), so downstream
        parsers and regex rules keep working on anonymized logs.
    """

    key: str = "repro"
    preserve_structure: bool = True
    mapping: Dict[Tuple[str, str], str] = field(default_factory=dict)
    _suspicious: List[str] = field(default_factory=list)

    def _digest(self, kind: str, value: str, length: int = 8) -> str:
        payload = f"{self.key}:{kind}:{value}".encode()
        return hashlib.sha256(payload).hexdigest()[:length]

    def _pseudo(self, kind: str, value: str) -> str:
        cache_key = (kind, value)
        cached = self.mapping.get(cache_key)
        if cached is not None:
            return cached
        digest = self._digest(kind, value)
        if not self.preserve_structure:
            token = f"[{kind}-{digest}]"
        elif kind == "ip":
            octets = [
                10,
                int(digest[0:2], 16) % 256,
                int(digest[2:4], 16) % 256,
                int(digest[4:6], 16) % 254 + 1,
            ]
            token = ".".join(str(o) for o in octets)
        elif kind == "user":
            token = f"user{int(digest[:6], 16) % 10000:04d}"
        elif kind == "path":
            token = f"/anon/{digest}"
        elif kind == "job":
            token = f"{int(digest[:6], 16) % 100000}.cluster"
        elif kind == "host":
            token = f"node{int(digest[:6], 16) % 10000:04d}"
        else:
            token = f"[{kind}-{digest}]"
        self.mapping[cache_key] = token
        return token

    def scrub_text(self, text: str) -> str:
        """Pseudonymize every recognized sensitive atom in a string."""

        def replace_ip(match: "re.Match[str]") -> str:
            token = self._pseudo("ip", match.group("ip"))
            port = match.group("port")
            return f"{token}:{port}" if port else token

        def replace_user(match: "re.Match[str]") -> str:
            return match.group("prefix") + self._pseudo(
                "user", match.group("user")
            )

        def replace_path(match: "re.Match[str]") -> str:
            return self._pseudo("path", match.group("path"))

        def replace_job(match: "re.Match[str]") -> str:
            return self._pseudo("job", f"{match.group('num')}.{match.group('host')}")

        text = _IP_RE.sub(replace_ip, text)
        text = _USER_RE.sub(replace_user, text)
        text = _JOB_RE.sub(replace_job, text)
        text = _PATH_RE.sub(replace_path, text)
        return text

    def scrub_record(self, record: LogRecord) -> LogRecord:
        """Pseudonymize a record's body and source host.

        The source pseudonym is consistent (same node, same token), so
        spatial analyses — per-source counts, spatial correlation — are
        preserved on the anonymized stream.
        """
        from dataclasses import replace

        body = self.scrub_text(record.body)
        source = (
            self._pseudo("host", record.source) if record.source else record.source
        )
        self._note_residuals(body)
        return replace(record, body=body, source=source, raw=None)

    def scrub_stream(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Lazily pseudonymize a record stream."""
        for record in records:
            yield self.scrub_record(record)

    def _note_residuals(self, scrubbed: str) -> None:
        # Post-scrub audit: emails or name@host remnants escaped the
        # recognizers.
        for match in re.finditer(r"\b[\w.]+@[\w.]+\b", scrubbed):
            self._suspicious.append(match.group(0))

    def residual_risk(self) -> List[str]:
        """Strings that survived scrubbing but look sensitive.

        An empty list is *not* a guarantee — the paper's point — but a
        non-empty one is a hard stop before release.
        """
        return list(self._suspicious)

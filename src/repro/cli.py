"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows a downstream adopter needs:

* ``generate`` — write a synthetic machine log in its native format;
* ``analyze``  — run the tagging/filtering pipeline over a log file;
* ``study``    — the whole paper: all five systems, Tables 1-6;
* ``report``   — replay tables and figures from a ``--store-dir`` alert
  store without rerunning any pipeline;
* ``anonymize`` — pseudonymize a log for release (Section 3.2.1);
* ``mine``     — mine frequent message templates (Vaarandi-style) and
  propose candidate alert rules.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import api
from .analysis.patterns import mine_templates, suggest_rules, template_coverage
from .engine.capabilities import capability_lines, validate_run_config
from .parallel.config import ParallelConfig
from .logio.reader import read_log
from .logio.writer import write_log
from .logmodel.anonymize import Pseudonymizer
from .reporting import tables
from .resilience.backpressure import BackpressureConfig
from .resilience.deadletter import DeadLetterQueue
from .resilience.faults import FaultConfig
from .resilience.shedding import SHED_POLICIES
from .reporting.format import render_table
from .simulation.generator import generate_log
from .systems.specs import SYSTEMS

SYSTEM_CHOICES = sorted(SYSTEMS)


def _add_common_generation_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("system", choices=SYSTEM_CHOICES)
    parser.add_argument("--scale", type=float, default=1e-4,
                        help="fraction of the paper's message volume")
    parser.add_argument("--seed", type=int, default=2007)


def cmd_generate(args: argparse.Namespace) -> int:
    generated = generate_log(args.system, scale=args.scale, seed=args.seed)
    count = write_log(
        generated.records, args.out, args.system, compress=args.gzip,
    )
    print(f"wrote {count:,} lines to {args.out}")
    return 0


def _parallel_config(args: argparse.Namespace) -> "ParallelConfig | None":
    """The ParallelConfig implied by --workers/--batch-size, if any."""
    if not args.workers:
        return None
    return ParallelConfig(workers=args.workers, batch_size=args.batch_size)


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=0,
                        help="shard tagging across this many worker "
                             "processes (0 = serial); the filter stays "
                             "sequential and output is identical")
    parser.add_argument("--batch-size", type=int, default=1024,
                        help="records per batch shipped to a worker")


def cmd_analyze(args: argparse.Namespace) -> int:
    records = read_log(args.path, args.system, year=args.year)
    dead_letters = DeadLetterQueue() if args.quarantine else None
    result = api.run_stream(records, args.system,
                                 threshold=args.threshold,
                                 dead_letters=dead_letters,
                                 parallel=_parallel_config(args))
    if dead_letters is not None and dead_letters.quarantined:
        print(f"# quarantined: {dead_letters.summary()}", file=sys.stderr)
    if args.full:
        from .reporting.report import system_report

        print(system_report(result))
        return 0
    print(result.summary())
    print()
    rows = [
        (category, f"{raw:,}", f"{filtered:,}")
        for category, (raw, filtered) in sorted(
            result.category_counts().items(), key=lambda kv: -kv[1][0]
        )
    ]
    if rows:
        print(render_table(("Category", "Raw", "Filtered"), rows,
                           title="Alert categories"))
    else:
        print("no alerts tagged")
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    faults = None
    if args.faults:
        fault_seed = args.seed if args.fault_seed is None else args.fault_seed
        faults = FaultConfig.defaults(seed=fault_seed)
    backpressure = None
    if args.max_buffer is not None:
        backpressure = BackpressureConfig(
            max_buffer=args.max_buffer,
            shed_policy=args.shed_policy,
            degrade=args.overload_degrade,
        )
    parallel = _parallel_config(args)
    # One authority for what composes: the engine's capability table.
    # (Historically this was an ad-hoc check that forbade --workers with
    # --faults/--max-buffer; the stage engine made those pairs legal.)
    try:
        validate_run_config(
            parallel=parallel, backpressure=backpressure, faults=faults,
            restart_budget=args.restart_budget,
            checkpoint_every=args.checkpoint_every,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.store_dir and faults is not None:
        print("error: --store-dir does not compose with --faults "
              "(supervised restarts) yet", file=sys.stderr)
        return 2
    results = {}
    for system in SYSTEM_CHOICES:
        scale = args.scale * (100 if system == "bgl" else 1)
        result = api.run_system(
            system, scale=scale, seed=args.seed, faults=faults,
            restart_budget=args.restart_budget,
            checkpoint_every=args.checkpoint_every,
            backpressure=backpressure,
            parallel=parallel,
            state_dir=(
                f"{args.state_dir}/{system}" if args.state_dir else None
            ),
            store_dir=(
                os.path.join(args.store_dir, system)
                if args.store_dir else None
            ),
            predict=args.predict or None,
        )
        results[system] = result
        line = (f"# {system}: {result.message_count:,} messages, "
                f"{result.raw_alert_count:,} alerts")
        store = getattr(result.checkpoints, "store", None)
        if store is not None and store.status.degraded:
            line += f" [DURABILITY DEGRADED: {store.status.reason}]"
        if faults is not None:
            line += (f" [restarts: {result.restarts}, "
                     f"dead letters: {result.dead_letter_count}"
                     f"{', DEGRADED' if result.degraded else ''}]")
        if result.overload is not None:
            acct = result.overload
            line += (f" [shed: {acct.total_shed}, "
                     f"spilled: {acct.total_spilled}"
                     f"{', OVERLOAD-DEGRADED' if acct.degraded else ''}]")
        if result.shard_stats is not None:
            shards = result.shard_stats
            line += (f" [workers: {shards.workers}, "
                     f"batches: {shards.batches}"
                     + (f", crashes: {shards.worker_crashes}, "
                        f"retried: {shards.batches_retried}"
                        if shards.worker_crashes else "") + "]")
        print(line, file=sys.stderr)
        if result.prediction is not None:
            for pred_line in result.prediction.summary_lines():
                print(f"#   {pred_line}", file=sys.stderr)
    print(tables.all_tables(results))
    if args.store_dir:
        print(f"# alert stores written under {args.store_dir}; replay "
              f"with: repro report {args.store_dir}", file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .reporting import figures
    from .store import StoreError, is_store_dir, load_result

    root = args.store_dir
    if not os.path.isdir(root):
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    if is_store_dir(root):
        candidates = [root]
    else:
        # Study layout: one store per system subdirectory.
        candidates = [
            path
            for name in sorted(os.listdir(root))
            if is_store_dir(path := os.path.join(root, name))
        ]
    if not candidates:
        print(f"error: no alert store under {root} (expected a MANIFEST "
              "at the top level or in system subdirectories; write one "
              "with `repro study --store-dir ...`)", file=sys.stderr)
        return 2
    results = {}
    trouble = False
    for path in candidates:
        try:
            result = load_result(path)
        except StoreError as exc:
            print(f"# {path}: unreadable store: {exc}", file=sys.stderr)
            trouble = True
            continue
        results[result.system] = result
        print(f"# {result.system}: {result.message_count:,} messages, "
              f"{result.raw_alert_count:,} alerts (replayed from {path})",
              file=sys.stderr)
    if not results:
        return 2
    print(tables.all_tables(results))
    figure_text = figures.all_figures(results)
    if figure_text:
        print()
        print(figure_text)
    # Scans record partitions they had to drop (CRC mismatch, torn
    # frame); surface those after the render they degraded.
    for system, result in results.items():
        issues = result.store.degraded
        if issues:
            trouble = True
            print(f"# {system}: {len(issues)} degraded partitions "
                  f"(data dropped): {'; '.join(issues[:3])}",
                  file=sys.stderr)
    return 1 if trouble else 0


def cmd_anonymize(args: argparse.Namespace) -> int:
    scrubber = Pseudonymizer(key=args.key)
    records = read_log(args.path, args.system, year=args.year)
    count = write_log(
        scrubber.scrub_stream(records), args.out, args.system,
        compress=args.gzip,
    )
    print(f"wrote {count:,} anonymized lines to {args.out}")
    residuals = scrubber.residual_risk()
    if residuals:
        print(f"WARNING: {len(residuals)} residual sensitive-looking "
              "strings survived scrubbing; review before release:")
        for item in residuals[:10]:
            print(f"  {item}")
        return 1
    print("no residual sensitive-looking strings detected "
          "(not a guarantee; audit before release)")
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    records = list(read_log(args.path, args.system, year=args.year))
    bodies = [r.full_text() for r in records]
    templates = mine_templates(bodies, min_support=args.min_support)
    coverage = template_coverage(templates, bodies)
    print(f"{len(templates)} templates cover {coverage:.1%} of "
          f"{len(bodies):,} messages")
    for template in templates[: args.top]:
        print(f"  [{template.support:>8,}] {template.pattern()[:100]}")
    rules = suggest_rules(templates)
    if rules:
        print()
        print("candidate alert rules (review before adopting):")
        for rule in rules[: args.top]:
            print(f"  /{rule[:100]}/")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .service import IngestService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        tcp_port=args.tcp_port,
        udp_port=args.udp_port,
        stats_port=args.stats_port,
        enable_udp=not args.no_udp,
        year=args.year,
        threshold=args.threshold,
        max_buffer=args.max_buffer,
        shed_policy=args.shed_policy,
        restart_budget=args.restart_budget,
        idle_ttl=args.idle_ttl,
        drain_timeout=args.drain_timeout,
        state_dir=args.state_dir,
        store_dir=args.store_dir,
        checkpoint_every=args.checkpoint_every,
        predict=args.predict or None,
    )

    async def _run() -> dict:
        service = IngestService(config)
        await service.start()
        print(
            f"ingest service listening: tcp={service.tcp_port} "
            f"udp={service.udp_port or '-'} stats={service.stats_port}",
            file=sys.stderr,
        )
        print("send SIGTERM (or Ctrl-C) to drain and exit", file=sys.stderr)
        await service.run_until_stopped()
        return service.final_report()

    report = asyncio.run(_run())
    print(json.dumps(report, indent=2, default=str))
    service_row = report.get("_service", {})
    tenants = {k: v for k, v in report.items() if k != "_service"}
    broken = [
        tid for tid, row in tenants.items() if not row.get("conserves", True)
    ]
    print(
        f"drained: {len(tenants)} tenants, "
        f"{service_row.get('lines_seen', 0):,} lines seen, "
        f"{len(broken)} conservation violations",
        file=sys.stderr,
    )
    durability = service_row.get("durability") or {}
    if durability.get("degraded"):
        print(
            f"DURABILITY DEGRADED: {durability.get('reason')} "
            f"({durability.get('unpersisted_checkpoints', 0)} checkpoints / "
            f"{durability.get('unpersisted_wal_records', 0)} journal records "
            "unpersisted)",
            file=sys.stderr,
        )
    return 1 if broken else 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .service import query_stats

    response = query_stats(args.host, args.port, args.query)
    print(json.dumps(response, indent=2, default=str))
    return 1 if "error" in response else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = sub.add_parser(
        "generate", help="write a synthetic machine log"
    )
    _add_common_generation_args(p_generate)
    p_generate.add_argument("--out", required=True)
    p_generate.add_argument("--gzip", action="store_true")
    p_generate.set_defaults(func=cmd_generate)

    p_analyze = sub.add_parser(
        "analyze", help="tag and filter alerts in a log file"
    )
    p_analyze.add_argument("path")
    p_analyze.add_argument("--system", required=True, choices=SYSTEM_CHOICES)
    p_analyze.add_argument("--year", type=int, default=2005)
    p_analyze.add_argument("--threshold", type=float, default=5.0)
    p_analyze.add_argument("--full", action="store_true",
                           help="full report: attribution, severity, "
                                "interarrival characterization")
    p_analyze.add_argument("--quarantine", action="store_true",
                           help="dead-letter unprocessable records instead "
                                "of failing on them, and report the counts")
    _add_parallel_args(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_study = sub.add_parser(
        "study", help="run all five systems and print Tables 1-6",
        epilog="execution drivers (--workers/--max-buffer compose; see "
               "repro.engine):\n  " + "\n  ".join(capability_lines()),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_study.add_argument("--scale", type=float, default=1e-4)
    p_study.add_argument("--seed", type=int, default=2007)
    p_study.add_argument("--faults", action="store_true",
                         help="run under the pipeline supervisor with the "
                              "default fault-injection schedule (crashes, "
                              "stalls, reordering, duplication, truncation)")
    p_study.add_argument("--fault-seed", type=int, default=None,
                         help="seed for the fault schedule (default: --seed)")
    p_study.add_argument("--restart-budget", type=int, default=None,
                         help="max supervisor restarts per system "
                              "(requires --faults; default 3)")
    p_study.add_argument("--checkpoint-every", type=int, default=None,
                         help="checkpoint interval in records; without "
                              "--faults the run still snapshots and the "
                              "result keeps the latest resume point "
                              "(default under --faults: 2000)")
    p_study.add_argument("--state-dir", default=None,
                         help="persist checkpoints under this directory "
                              "(one subdirectory per system) and "
                              "auto-resume an interrupted run: re-invoking "
                              "the same study after a crash/SIGKILL "
                              "completes byte-identical to an "
                              "uninterrupted run")
    p_study.add_argument("--max-buffer", type=int, default=None,
                         help="run bounded: cap the generate->tag queue at "
                              "this many records (backpressure + load "
                              "shedding instead of unbounded memory)")
    p_study.add_argument("--shed-policy", choices=sorted(SHED_POLICIES),
                         default="priority",
                         help="what to lose first under overload "
                              "(requires --max-buffer)")
    p_study.add_argument("--predict", action="store_true",
                         help="run the streaming correlation miner + "
                              "online predictor ensemble alongside each "
                              "system and print its warning/graph summary "
                              "(see the README's Online prediction section)")
    p_study.add_argument("--overload-degrade", action="store_true",
                         help="on sustained overload, degrade gracefully: "
                              "coarser stats and a larger filter threshold "
                              "instead of unbounded queue growth")
    p_study.add_argument("--store-dir", default=None,
                         help="spill every system's alerts to a columnar "
                              "store under this directory (one "
                              "subdirectory per system); analytics stream "
                              "from disk in bounded memory and "
                              "`repro report <dir>` replays every table "
                              "and figure later without rerunning the "
                              "pipeline")
    _add_parallel_args(p_study)
    p_study.set_defaults(func=cmd_study)

    p_report = sub.add_parser(
        "report",
        help="replay tables and figures from an alert store directory",
        description="Render Tables 1-6 and the alert-only figures from "
                    "a store written by `study --store-dir` (or any "
                    "api.run_* call with store_dir=...), without "
                    "regenerating or re-analyzing any log.",
    )
    p_report.add_argument("store_dir",
                          help="a single store (MANIFEST at the top "
                               "level) or a study layout (one store per "
                               "system subdirectory)")
    p_report.set_defaults(func=cmd_report)

    p_anon = sub.add_parser(
        "anonymize", help="pseudonymize a log for release"
    )
    p_anon.add_argument("path")
    p_anon.add_argument("--system", required=True, choices=SYSTEM_CHOICES)
    p_anon.add_argument("--out", required=True)
    p_anon.add_argument("--key", default="repro")
    p_anon.add_argument("--year", type=int, default=2005)
    p_anon.add_argument("--gzip", action="store_true")
    p_anon.set_defaults(func=cmd_anonymize)

    p_mine = sub.add_parser(
        "mine", help="mine frequent message templates from a log"
    )
    p_mine.add_argument("path")
    p_mine.add_argument("--system", required=True, choices=SYSTEM_CHOICES)
    p_mine.add_argument("--year", type=int, default=2005)
    p_mine.add_argument("--min-support", type=int, default=10)
    p_mine.add_argument("--top", type=int, default=15)
    p_mine.set_defaults(func=cmd_mine)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived multi-tenant ingest service",
        epilog="wire protocol: one '@tenant:system <native line>' per "
               "TCP line or UDP datagram.\nexecution drivers:\n  "
               + "\n  ".join(capability_lines()),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--tcp-port", type=int, default=0,
                         help="TCP syslog port (0 = ephemeral)")
    p_serve.add_argument("--udp-port", type=int, default=0,
                         help="UDP syslog port (0 = ephemeral)")
    p_serve.add_argument("--stats-port", type=int, default=0,
                         help="stats endpoint port (0 = ephemeral)")
    p_serve.add_argument("--no-udp", action="store_true",
                         help="disable the UDP listener")
    p_serve.add_argument("--year", type=int, default=2005)
    p_serve.add_argument("--threshold", type=float, default=5.0)
    p_serve.add_argument("--max-buffer", type=int, default=1024,
                         help="per-tenant ingest queue capacity")
    p_serve.add_argument("--shed-policy", choices=sorted(SHED_POLICIES),
                         default="priority")
    p_serve.add_argument("--restart-budget", type=int, default=3,
                         help="worker crashes tolerated per tenant before "
                              "quarantine")
    p_serve.add_argument("--idle-ttl", type=float, default=300.0,
                         help="seconds of tenant quiet before eviction "
                              "(checkpoint handoff)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0)
    p_serve.add_argument("--state-dir", default=None,
                         help="crash-durable tenant state directory: "
                              "checkpoints and alert/dead-letter journals "
                              "persist here, and a restarted service "
                              "resumes every tenant from it")
    p_serve.add_argument("--checkpoint-every", type=int, default=2000,
                         help="records between durable tenant snapshots")
    p_serve.add_argument("--store-dir", default=None,
                         help="tee every tenant's alerts into a columnar "
                              "store under this directory (one store per "
                              "tenant), committed at checkpoint barriers; "
                              "analytics then run out-of-core over alerts "
                              "the in-memory tail has long dropped")
    p_serve.add_argument("--predict", action="store_true",
                         help="per-tenant online prediction: every tenant "
                              "runs the streaming correlation miner + "
                              "predictor ensemble; warning counts ride the "
                              "stats endpoint and prediction state rides "
                              "tenant checkpoints")
    p_serve.set_defaults(func=cmd_serve)

    p_stats = sub.add_parser(
        "stats", help="query a running ingest service's stats endpoint"
    )
    p_stats.add_argument("--host", default="127.0.0.1")
    p_stats.add_argument("--port", type=int, required=True)
    p_stats.add_argument("query", nargs="?", default="stats",
                         help="'stats', 'health', 'tenant <id>', or "
                              "'alerts <id> [n]' (quote multi-word queries)")
    p_stats.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""The stable public API: one import surface for the whole library.

Everything a caller needs rides on five functions::

    from repro import api

    api.run("spirit", scale=1e-4, seed=42)   # generate + full pipeline
    api.run("spirit", records=stream)        # full pipeline over a stream
    api.run_all(scale=1e-4)                  # the five-system study
    api.tag_lines(lines, "liberty")          # native-format lines -> alerts
    api.iter_alerts(records, "bgl")          # streaming alerts, optional shards
    api.serve(tcp_port=5140)                 # the multi-tenant ingest service

These names (plus :func:`run_stream`/:func:`run_system`, the historical
pipeline entry points that :func:`run` wraps) are the supported, stable
surface; ``repro.pipeline`` forwards here with a :class:`DeprecationWarning`
and the engine/driver internals may reshape without notice.  The paper's
workflow (Sections 3-4) maps directly: generate or read a machine's log,
accumulate Table 2 volume statistics while streaming, tag alerts with the
machine's expert ruleset, filter with Algorithm 3.1, and keep everything
an analysis needs on one :class:`~repro.engine.result.PipelineResult`.

The execution knobs compose orthogonally — ``parallel`` with
``checkpointer``/``resume_from`` (snapshots at batch barriers),
``parallel`` with ``backpressure`` (the bounded ingest queue feeds the
sharded tagger's in-flight window), and either with supervision — see
:data:`repro.engine.capabilities.CAPABILITY_TABLE`.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Iterable, Iterator, List, Optional

from .core.categories import Alert
from .core.filtering import DEFAULT_THRESHOLD
from .core.tagging import RulesetHandle
from .engine.capabilities import build_driver, validate_run_config
from .engine.path import DEFAULT_REORDER_TOLERANCE, AlertPath
from .engine.result import PipelineResult
from .logmodel.record import LogRecord
from .resilience.backpressure import BackpressureConfig
from .resilience.checkpoint import CheckpointManager, PipelineCheckpoint
from .resilience.deadletter import DeadLetterQueue
from .parallel.config import ParallelConfig
from .simulation.generator import GeneratedLog, LogGenerator

#: Supervised defaults, applied when ``run_system(supervised=True)`` /
#: ``faults=...`` is used without explicit budget/cadence knobs.
DEFAULT_RESTART_BUDGET = 3
DEFAULT_CHECKPOINT_EVERY = 2000

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_REORDER_TOLERANCE",
    "DEFAULT_RESTART_BUDGET",
    "DEFAULT_THRESHOLD",
    "PipelineResult",
    "iter_alerts",
    "run",
    "run_all",
    "run_stream",
    "run_system",
    "serve",
    "tag_lines",
]


def run_stream(
    records: Iterable[LogRecord],
    system: str,
    threshold: float = DEFAULT_THRESHOLD,
    generated: Optional[GeneratedLog] = None,
    dead_letters: Optional[DeadLetterQueue] = None,
    checkpointer: Optional[CheckpointManager] = None,
    resume_from: Optional[PipelineCheckpoint] = None,
    reorder_tolerance: float = DEFAULT_REORDER_TOLERANCE,
    backpressure: Optional[BackpressureConfig] = None,
    parallel: Optional[ParallelConfig] = None,
    state_dir: Optional[str] = None,
    state_token: str = "",
    predict=None,
    store_dir: Optional[str] = None,
) -> PipelineResult:
    """Run the measurement/tag/filter pipeline over any record stream.

    Single pass: volume statistics, severity cross-tab, tagging, and
    filtering all happen as the stream flows through, so an arbitrarily
    large log needs constant memory beyond the alert lists.

    With ``store_dir``, the alert lists go away too: every ruled-on
    alert spills to a columnar store under that directory (see
    :mod:`repro.store`), ``result.raw_alerts`` / ``filtered_alerts``
    become lazy scan views, and the whole run — tables and figures
    included — replays later via ``repro report`` without re-running
    the pipeline.  Composes with ``state_dir``: the store commits at
    every checkpoint barrier and a resumed run truncates back to the
    checkpoint's watermark, so a partition is never double-written.

    With ``dead_letters`` attached the pipeline quarantines what it cannot
    process — malformed records, records that crash the tagger, alerts
    whose timestamps run backwards beyond ``reorder_tolerance`` — instead
    of raising.  Without a queue the historical strict behavior holds.

    With a ``checkpointer``, resumable snapshots are taken at the chosen
    driver's consistency barrier (serial: every ``checkpointer.every``
    input records; sharded: batch boundaries; bounded: drained-queue
    barriers); pass the last snapshot back as ``resume_from`` (with the
    *same* deterministic stream) after a crash and the run continues
    without reprocessing, landing byte-identical to an uninterrupted run
    (bounded: within shedding tolerance).

    With ``backpressure`` (a :class:`BackpressureConfig`), the stages run
    behind bounded queues with credit-based flow control and
    priority-aware load shedding — see
    :class:`~repro.engine.drivers.BoundedDriver` — and the result carries
    an :class:`~repro.resilience.backpressure.OverloadReport`.

    With ``parallel`` (a :class:`ParallelConfig`), tagging fans out to
    worker processes — see :class:`~repro.engine.drivers.ShardedDriver`
    — while stats, severity, and the spatio-temporal filter stay the
    single sequential consumer of the order-preserved merge, so the
    result is identical to a serial run (the differential suites in
    ``tests/parallel/`` and ``tests/engine/`` enforce this).  Both knobs
    compose with each other and with checkpoint/resume; see
    :data:`repro.engine.capabilities.CAPABILITY_TABLE`.

    With ``state_dir``, checkpoints also persist to disk (a
    :class:`~repro.resilience.durability.CheckpointStore` under that
    directory) and the run *auto-resumes*: if the directory holds a
    valid checkpoint recorded under the same ``state_token`` (the run
    configuration fingerprint) by an interrupted run, it is adopted as
    ``resume_from`` and the re-presented stream's consumed prefix is
    skipped — so a SIGKILLed run re-invoked with the same arguments
    completes byte-identical to one that was never interrupted.
    Storage failures (ENOSPC, EIO, bit-rot) degrade rather than crash:
    the run continues in-memory and
    ``result.checkpoints.store.status`` carries the exact unpersisted
    accounting.

    With ``predict`` (``True`` for defaults, or a
    :class:`~repro.streaming.PredictionConfig`), a streaming correlation
    miner and online predictor ensemble ride the alert stream — see
    :mod:`repro.streaming` — and the result carries a
    :class:`~repro.streaming.PredictionReport` (lead-time-stamped
    warnings plus a correlation-graph snapshot) as
    ``result.prediction``.  Prediction state rides the checkpoint wire,
    so crash/resume and ``state_dir`` auto-resume restore it exactly.
    """
    validate_run_config(parallel=parallel, backpressure=backpressure)
    if backpressure is not None and dead_letters is None:
        # Bounded mode must never lose a tagged alert silently: the spill
        # path needs somewhere accounted to land.
        dead_letters = DeadLetterQueue()

    store = None
    if state_dir is not None:
        from .resilience.durability import CheckpointStore

        store = CheckpointStore(state_dir, token=state_token)
        if resume_from is None:
            resume_from = store.load()
        if checkpointer is None:
            checkpointer = CheckpointManager(
                every=DEFAULT_CHECKPOINT_EVERY, store=store
            )
        elif checkpointer.store is None:
            checkpointer.store = store

    store_writer = None
    if store_dir is not None:
        from .store import ColumnarStoreWriter

        store_writer = ColumnarStoreWriter(store_dir, system)

    path = AlertPath(
        system,
        threshold=threshold,
        dead_letters=dead_letters,
        reorder_tolerance=reorder_tolerance,
        resume_from=resume_from,
        prediction=_prediction_stage(predict, reorder_tolerance),
        store_writer=store_writer,
    )
    source = iter(records)
    if resume_from is not None:
        source = _skip_resumed_prefix(source, path)
    if checkpointer is not None:
        checkpointer.prime(resume_from)

    driver = build_driver(parallel=parallel, backpressure=backpressure)
    report = driver.run(source, path, checkpointer)

    result = path.result(
        generated=generated,
        shard_stats=report.shard_stats,
        overload=report.overload,
        checkpoints=checkpointer,
    )
    if store_writer is not None:
        from .store import run_summary

        # Persist the non-alert halves and mark the store complete, then
        # refresh the result's reader so it sees the finalized manifest.
        store_writer.finalize(run_summary(result))
        result.store = store_writer.reader()
    if store is not None:
        # A clean finish marks the durable state consumed: re-running
        # the same configuration starts a fresh run instead of resuming
        # into a stream that already completed.
        store.mark_complete()
    return result


def _prediction_stage(predict, reorder_tolerance: float):
    """Build the optional prediction stage from the ``predict`` knob:
    falsy -> off, ``True`` -> defaults, a ``PredictionConfig`` -> that
    configuration.  Imported lazily so runs without prediction never pay
    for the streaming package (or numpy's startup)."""
    if not predict:
        return None
    from .streaming import PredictionConfig, PredictionStage

    config = predict if isinstance(predict, PredictionConfig) else None
    return PredictionStage(config=config, reorder_tolerance=reorder_tolerance)


def _predict_token(predict) -> str:
    """The ``predict`` knob's contribution to the state-dir fingerprint:
    prediction state from a differently-configured (or predict-less) run
    must not be resumed."""
    if not predict:
        return "off"
    from .streaming import PredictionConfig

    if isinstance(predict, PredictionConfig):
        return repr(predict.key())
    return "on"


def _skip_resumed_prefix(source, path: AlertPath):
    """Skip the consumed prefix of a re-presented stream.

    An in-memory resume is a plain ``islice``.  A *durable* resume also
    owes the rebuilt stats compressor the prefix bytes it had been fed
    (the pickled checkpoint cannot carry live zlib state — see
    :class:`~repro.logio.stats.StatsSnapshot`), so each skipped record
    that was originally observed is replayed through
    ``StatsCollector.replay_record`` while being discarded.
    """
    collector = path.stats_collector
    if collector.pending_replay_bytes <= 0:
        return islice(source, path.consumed, None)

    def skip():
        strict = path.dead_letters is None
        for _ in range(path.consumed):
            try:
                record = next(source)
            except StopIteration:
                return
            if collector.pending_replay_bytes > 0 and (
                strict or path.valid(record)
            ):
                collector.replay_record(record)
        yield from source

    return skip()


def _state_token(**fields) -> str:
    """Fingerprint a run configuration for the durable state store:
    state recorded under a different token must not be resumed into
    this stream."""
    return "|".join(f"{key}={fields[key]!r}" for key in sorted(fields))


def run_system(
    system: str,
    scale: float = 1e-4,
    seed: int = 2007,
    threshold: float = DEFAULT_THRESHOLD,
    incident_scale: float = 1.0,
    faults=None,
    supervised: bool = False,
    restart_budget: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    backpressure: Optional[BackpressureConfig] = None,
    parallel: Optional[ParallelConfig] = None,
    state_dir: Optional[str] = None,
    predict=None,
    store_dir: Optional[str] = None,
    **generator_kwargs,
) -> PipelineResult:
    """Generate one machine's log and run the full pipeline over it.

    Pass ``faults`` (a :class:`~repro.resilience.faults.FaultConfig`) or
    ``supervised=True`` to run under the pipeline supervisor: injected or
    real worker failures are caught, the run restarts from the latest
    checkpoint (at most ``restart_budget`` times, default
    :data:`DEFAULT_RESTART_BUDGET`), and the result reports
    ``degraded``/dead-letter state instead of raising.

    Pass ``checkpoint_every`` to snapshot every N input records whether or
    not the run is supervised: an unsupervised run attaches a real
    :class:`CheckpointManager` and exposes it as ``result.checkpoints``
    (``result.checkpoints.latest`` is the resume point after a crash).
    ``restart_budget`` without supervision raises — there is nothing to
    restart — instead of being silently ignored as it historically was.

    ``backpressure``, ``parallel``, supervision, and checkpointing all
    compose; see :data:`repro.engine.capabilities.CAPABILITY_TABLE` for
    each combination's checkpoint barrier and equivalence guarantee.

    With ``state_dir``, checkpoints persist to that directory and a
    re-invocation with the same arguments auto-resumes an interrupted
    run (SIGKILL, host reboot) to a byte-identical result — the
    generated stream is deterministic, so the durable checkpoint plus
    the skipped prefix reconstruct the exact in-flight state.  The
    directory is fingerprinted with the run configuration; changing
    ``seed``/``scale``/... starts fresh rather than resuming the wrong
    stream.
    """
    validate_run_config(
        parallel=parallel, backpressure=backpressure, faults=faults,
        supervised=supervised, restart_budget=restart_budget,
        checkpoint_every=checkpoint_every,
    )
    token = ""
    if state_dir is not None:
        token = _state_token(
            system=system, scale=scale, seed=seed, threshold=threshold,
            incident_scale=incident_scale, predict=_predict_token(predict),
            store="on" if store_dir is not None else "off",
            **generator_kwargs,
        )
    if store_dir is not None and (faults is not None or supervised):
        raise ValueError(
            "store_dir does not compose with supervised runs yet: the "
            "supervisor restarts runs internally and would re-open the "
            "store mid-flight"
        )
    if faults is not None or supervised:
        from .resilience.supervisor import PipelineSupervisor

        store = None
        if state_dir is not None:
            from .resilience.durability import CheckpointStore

            store = CheckpointStore(state_dir, token=token)
        supervisor = PipelineSupervisor(
            restart_budget=(
                DEFAULT_RESTART_BUDGET if restart_budget is None
                else restart_budget
            ),
            checkpoint_every=(
                DEFAULT_CHECKPOINT_EVERY if checkpoint_every is None
                else checkpoint_every
            ),
            store=store,
        )
        return supervisor.run_system(
            system, scale=scale, seed=seed, threshold=threshold,
            incident_scale=incident_scale, faults=faults,
            backpressure=backpressure, parallel=parallel, predict=predict,
            **generator_kwargs,
        )
    generator = LogGenerator(
        system, scale=scale, seed=seed, incident_scale=incident_scale,
        **generator_kwargs,
    )
    generated = generator.generate()
    checkpointer = (
        CheckpointManager(every=checkpoint_every)
        if checkpoint_every is not None else None
    )
    return run_stream(
        generated.records, system, threshold=threshold, generated=generated,
        checkpointer=checkpointer, backpressure=backpressure,
        parallel=parallel, state_dir=state_dir, state_token=token,
        predict=predict, store_dir=store_dir,
    )


def run_all(
    scale: float = 1e-4,
    seed: int = 2007,
    threshold: float = DEFAULT_THRESHOLD,
    faults=None,
    supervised: bool = False,
    restart_budget: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    backpressure: Optional[BackpressureConfig] = None,
    parallel: Optional[ParallelConfig] = None,
    state_dir: Optional[str] = None,
    predict=None,
    store_dir: Optional[str] = None,
    **generator_kwargs,
) -> Dict[str, PipelineResult]:
    """Run the pipeline for all five machines (Table 2's full study).

    With ``faults``/``supervised`` the whole study runs under supervision:
    every system completes — possibly degraded, never raising — and each
    result carries its dead-letter and restart accounting.  With
    ``backpressure``, every system runs bounded; each gets its own queues
    and accounting.  With ``parallel``, every system's tagging is sharded
    across worker processes (each system gets its own pool).  The knobs
    compose, per system, exactly as in :func:`run_system`.
    """
    import os

    from .systems.specs import SYSTEMS

    return {
        name: run_system(
            name, scale=scale, seed=seed, threshold=threshold,
            faults=faults, supervised=supervised,
            restart_budget=restart_budget, checkpoint_every=checkpoint_every,
            backpressure=backpressure, parallel=parallel,
            state_dir=(
                os.path.join(state_dir, name) if state_dir is not None
                else None
            ),
            predict=predict,
            store_dir=(
                os.path.join(store_dir, name) if store_dir is not None
                else None
            ),
            **generator_kwargs,
        )
        for name in SYSTEMS
    }


# ---------------------------------------------------------------------------
# The stable facade.
# ---------------------------------------------------------------------------


def run(
    system: str,
    records: Optional[Iterable[LogRecord]] = None,
    **kwargs,
) -> PipelineResult:
    """The front door: run the full pipeline for one machine.

    Without ``records``, a calibrated synthetic log is generated first
    (all :func:`run_system` keywords apply: ``scale``, ``seed``,
    ``faults``, ``supervised``, ``backpressure``, ``parallel``, ...).
    With ``records``, the stream is consumed directly (all
    :func:`run_stream` keywords apply: ``dead_letters``,
    ``checkpointer``/``resume_from``, ``backpressure``, ``parallel``,
    ...).

    Example::

        from repro import api
        result = api.run("spirit", scale=1e-4, seed=42)
        print(result.summary())
    """
    if records is None:
        return run_system(system, **kwargs)
    return run_stream(records, system, **kwargs)


def iter_alerts(
    records: Iterable[LogRecord],
    system: str,
    workers: int = 0,
    batch_size: int = 1024,
    dead_letters: Optional[DeadLetterQueue] = None,
) -> Iterator[Alert]:
    """Lazily tag a record stream, yielding alerts in stream order.

    The tagging-only subset of the pipeline: no volume statistics, no
    spatio-temporal filter — just the Section 3.2 expert ruleset applied
    to every record.  With ``workers`` > 0, tagging shards across that
    many processes (batches of ``batch_size``) and the alert order is
    still the stream order.  ``dead_letters`` quarantines records that
    crash the rules engine instead of raising.
    """
    if workers:
        from .parallel.sharded import ShardedTagger

        config = ParallelConfig(workers=workers, batch_size=batch_size)
        with ShardedTagger(system, config) as sharded:
            yield from sharded.tag_stream(records, dead_letters=dead_letters)
        return
    tagger = RulesetHandle(system).tagger()
    yield from tagger.tag_stream(records, dead_letters=dead_letters)


def tag_lines(
    lines: Iterable[str],
    system: str,
    year: int = 2005,
    workers: int = 0,
) -> List[Alert]:
    """Parse native-format log lines and tag them with the expert rules.

    ``lines`` is any iterable of strings in the machine's on-disk format
    (what :mod:`repro.logio` writes and the five real machines emit);
    blank lines are skipped, damaged lines parse tolerantly as corrupted
    records rather than raising.  ``year`` seeds the syslog timestamp
    parser (BSD syslog lines carry no year).  Returns the tagged alerts
    in input order.

    Example::

        from repro import api
        alerts = api.tag_lines(open("liberty.log"), "liberty")
    """
    from .logio.reader import _parse_records

    records = _parse_records(iter(lines), system, year)
    return list(iter_alerts(records, system, workers=workers))


def serve(config=None, **config_kwargs) -> Dict[str, dict]:
    """Run the multi-tenant ingest service until stopped; return the
    final per-tenant report.

    Pass a ready :class:`~repro.service.config.ServiceConfig`, or its
    keyword fields directly (``tcp_port=5140``, ``max_buffer=4096``,
    ...).  Blocks inside ``asyncio.run`` until SIGTERM/SIGINT, drains
    every tenant, and returns the same report mapping the ``serve`` CLI
    command prints: tenant id -> accounting row, plus the ``"_service"``
    totals row.
    """
    import asyncio

    from .service import IngestService, ServiceConfig

    if config is None:
        config = ServiceConfig(**config_kwargs)
    elif config_kwargs:
        raise TypeError("pass either a ServiceConfig or keyword fields, "
                        "not both")

    async def _run() -> Dict[str, dict]:
        service = IngestService(config)
        await service.start()
        await service.run_until_stopped()
        return service.final_report()

    return asyncio.run(_run())

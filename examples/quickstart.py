#!/usr/bin/env python
"""Quickstart: generate one supercomputer's log and study it.

Runs the full paper pipeline — synthetic log generation, expert-rule alert
tagging (Section 3.2), simultaneous spatio-temporal filtering
(Algorithm 3.1) — for the Liberty cluster and prints what a system
administrator would want to know.

Usage::

    python examples/quickstart.py [system] [scale]

where ``system`` is one of bgl, thunderbird, redstorm, spirit, liberty
(default liberty) and ``scale`` is the volume fraction of the paper's logs
to generate (default 1e-4).
"""

import sys

from repro import api
from repro.reporting.format import render_table


def main() -> None:
    system = sys.argv[1] if len(sys.argv) > 1 else "liberty"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1e-4

    print(f"Generating and analyzing the {system} log at scale {scale:g}...")
    result = api.run_system(system, scale=scale, seed=2007)

    print()
    print(result.summary())
    print()

    rows = [
        (category, f"{raw:,}", f"{filtered:,}")
        for category, (raw, filtered) in sorted(
            result.category_counts().items(), key=lambda kv: -kv[1][0]
        )
    ]
    print(render_table(("Category", "Raw", "Filtered"), rows,
                       title=f"Alert categories on {system}"))
    print()
    reduction = 1 - result.filtered_alert_count / max(result.raw_alert_count, 1)
    print(
        f"Filtering (T = {result.threshold:g} s) removed "
        f"{reduction:.1%} of the alerts as redundant reports — "
        "the paper's motivation for Section 3.3."
    )


if __name__ == "__main__":
    main()

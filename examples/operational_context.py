#!/usr/bin/env python
"""Operational context: disambiguating alerts and measuring what matters.

Section 3.2.1's motivating example is a BG/L message at severity FAILURE
whose body says "ciodb exited normally with exit code 0": catastrophic in
production, harmless during maintenance.  "Only with additional
information supplied by the system administrator could we conclude that
this message was likely innocuous."

This example shows what the paper says should exist:

1. a Figure 1 state timeline with logged transitions ("the time and cause
   of system state changes");
2. MASNORM alerts disambiguated against it;
3. RAS metrics done both ways — the misleading log-derived MTTF at several
   filter thresholds, and the recommended lost-work accounting
   (Section 5, "Quantify RAS").

Usage::

    python examples/operational_context.py
"""

import time

import numpy as np

from repro import api
from repro.analysis.ras import lost_work_report, mttf_sensitivity
from repro.core.filtering import sorted_by_time
from repro.reporting.figures import figure1
from repro.simulation.cluster import Cluster
from repro.simulation.opcontext import disambiguate
from repro.simulation.workload import WorkloadModel
from repro.systems.specs import get_system


def main() -> None:
    print("Generating BG/L with its operational-context ground truth ...")
    result = api.run_system("bgl", scale=1e-3, seed=2007)
    timeline = result.generated.timeline

    print()
    print(figure1(timeline))

    print()
    print("Disambiguating the paper's ambiguous BGLMASTER alerts "
          "(MASNORM, severity FAILURE, body 'ciodb exited normally'):")
    masnorm = [a for a in result.filtered_alerts if a.category == "MASNORM"]
    verdicts = {"benign": 0, "critical": 0}
    for alert in masnorm:
        verdict = disambiguate(timeline, alert.timestamp, ambiguous=True)
        verdicts[verdict] += 1
        stamp = time.strftime("%Y-%m-%d %H:%M",
                              time.gmtime(alert.timestamp))
        state = timeline.state_at(alert.timestamp).value
        print(f"  [{stamp}] during {state:<22} -> {verdict}")
    print(f"  summary: {verdicts['critical']} critical, "
          f"{verdicts['benign']} benign — and WITHOUT the context log, "
          "all of them would be 'unknown'.")

    print()
    print("Why log-derived MTTF misleads (Section 5, 'using logs to "
          "compare machines is absurd'):")
    window = timeline.end - timeline.start
    for threshold, mttf in sorted(
        mttf_sensitivity(
            sorted_by_time(result.raw_alerts), window
        ).items()
    ):
        print(f"  filter T = {threshold:6.1f} s  ->  'MTTF' = "
              f"{mttf / 3600:10.1f} hours")
    print("  Same machine, same log: the metric tracks the analysis knob.")

    print()
    print("The recommended metric instead — work lost to failures:")
    cluster = Cluster(get_system("bgl"), max_nodes=512)
    jobs = WorkloadModel(cluster).generate_list(
        np.random.default_rng(7), timeline.start, timeline.end
    )
    # Attribute node-named kernel failures to the jobs running there.
    node_alerts = [
        a for a in result.filtered_alerts if a.source.startswith("R")
    ]
    report = lost_work_report(node_alerts, jobs, timeline=timeline)
    total_work = sum(job.node_seconds() for job in jobs)
    print(f"  jobs simulated:            {len(jobs):,} "
          f"({total_work / 3.6e6:,.0f} knode-hours)")
    print(f"  lost (all states):         "
          f"{report.total_lost_node_seconds / 3600:,.0f} node-hours")
    print(f"  lost in production time:   "
          f"{report.production_lost_node_seconds / 3600:,.0f} node-hours")
    by_category = sorted(
        report.by_category().items(), key=lambda kv: -kv[1]
    )[:5]
    for category, lost in by_category:
        if lost > 0:
            print(f"    {category:<12} {lost / 3600:10,.0f} node-hours")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Alert triage on a raw on-disk log: the system-administrator workflow.

This example exercises the library the way a downstream operations team
would, starting from a log *file* rather than the generator:

1. write a synthetic Spirit log to disk in native syslog format;
2. read it back with the tolerant streaming parser (corrupted lines
   survive as flagged records — Section 3.2.1's reality);
3. tag alerts with the Spirit expert rules and filter them;
4. rank the surviving incidents for a human;
5. learn per-category thresholds and cross-category alias groups — the
   two filter improvements the paper recommends in Sections 4 and 5.

Usage::

    python examples/alert_triage.py [scale] [workdir]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro import api
from repro.core.adaptive_filter import suggest_thresholds
from repro.core.correlated_filter import learn_correlated_groups
from repro.core.filtering import sorted_by_time
from repro.logio.reader import read_log
from repro.logio.writer import write_log
from repro.simulation.generator import generate_log


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1e-4
    workdir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path(
        tempfile.mkdtemp(prefix="repro-triage-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    log_path = workdir / "spirit.log"

    print(f"Writing a synthetic Spirit log to {log_path} ...")
    generated = generate_log("spirit", scale=scale, seed=2007)
    lines = write_log(generated.records, log_path, "spirit")
    print(f"  {lines:,} lines, {log_path.stat().st_size:,} bytes")

    print("Reading it back and running the triage pipeline ...")
    year = int(generated.scenario.start_date.split("-")[0])
    result = api.run_stream(
        read_log(log_path, "spirit", year=year), "spirit"
    )
    print(f"  {result.corrupted_messages:,} lines arrived corrupted and "
          "were parsed tolerantly")
    print()
    print(result.summary())

    print()
    print("Top open incidents (first alert per filtered group):")
    for alert in sorted(
        result.filtered_alerts,
        key=lambda a: -dict(result.category_counts())[a.category][0],
    )[:8]:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                              time.gmtime(alert.timestamp))
        print(f"  [{stamp}] {alert.source:<10} {alert.category:<10} "
              f"{alert.record.full_text()[:60]}")

    print()
    print("Per-category thresholds learned from the gap structure "
          "(Section 4's recommendation):")
    thresholds = suggest_thresholds(sorted_by_time(result.raw_alerts))
    if thresholds:
        for category, threshold in sorted(thresholds.items()):
            print(f"  {category:<12} T = {threshold:8.1f} s "
                  f"(global default: {result.threshold:g} s)")
    else:
        print("  (no category needed a non-default threshold)")

    print()
    print("Cross-category alias groups (correlated tags, Figure 3's "
          "problem):")
    groups = learn_correlated_groups(
        sorted_by_time(result.raw_alerts), window=300.0
    )
    if groups:
        for group in groups:
            print("  " + " <-> ".join(sorted(group)))
    else:
        print("  (no correlated groups at this scale)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Preparing a log for public release: anonymize, audit, verify, mine.

The paper's authors could not release their data: "we cannot remove all
sensitive information with sufficient confidence" (Section 3.2.1).  This
example walks the release workflow the library supports:

1. generate a Thunderbird log (its VAPI bodies carry IPs and sockets) and
   write it to disk;
2. pseudonymize it with a keyed, structure-preserving scrubber —
   consistent mappings keep cross-line correlation intact;
3. audit: residual-risk report, and verification that the *analysis*
   results (alert counts, per-category table) are identical on the
   anonymized log, so the release is scientifically useful;
4. mine frequent templates from the anonymized log — what a researcher
   without the expert rules could still learn.

Usage::

    python examples/log_release.py [scale]
"""

import sys
import tempfile
from pathlib import Path

from repro import api
from repro.analysis.patterns import mine_templates, template_coverage
from repro.logio.reader import read_log
from repro.logio.writer import write_log
from repro.logmodel.anonymize import Pseudonymizer
from repro.simulation.generator import generate_log


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 5e-5
    workdir = Path(tempfile.mkdtemp(prefix="repro-release-"))
    raw_path = workdir / "thunderbird.log"
    anon_path = workdir / "thunderbird-anon.log"

    print(f"1. Writing a raw Thunderbird log to {raw_path} ...")
    generated = generate_log("thunderbird", scale=scale, seed=2007)
    year = int(generated.scenario.start_date.split("-")[0])
    lines = write_log(generated.records, raw_path, "thunderbird")
    print(f"   {lines:,} lines")

    print(f"2. Pseudonymizing to {anon_path} (keyed, structure-"
          "preserving) ...")
    scrubber = Pseudonymizer(key="release-2026")
    write_log(
        scrubber.scrub_stream(
            read_log(raw_path, "thunderbird", year=year)
        ),
        anon_path,
        "thunderbird",
    )
    print(f"   {len(scrubber.mapping):,} distinct sensitive atoms "
          "pseudonymized")

    print("3. Audit:")
    residuals = scrubber.residual_risk()
    if residuals:
        print(f"   STOP: {len(residuals)} residual sensitive-looking "
              f"strings, e.g. {residuals[0]!r}")
    else:
        print("   no residual sensitive-looking strings detected")

    before = api.run_stream(
        read_log(raw_path, "thunderbird", year=year), "thunderbird"
    )
    after = api.run_stream(
        read_log(anon_path, "thunderbird", year=year), "thunderbird"
    )
    print("   analysis equivalence on the anonymized log:")
    print(f"     raw alerts:      {before.raw_alert_count:,} -> "
          f"{after.raw_alert_count:,}")
    print(f"     filtered alerts: {before.filtered_alert_count:,} -> "
          f"{after.filtered_alert_count:,}")
    same = before.category_counts() == after.category_counts()
    print(f"     per-category table identical: {same}")

    print("4. What an outside researcher could mine from the release:")
    bodies = [
        r.full_text()
        for r in read_log(anon_path, "thunderbird", year=year)
    ]
    templates = mine_templates(bodies, min_support=25)
    print(f"   {len(templates)} templates cover "
          f"{template_coverage(templates, bodies):.1%} of messages; top 5:")
    for template in templates[:5]:
        print(f"     [{template.support:>7,}] {template.pattern()[:70]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The full five-system study: regenerate every table and figure.

This is the paper end-to-end: generate all five machines' logs, run the
tagging + filtering pipeline, and print Tables 1-6 and the data behind
Figures 2-6 (Figure 1 comes from the operational-context example).

Usage::

    python examples/five_system_study.py [scale]

``scale`` (default 1e-4) is the per-system volume fraction; BG/L runs at
100x that because its log is a thousand times smaller than the others.
Expect ~1 minute at the default scale.
"""

import sys

from repro import api
from repro.analysis.interarrival import interarrival_times, log_histogram
from repro.analysis.timeseries import hourly_message_counts, messages_by_source
from repro.reporting import figures, tables
from repro.simulation.generator import generate_log


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1e-4

    print("Running the five-system pipeline (this regenerates every "
          "table)...", flush=True)
    results = {}
    for system in ("bgl", "thunderbird", "redstorm", "spirit", "liberty"):
        system_scale = scale * (100 if system == "bgl" else 1)
        results[system] = api.run_system(
            system, scale=system_scale, seed=2007
        )
        print(f"  {system}: {results[system].message_count:,} messages, "
              f"{results[system].raw_alert_count:,} alerts", flush=True)

    print()
    print(tables.all_tables(results))

    # Figure 2: Liberty traffic (a fresh stream, since the pipeline
    # consumed the first one).
    print()
    liberty_records = list(
        generate_log("liberty", scale=scale, seed=2007).records
    )
    print(figures.figure2a(hourly_message_counts(liberty_records)))
    print()
    print(figures.figure2b(messages_by_source(liberty_records)))

    # Figures 3 and 4: Liberty alert structure.
    print()
    print(figures.figure3(results["liberty"].raw_alerts))
    print()
    print(figures.figure4(results["liberty"].filtered_alerts))

    # Figure 5: Thunderbird ECC interarrivals.
    print()
    ecc = [a for a in results["thunderbird"].filtered_alerts
           if a.category == "ECC"]
    print(figures.figure5(ecc))

    # Figure 6: BG/L vs Spirit filtered interarrival histograms.
    print()
    print(
        figures.figure6(
            {
                system: log_histogram(
                    interarrival_times(results[system].filtered_alerts),
                    bins_per_decade=2,
                )
                for system in ("bgl", "spirit")
            }
        )
    )


if __name__ == "__main__":
    main()

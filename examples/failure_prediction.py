#!/usr/bin/env python
"""Failure prediction with a per-category ensemble (Section 5).

The paper recommends that "prediction efforts ... produce an ensemble of
predictors, each specializing in one or more categories", because failure
classes have different predictive signatures — or none.  This example:

1. generates a Liberty log with the PBS-bug period at full multiplicity;
2. splits the alert history into train/validation/test spans;
3. fits the ensemble (burst, severity, and precursor candidates per
   category) and shows which specialist each category got;
4. scores the ensemble on the held-out span and compares it against the
   single-feature burst baseline applied to everything.

Usage::

    python examples/failure_prediction.py [system]
"""

import sys

from repro import api
from repro.prediction.base import evaluate
from repro.prediction.ensemble import PredictorEnsemble
from repro.prediction.features import AlertHistory
from repro.prediction.predictors import BurstPredictor


def quantile_spans(history):
    times = [a.timestamp for a in history.alerts]
    n = len(times)
    t0, t1 = history.first_time(), history.last_time() + 1.0
    return (
        (t0, times[int(n * 0.5)]),
        (times[int(n * 0.5)], times[int(n * 0.75)]),
        (times[int(n * 0.75)], t1),
    )


def main() -> None:
    system = sys.argv[1] if len(sys.argv) > 1 else "liberty"
    print(f"Generating {system} alert history ...")
    result = api.run_system(
        system, scale=1.0 if system == "liberty" else 1e-3,
        background_scale=1e-4, seed=2007,
    )
    history = AlertHistory(result.raw_alerts)
    train, validation, test = quantile_spans(history)
    print(f"  {len(history.alerts):,} alerts across "
          f"{len(history.categories)} categories")

    print()
    ensemble = PredictorEnsemble(min_f1=0.2)
    ensemble.fit(history, train, validation)
    print(ensemble.summary())

    print()
    print("Held-out test-span evaluation:")
    scores = ensemble.score(history, *test)
    if not scores:
        print("  (no category had a usable predictive signature — the "
              "paper's 'if any' caveat)")
    for target, score in sorted(scores.items()):
        print(f"  {target:<12} precision={score.precision:.2f} "
              f"recall={score.recall:.2f} f1={score.f1:.2f} "
              f"({score.failures} failures)")

    print()
    print("Single-feature baseline (burst detector for every category):")
    for target in sorted(scores):
        predictor = BurstPredictor(target)
        predictor.train(history, *train)
        warnings = predictor.warnings(history, *test)
        failures = [
            t for t in history.category_times(target)
            if test[0] <= t < test[1]
        ]
        base = evaluate(warnings, failures, target,
                        lead_min=10.0, lead_max=3600.0)
        print(f"  {target:<12} precision={base.precision:.2f} "
              f"recall={base.recall:.2f} f1={base.f1:.2f}")

    print()
    print("Categories with no ensemble member have no learnable signature;")
    print("the ensemble stays silent there instead of crying wolf.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Live monitoring: the operator console of a running ingest service.

What a RAS daemon built on this library looks like in operation
(Section 5, "Detect Faults") — but instead of replaying one stream
through an in-process monitor, this drives the real multi-tenant
:class:`~repro.service.IngestService`: three tenant racks stream their
native logs over loopback TCP, one of them crashes its worker
periodically (absorbed by the per-tenant restart budget), and the
console polls the live stats endpoint — the same one ``repro stats``
queries — to render what a sysadmin would watch.

Usage::

    python examples/live_monitor.py [--seconds 6] [--scale 2e-4]
"""

import argparse
import asyncio
import sys

from repro.logio.writer import renderer_for
from repro.service import IngestService, ServiceConfig, query_stats
from repro.service.router import format_envelope
from repro.simulation.generator import generate_log

#: (tenant, dialect) streams; rack-c is the one that crashes.
TENANTS = (
    ("rack-a", "bgl"),
    ("rack-b", "liberty"),
    ("rack-c", "spirit"),
)


def crash_schedule(tenant_id, record):
    """Crash rack-c's worker roughly every 400 records."""
    crash_schedule.seen = getattr(crash_schedule, "seen", 0)
    if tenant_id == "rack-c":
        crash_schedule.seen += 1
        if crash_schedule.seen % 400 == 0:
            raise RuntimeError("injected rack-c fault")


async def feed(service, tenant, system, scale, seconds):
    """Stream one tenant's generated log over TCP, paced to ~seconds."""
    render = renderer_for(system)
    lines = [
        format_envelope(tenant, system, render(record))
        for record in generate_log(system, scale=scale, seed=2007).records
    ]
    _, writer = await asyncio.open_connection("127.0.0.1", service.tcp_port)
    chunk = max(1, len(lines) // max(1, int(seconds / 0.05)))
    for start in range(0, len(lines), chunk):
        for line in lines[start:start + chunk]:
            writer.write(line.encode() + b"\n")
        await writer.drain()
        await asyncio.sleep(0.05)
    writer.close()
    await writer.wait_closed()
    return len(lines)


async def console(service, seconds):
    """Poll the stats endpoint and render the operator view."""
    loop = asyncio.get_running_loop()
    ticks = max(1, int(seconds / 0.5))
    for _ in range(ticks):
        await asyncio.sleep(0.5)
        stats = await loop.run_in_executor(
            None, query_stats, "127.0.0.1", service.stats_port, "stats"
        )
        print(f"-- state={stats['state']} "
              f"tenants={stats['router']['tenants_live']} "
              f"queued={stats['router']['total_queued']} "
              f"pressure={stats['router']['governor']['level']}")
        for tenant_id in sorted(stats["tenants"]):
            row = stats["tenants"][tenant_id]
            print(f"   {tenant_id:<8} {row['system']:<11} "
                  f"recv={row['received']:>7,} "
                  f"alerts={row['alerts_raw']:>5,} "
                  f"kept={row['alerts_filtered']:>4,} "
                  f"q={row['queue_depth']:>4} "
                  f"crashes={row['crashes']} "
                  f"breaker={row['breaker']}")


async def main_async(args):
    service = IngestService(ServiceConfig(
        fault_hook=crash_schedule,
        restart_budget=1_000_000,  # absorb every injected fault
        housekeeping_interval=0.1,
    ))
    await service.start()
    print(f"ingest service up: tcp={service.tcp_port} "
          f"stats={service.stats_port}\n")

    feeders = [
        feed(service, tenant, system, args.scale, args.seconds)
        for tenant, system in TENANTS
    ]
    results = await asyncio.gather(
        console(service, args.seconds), *feeders
    )
    await service.drain()

    report = service.final_report()
    print("\ndrained; final per-tenant accounting:")
    violations = 0
    for tenant, system in TENANTS:
        row = report[tenant]
        ok = row["conserves"]
        violations += 0 if ok else 1
        print(f"   {tenant:<8} received={row['received']:>7,} "
              f"processed={row['processed']:>7,} "
              f"alerts={row['alerts_raw']:>5,} "
              f"crashes={row['crashes']} "
              f"dead-lettered={row['dead_letter_total']} "
              f"{'conserved' if ok else 'CONSERVATION VIOLATED'}")
    sent = sum(results[1:])
    print(f"\n{sent:,} lines streamed over TCP; "
          f"rack-c absorbed {report['rack-c']['crashes']} injected "
          "crashes without touching the other racks")
    return 1 if violations else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=6.0,
                        help="approximate run length")
    parser.add_argument("--scale", type=float, default=2e-4,
                        help="generated log scale per tenant")
    args = parser.parse_args()
    return asyncio.run(main_async(args))


if __name__ == "__main__":
    sys.exit(main())

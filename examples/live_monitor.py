#!/usr/bin/env python
"""Live monitoring: what a RAS daemon built on this library would do.

Replays a generated BG/L log through the online :class:`LogMonitor` —
record-at-a-time tagging, streaming Algorithm 3.1 deduplication, storm
notifications, and operational-context disambiguation — and prints the
operator console a sysadmin would actually watch, instead of the raw
firehose (Section 5, "Detect Faults").

Usage::

    python examples/live_monitor.py [scale]
"""

import sys
import time

from repro.core.monitor import Disposition, LogMonitor
from repro.core.rules import get_ruleset
from repro.simulation.generator import generate_log

#: BG/L categories whose meaning flips with operational state.
AMBIGUOUS = ("MASNORM", "KERNFSHUT")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1e-3

    print(f"Replaying a BG/L log (scale {scale:g}) through the online "
          "monitor ...\n")
    generated = generate_log("bgl", scale=scale, seed=2007)
    monitor = LogMonitor(
        get_ruleset("bgl"),
        timeline=generated.timeline,
        ambiguous_categories=AMBIGUOUS,
        storm_threshold=50,
    )

    shown = 0
    for event in monitor.run(generated.records):
        if shown < 25 or event.disposition is not Disposition.PAGE:
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.gmtime(event.timestamp)
            )
            marker = {
                Disposition.PAGE: "PAGE ",
                Disposition.STORM: "STORM",
                Disposition.LOG_ONLY: "log  ",
                Disposition.REVIEW: "revw ",
            }[event.disposition]
            extra = (
                f" (+{event.suppressed_count} suppressed)"
                if event.suppressed_count
                else ""
            )
            print(f"[{stamp}] {marker} {event.category:<10} "
                  f"{event.source:<16} {event.message[:48]}{extra}")
            shown += 1
        if shown == 25:
            print("  ... (pages elided; storms and context events still "
                  "shown) ...")
            shown += 1

    stats = monitor.stats
    print()
    print(f"records seen:     {stats.records_seen:,}")
    print(f"alerts tagged:    {stats.alerts_tagged:,}")
    print(f"operator events:  {stats.events_emitted:,} "
          f"({stats.pages:,} pages, {stats.storms:,} storm notices)")
    noise_reduction = 1 - stats.events_emitted / max(stats.alerts_tagged, 1)
    print(f"console noise cut by {noise_reduction:.1%} relative to "
          "paging every alert")


if __name__ == "__main__":
    main()

"""Regenerate the golden regression corpus under tests/fixtures/golden/.

For each system: a small deterministic log in the machine's native
on-disk format, plus an ``.expected.json`` recording everything the
pipeline produces for it — message/corruption counts, every raw and
filtered alert, per-category raw/filtered tallies, severity cross-tab.
``tests/core/test_golden.py`` fails on any drift between the checked-in
expectations and current behavior, which is the point: a rules or filter
change that alters output must be *visible* in the diff of these files,
never silent.

Run from the repo root::

    PYTHONPATH=src python scripts/make_golden.py

and commit the result only when the behavioral change is intended.
"""

from __future__ import annotations

import json
import sys
from itertools import islice
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import api  # noqa: E402
from repro.logio.reader import read_log  # noqa: E402
from repro.logio.writer import write_log  # noqa: E402
from repro.simulation.generator import generate_log  # noqa: E402
from repro.systems.specs import SYSTEMS  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "fixtures" / "golden"
SEED = 20070625
MAX_RECORDS = 400

#: Generation scales chosen so each system yields well over MAX_RECORDS
#: (the stream is truncated), with enough alert density to exercise the
#: ruleset, and — critical for the BSD-syslog systems, whose lines carry
#: no year — a truncated span that stays inside one calendar year.
SCALES = {
    "bgl": 1e-3,
    "thunderbird": 2e-5,
    "redstorm": 2e-5,
    "spirit": 2e-5,
    "liberty": 2e-4,
}

#: Where the MAX_RECORDS window starts in the generated stream.  Most
#: systems alert within their opening records; liberty's incidents
#: cluster later, so its fixture slices an alert-dense mid-log window
#: (Aug 5-7, safely inside one calendar year).
STARTS = {"liberty": 37275}

YEAR = 2005


def alert_row(alert):
    return [round(alert.timestamp, 6), alert.source, alert.category,
            alert.alert_type.value]


def build(system: str) -> None:
    generated = generate_log(system, scale=SCALES[system], seed=SEED)
    start = STARTS.get(system, 0)
    records = list(islice(generated.records, start, start + MAX_RECORDS))
    log_path = GOLDEN_DIR / f"{system}.log"
    write_log(records, log_path, system)

    # Expectations come from the *parsed file*, not the in-memory
    # records: the corpus locks in the whole read -> tag -> filter path,
    # including format round-trip behavior.
    parsed = read_log(log_path, system, year=YEAR)
    result = api.run_stream(parsed, system)
    expected = {
        "system": system,
        "seed": SEED,
        "scale": SCALES[system],
        "year": YEAR,
        "messages": result.stats.messages,
        "corrupted": result.corrupted_messages,
        "raw_alert_count": result.raw_alert_count,
        "filtered_alert_count": result.filtered_alert_count,
        "observed_categories": result.observed_categories,
        "category_counts": {
            cat: counts for cat, counts in sorted(
                result.category_counts().items()
            )
        },
        "severity_messages": dict(sorted(result.severity_tab.messages.items())),
        "severity_alerts": dict(sorted(result.severity_tab.alerts.items())),
        "raw_alerts": [alert_row(a) for a in result.raw_alerts],
        "filtered_alerts": [alert_row(a) for a in result.filtered_alerts],
    }
    out = GOLDEN_DIR / f"{system}.expected.json"
    out.write_text(json.dumps(expected, indent=1) + "\n", encoding="utf-8")
    print(f"{system}: {result.stats.messages} messages, "
          f"{result.raw_alert_count} raw / "
          f"{result.filtered_alert_count} filtered alerts -> {out.name}")


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for system in sorted(SYSTEMS):
        build(system)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

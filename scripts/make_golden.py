"""Regenerate the golden regression corpus under tests/fixtures/golden/.

For each system: a small deterministic log in the machine's native
on-disk format, plus an ``.expected.json`` recording everything the
pipeline produces for it — message/corruption counts, every raw and
filtered alert, per-category raw/filtered tallies, severity cross-tab.
``tests/core/test_golden.py`` fails on any drift between the checked-in
expectations and current behavior, which is the point: a rules or filter
change that alters output must be *visible* in the diff of these files,
never silent.

Run from the repo root::

    PYTHONPATH=src python scripts/make_golden.py

and commit the result only when the behavioral change is intended.
"""

from __future__ import annotations

import json
import sys
from itertools import islice
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import api  # noqa: E402
from repro.logio.reader import read_log  # noqa: E402
from repro.logio.writer import write_log  # noqa: E402
from repro.simulation.generator import LogGenerator, generate_log  # noqa: E402
from repro.streaming import PredictionConfig  # noqa: E402
from repro.systems.specs import SYSTEMS  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "fixtures" / "golden"
PREDICTION_DIR = GOLDEN_DIR / "prediction"
SEED = 20070625
MAX_RECORDS = 400

#: Generation scales chosen so each system yields well over MAX_RECORDS
#: (the stream is truncated), with enough alert density to exercise the
#: ruleset, and — critical for the BSD-syslog systems, whose lines carry
#: no year — a truncated span that stays inside one calendar year.
SCALES = {
    "bgl": 1e-3,
    "thunderbird": 2e-5,
    "redstorm": 2e-5,
    "spirit": 2e-5,
    "liberty": 2e-4,
}

#: Where the MAX_RECORDS window starts in the generated stream.  Most
#: systems alert within their opening records; liberty's incidents
#: cluster later, so its fixture slices an alert-dense mid-log window
#: (Aug 5-7, safely inside one calendar year).
STARTS = {"liberty": 37275}

YEAR = 2005


def alert_row(alert):
    return [round(alert.timestamp, 6), alert.source, alert.category,
            alert.alert_type.value]


def build(system: str) -> None:
    generated = generate_log(system, scale=SCALES[system], seed=SEED)
    start = STARTS.get(system, 0)
    records = list(islice(generated.records, start, start + MAX_RECORDS))
    log_path = GOLDEN_DIR / f"{system}.log"
    write_log(records, log_path, system)

    # Expectations come from the *parsed file*, not the in-memory
    # records: the corpus locks in the whole read -> tag -> filter path,
    # including format round-trip behavior.
    parsed = read_log(log_path, system, year=YEAR)
    result = api.run_stream(parsed, system)
    expected = {
        "system": system,
        "seed": SEED,
        "scale": SCALES[system],
        "year": YEAR,
        "messages": result.stats.messages,
        "corrupted": result.corrupted_messages,
        "raw_alert_count": result.raw_alert_count,
        "filtered_alert_count": result.filtered_alert_count,
        "observed_categories": result.observed_categories,
        "category_counts": {
            cat: counts for cat, counts in sorted(
                result.category_counts().items()
            )
        },
        "severity_messages": dict(sorted(result.severity_tab.messages.items())),
        "severity_alerts": dict(sorted(result.severity_tab.alerts.items())),
        "raw_alerts": [alert_row(a) for a in result.raw_alerts],
        "filtered_alerts": [alert_row(a) for a in result.filtered_alerts],
    }
    out = GOLDEN_DIR / f"{system}.expected.json"
    out.write_text(json.dumps(expected, indent=1) + "\n", encoding="utf-8")
    print(f"{system}: {result.stats.messages} messages, "
          f"{result.raw_alert_count} raw / "
          f"{result.filtered_alert_count} filtered alerts -> {out.name}")


# -- online prediction fixtures ---------------------------------------------
#
# The three calibrated failure scenarios (VAPI storm, PBS checkpoint
# bug, DDN disk storm) at golden-sized scales: the quality benchmark
# (scripts/prediction_eval.py) runs them much larger to measure
# precision/recall; these pins are about *equivalence* — the exact
# warning stream and correlation graph the streaming stage produces for
# a deterministic stream, replayed under serial and sharded drivers by
# tests/prediction/test_golden_online.py.  Scales are chosen so every
# fixture has installed ensemble members, emitted warnings, and a
# multi-edge graph (the completeness test pins that), while the whole
# corpus replays in seconds.

PREDICTION_SCENARIOS = (
    {
        "name": "thunderbird-vapi-storm",
        "system": "thunderbird",
        "scale": 3e-4,
        "seed": 11,
        "config": {},
    },
    {
        "name": "liberty-pbs-chk",
        "system": "liberty",
        "scale": 5e-4,
        "seed": 11,
        "config": {"lead_min": 600.0, "lead_max": 86400.0},
    },
    {
        "name": "redstorm-ddn-disk",
        "system": "redstorm",
        "scale": 1e-4,
        "seed": 11,
        "config": {},
    },
)


def warning_rows(report):
    return [
        [w.t, w.category, w.score, w.kind, w.valid_from, w.valid_until]
        for w in report.warnings
    ]


def member_rows(report):
    return [
        [m.target, m.kind, m.precision, m.recall, m.f1]
        for m in report.members
    ]


def graph_rows(graph):
    return {
        "finalized_alerts": graph.finalized_alerts,
        "edges": [
            [e.category_a, e.category_b, e.count_a, e.count_b,
             e.coincidences, e.coincidence_rate, e.mean_lag, e.weight]
            for e in graph.edges
        ],
        "source_edges": [
            [e.category, e.source, e.count, e.weight]
            for e in graph.source_edges
        ],
        "spatial": [
            [s.category, s.incidents, s.mean_distinct_sources,
             s.multi_source_fraction]
            for s in graph.spatial
        ],
    }


def build_prediction(spec) -> None:
    generated = LogGenerator(
        spec["system"], scale=spec["scale"], seed=spec["seed"]
    ).generate()
    records = list(generated.records)
    result = api.run_stream(
        records, spec["system"], generated=generated,
        predict=PredictionConfig(**spec["config"]),
    )
    report = result.prediction
    expected = {
        "name": spec["name"],
        "system": spec["system"],
        "scale": spec["scale"],
        "seed": spec["seed"],
        "config": spec["config"],
        "records": len(records),
        "observed_alerts": report.observed,
        "warnings_emitted": report.warnings_emitted,
        "refits": report.refits,
        "members": member_rows(report),
        "warnings": warning_rows(report),
        "graph": graph_rows(report.graph),
    }
    out = PREDICTION_DIR / f"{spec['name']}.expected.json"
    out.write_text(json.dumps(expected, indent=1) + "\n", encoding="utf-8")
    print(f"{spec['name']}: {len(records)} records, "
          f"{report.warnings_emitted} warnings, "
          f"{len(report.graph.edges)} edges -> prediction/{out.name}")


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for system in sorted(SYSTEMS):
        build(system)
    PREDICTION_DIR.mkdir(parents=True, exist_ok=True)
    for spec in PREDICTION_SCENARIOS:
        build_prediction(spec)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Soak the multi-tenant ingest service: faults, churn, bursts — and
prove zero silent alert loss with exact conservation accounting.

Drives a real :class:`~repro.service.IngestService` over loopback TCP
with many concurrent tenants spread across all five paper dialects,
while injecting every failure mode the service claims to survive:

* **crashy** tenants whose workers crash on a schedule (absorbed by the
  restart budget);
* **doomed** tenants that crash on *every* record and must end up
  quarantined — with every subsequent arrival still accounted;
* **bursty** tenants that send 10x-sized bursts at 1/10 frequency;
* **churny** tenants that reconnect for every chunk (connection churn);
* **lossy** tenants whose lines first pass through the simulated
  :class:`UdpSyslogChannel` at the sender, so wire drops are attributed
  there and end-to-end accounting stays exact;
* one clean **control** tenant per dialect, whose alert stream must
  match a serial :class:`AlertPath` run exactly — the isolation proof.

The whole process runs under an RLIMIT_AS address-space cap: a runaway
queue would kill the job.

Failure conditions (any -> exit 1):

* any tenant's counters fail the partition invariant
  ``received == shed + refused + processed``;
* any non-lossy tenant's ``received`` != lines sent (TCP is lossless;
  anything else means the service lost a record without accounting);
* tagged-alert conservation breaks anywhere:
  ``expected tagged == reported + duplicate sheds + tagged refusals +
  tagged in-path dead letters``;
* anything was shed under the ``tagged-alert`` class (the silent-loss
  class that must never be shed);
* a control tenant shed, refused, crashed, or reported an alert count
  different from the serial baseline;
* a doomed tenant failed to quarantine, or no crash/burst/churn was
  actually exercised (the soak must prove what it claims);
* any queue's peak occupancy exceeded its capacity.

Usage::

    PYTHONPATH=src python scripts/soak_service.py                # full: 100 tenants
    PYTHONPATH=src python scripts/soak_service.py --tenants 10 --seconds 20
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import tempfile
import time

ADDRESS_SPACE_CAP = 4 * 1024**3  # generous, but fatal to a runaway queue

IN_PATH_REASONS = ("invalid-record", "tagger-error", "out-of-order")


def cap_address_space() -> bool:
    try:
        import resource
    except ImportError:  # non-POSIX platform: run uncapped
        return False
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    cap = ADDRESS_SPACE_CAP if hard == resource.RLIM_INFINITY \
        else min(ADDRESS_SPACE_CAP, hard)
    resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
    return True


class TenantSpec:
    """One soak tenant: identity, roles, workload, and expectations."""

    def __init__(self, index: int, system: str, roles: frozenset):
        self.index = index
        self.system = system
        self.roles = roles
        self.tenant_id = f"t{index:03d}-{system}" + (
            "-" + "-".join(sorted(roles)) if roles else ""
        )
        self.lines = []           # wire lines that leave the sender
        self.expected_tagged = 0  # tagged records among self.lines
        self.simulated_drops = 0  # sender-side UdpSyslogChannel drops
        self.sent = 0
        self.connections = 0


def build_specs(n_tenants: int, seed: int):
    from repro.systems.specs import SYSTEMS

    systems = sorted(SYSTEMS)
    specs = []
    for i in range(n_tenants):
        system = systems[i % len(systems)]
        if i < len(systems):
            roles = frozenset({"control"})
        else:
            roles = set()
            if i % 7 == 0:
                roles.add("crashy")
            if i % 13 == 6:
                roles.add("doomed")
                roles.discard("crashy")
            if i % 4 == 1:
                roles.add("burst")
            if i % 6 == 2:
                roles.add("lossy")
            if i % 3 == 0:
                roles.add("churn")
            roles = frozenset(roles)
        specs.append(TenantSpec(i, system, roles))
    return specs


def prepare_workloads(specs, scale: float, seed: int):
    """Render, channel-filter, and pre-classify every tenant's stream.

    Expectations are computed on the *parsed* form of each wire line —
    exactly what the service will see after its own tolerant parse — so
    both the tagged-alert conservation check and the control-tenant
    serial baseline compare bit-for-bit, not approximately.

    Returns per-dialect ``(native_lines, parsed_records)``.
    """
    import numpy as np

    from repro.logio.writer import renderer_for
    from repro.core.rules import get_ruleset
    from repro.core.tagging import Tagger
    from repro.service.router import format_envelope, parse_native_line
    from repro.simulation.generator import generate_log
    from repro.simulation.transport import UdpSyslogChannel

    # Per dialect, computed once and shared by its tenants: the generated
    # records, their wire lines, their service-side parsed form, and
    # whether any rule tags that parsed form.
    dialects = {}
    for system in {s.system for s in specs}:
        records = list(generate_log(system, scale=scale, seed=seed).records)
        render = renderer_for(system)
        tagger = Tagger(get_ruleset(system))
        lines = [render(r) for r in records]
        parsed = [parse_native_line(l, system, year=2005) for l in lines]
        tagged = [tagger.match(p) is not None for p in parsed]
        index_of = {id(r): i for i, r in enumerate(records)}
        dialects[system] = (records, lines, parsed, tagged, index_of)

    for spec in specs:
        records, lines, parsed, tagged, index_of = dialects[spec.system]
        if "lossy" in spec.roles:
            channel = UdpSyslogChannel(
                rng=np.random.default_rng(seed + spec.index),
                base_loss=0.002, congestion_loss=0.05,
            )
            indices = [
                index_of[id(r)] for r in channel.transmit(records)
            ]
            spec.simulated_drops = channel.dropped
        else:
            indices = range(len(records))
        for i in indices:
            spec.expected_tagged += tagged[i]
            spec.lines.append(
                format_envelope(spec.tenant_id, spec.system, lines[i])
            )
    return {
        system: parsed
        for system, (_, _, parsed, _, _) in dialects.items()
    }


def serial_baselines(parsed_streams):
    """Alert counts of an uninterrupted serial path run over the parsed
    wire records per dialect — what every control tenant must reproduce
    exactly."""
    from repro.engine.path import AlertPath
    from repro.resilience.deadletter import DeadLetterQueue

    baselines = {}
    for system, records in parsed_streams.items():
        path = AlertPath(system, dead_letters=DeadLetterQueue(len(records)))
        for record in records:
            if path.admit(record):
                path.process(record)
        baselines[system] = (
            len(path.sink.raw_alerts), len(path.sink.filtered_alerts),
        )
    return baselines


async def sender(service, spec, pace: float):
    """Stream one tenant's lines over TCP with its roles' behaviors."""
    chunk = 200
    burst_every = 10
    writer = None

    async def connect():
        nonlocal writer
        _, writer = await asyncio.open_connection(
            "127.0.0.1", service.tcp_port
        )
        spec.connections += 1

    await connect()
    i, chunk_no = 0, 0
    while i < len(spec.lines):
        if "burst" in spec.roles:
            # Quiet most of the time, then a 10x burst.
            size = chunk * 10 if chunk_no % burst_every == 0 else chunk // 10
        else:
            size = chunk
        batch = spec.lines[i:i + max(1, size)]
        i += len(batch)
        chunk_no += 1
        writer.write(("\n".join(batch) + "\n").encode())
        await writer.drain()
        spec.sent += len(batch)
        if "churn" in spec.roles:
            writer.close()
            await writer.wait_closed()
            await connect()
        if pace > 0:
            await asyncio.sleep(pace)
    writer.close()
    await writer.wait_closed()


def make_fault_hook(specs):
    """Deterministic crash schedules, keyed by tenant id."""
    crash_every = {}
    for spec in specs:
        if "doomed" in spec.roles:
            crash_every[spec.tenant_id] = 1
        elif "crashy" in spec.roles:
            crash_every[spec.tenant_id] = 97
    seen = {}

    def hook(tenant_id, record):
        every = crash_every.get(tenant_id)
        if every is None:
            return
        seen[tenant_id] = seen.get(tenant_id, 0) + 1
        if seen[tenant_id] % every == 0:
            raise RuntimeError(f"soak-injected crash for {tenant_id}")

    return hook


def tagged_in_path_letters(tenant):
    """Tagged records among the tenant's in-path dead letters (invalid /
    tagger-error / out-of-order) — countable exactly because the soak
    sizes the dead-letter queue to retain everything."""
    count = 0
    for letter in tenant.dead_letters:
        if letter.reason in IN_PATH_REASONS:
            try:
                if tenant.path.tagger.match(letter.record) is not None:
                    count += 1
            except Exception:
                pass
    return count


async def run_soak(args) -> int:
    from repro.service import IngestService, ServiceConfig

    specs = build_specs(args.tenants, args.seed)
    print(f"preparing workloads: {args.tenants} tenants, "
          f"{len({s.system for s in specs})} dialects, scale {args.scale:g}")
    parsed_streams = prepare_workloads(specs, args.scale, args.seed)
    baselines = serial_baselines(parsed_streams)
    total_lines = sum(len(s.lines) for s in specs)
    print(f"{total_lines:,} wire lines staged "
          f"({sum(s.simulated_drops for s in specs):,} dropped in "
          "simulated sender channels)")

    config = ServiceConfig(
        fault_hook=make_fault_hook(specs),
        restart_budget=5,
        breaker_reset=0.2,
        max_buffer=2048,
        dead_letter_capacity=max(100_000, total_lines),
        alert_tail=8,
        idle_ttl=3600.0,           # no eviction: every tenant inspectable
        housekeeping_interval=0.1,
        drain_timeout=120.0,
    )
    service = IngestService(config)
    await service.start()
    print(f"service up: tcp={service.tcp_port} stats={service.stats_port}")

    # Pace the offered load to a sustainable aggregate rate (default
    # ~5k lines/s) so steady-state pressure stays NORMAL and the control
    # tenants isolate *fault* effects, not plain overload; the bursty
    # tenants still spike 10x above their own average.
    seconds = args.seconds if args.seconds > 0 else total_lines / 5000.0
    n_chunks = max(1, total_lines // (len(specs) * 200))
    pace = seconds / n_chunks
    started = time.monotonic()
    await asyncio.gather(*(sender(service, s, pace) for s in specs))
    send_elapsed = time.monotonic() - started
    await service.drain()
    print(f"sent in {send_elapsed:.1f}s; drained {service.state!r} "
          f"in {time.monotonic() - started - send_elapsed:.1f}s")

    return check(service, specs, baselines)


def check(service, specs, baselines) -> int:
    failures = []

    def expect(ok, message):
        if not ok:
            failures.append(message)

    tenants = service.router.tenants
    expect(len(tenants) == len(specs),
           f"expected {len(specs)} live tenants, found {len(tenants)}")

    crashes = quarantined = churned = 0
    for spec in specs:
        tenant = tenants.get(spec.tenant_id)
        if tenant is None:
            failures.append(f"{spec.tenant_id}: missing from service")
            continue
        c = tenant.counters
        q = len(tenant.queue)
        crashes += c.crashes
        quarantined += 1 if tenant.quarantined else 0
        churned += spec.connections

        expect(c.conserves(q),
               f"{spec.tenant_id}: partition broken "
               f"({c.received} != {c.accounted(q)})")
        expect(q == 0, f"{spec.tenant_id}: {q} records undrained")
        expect(c.received == spec.sent,
               f"{spec.tenant_id}: sent {spec.sent} but received "
               f"{c.received} (TCP must be lossless)")
        expect(tenant.queue.peak_occupancy <= tenant.queue.capacity,
               f"{spec.tenant_id}: queue peak over capacity")

        shed_tagged = c.shed_by_class.get("tagged-alert", 0)
        expect(shed_tagged == 0,
               f"{spec.tenant_id}: {shed_tagged} tagged alerts shed")
        accounted_tagged = (
            c.alerts_raw
            + c.shed_by_class.get("duplicate-alert", 0)
            + c.refused_tagged
            + tagged_in_path_letters(tenant)
        )
        expect(accounted_tagged == spec.expected_tagged,
               f"{spec.tenant_id}: tagged conservation broken "
               f"(expected {spec.expected_tagged}, "
               f"accounted {accounted_tagged})")

        if "control" in spec.roles:
            raw, filtered = baselines[spec.system]
            expect(c.shed == 0 and c.refused == 0 and c.crashes == 0,
                   f"{spec.tenant_id}: control tenant lost records "
                   f"(shed={c.shed} refused={c.refused} "
                   f"crashes={c.crashes})")
            expect(c.alerts_raw == raw and c.alerts_filtered == filtered,
                   f"{spec.tenant_id}: control alerts {c.alerts_raw}/"
                   f"{c.alerts_filtered} != serial baseline "
                   f"{raw}/{filtered}")
        if "doomed" in spec.roles:
            expect(tenant.quarantined,
                   f"{spec.tenant_id}: doomed tenant not quarantined")
            expect(tenant.final_dead_letters is not None,
                   f"{spec.tenant_id}: no final accounting snapshot")

    # The soak must actually have exercised its failure modes.
    doomed = sum(1 for s in specs if "doomed" in s.roles)
    expect(crashes > 0, "no worker crashes were injected")
    expect(quarantined >= doomed,
           f"{quarantined} quarantined < {doomed} doomed tenants")
    expect(churned > len(specs), "no connection churn happened")
    expect(service.router.unroutable.quarantined == 0,
           "well-formed soak traffic was marked unroutable")

    total = {
        "received": sum(t.counters.received for t in tenants.values()),
        "processed": sum(t.counters.processed for t in tenants.values()),
        "shed": sum(t.counters.shed for t in tenants.values()),
        "refused": sum(t.counters.refused for t in tenants.values()),
        "alerts": sum(t.counters.alerts_raw for t in tenants.values()),
        "crashes": crashes,
        "quarantined": quarantined,
    }
    print(f"\ntotals: {total}")
    print(f"connections opened: {churned:,} "
          f"(tcp accepts: {service.tcp.connections:,})")

    if failures:
        print(f"\nFAIL: {len(failures)} violations")
        for failure in failures[:40]:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: {len(specs)} tenants conserved every record; "
          "zero silent tagged-alert loss; controls byte-match serial; "
          f"{quarantined} quarantines absorbed")
    return 0


def run_kill_service(args) -> int:
    """The ``--kill-service`` phase: a mini serve session is SIGKILLed
    between quiesced bursts and must resurrect from its ``--state-dir``
    byte-identical (delegates to the chaos harness's reusable check)."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import chaos_crash

    print(f"\nkill-service phase: {args.kill_service_kills} SIGKILLs "
          "over a durable serve session")
    with tempfile.TemporaryDirectory(prefix="soak-kill-service-") as tmp:
        failures = chaos_crash.kill_service_check(
            tenants=min(args.tenants, 10), scale=args.scale,
            seed=args.seed, kills=args.kill_service_kills, state_root=tmp,
        )
    if failures:
        print(f"kill-service FAIL: {len(failures)} violations")
        for failure in failures[:20]:
            print(f"  - {failure}")
        return 1
    print("kill-service OK: resurrection byte-identical")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--tenants", type=int, default=100)
    parser.add_argument("--scale", type=float, default=2e-5,
                        help="generated log scale per dialect")
    parser.add_argument("--seconds", type=float, default=0.0,
                        help="pace sending over about this long (0 = "
                             "auto: ~5k lines/s aggregate)")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--kill-service", action="store_true",
                        help="also SIGKILL/resurrect a durable serve "
                             "session and require byte-identical recovery")
    parser.add_argument("--kill-service-kills", type=int, default=2)
    args = parser.parse_args()

    if cap_address_space():
        print(f"address-space cap: {ADDRESS_SPACE_CAP / 1024**3:.1f} GiB")
    else:
        print("address-space cap: unavailable on this platform")

    rc = asyncio.run(run_soak(args))
    if rc == 0 and args.kill_service:
        rc = run_kill_service(args)
    return rc


if __name__ == "__main__":
    sys.exit(main())
